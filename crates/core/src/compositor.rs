//! The "many small compositors" (§6.3).
//!
//! "The clue for an efficient event management is to keep event
//! composition simple and to execute it in parallel. We believe that
//! large, monolithic event managers that are based on a single graph
//! should be avoided. Instead, many small compositors that can be
//! executed by parallel threads should be supported."
//!
//! A [`Compositor`] serves exactly one composite event type. It holds a
//! set of [`Automaton`] instances — one in-flight composition attempt
//! each — keyed by *scope*: per originating top-level transaction for
//! same-transaction composites, one shared pool for cross-transaction
//! ones. Instance management implements the consumption policies of
//! §3.4; instance teardown implements the life-spans of §3.3 ("when the
//! life-span of a semi-composed event elapses, the whole composition
//! graph instance for that event occurrence is simply removed").

use crate::algebra::{CompositionScope, Correlation, EventExpr, Lifespan};
use crate::consumption::ConsumptionPolicy;
use crate::event::{EventOccurrence, OccHandle, OccSlab};
use reach_common::sync::Mutex;
use reach_common::{MetricsRegistry, TimePoint, TxnId};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of feeding one occurrence to an automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Feed {
    /// The occurrence did not fit this instance.
    Ignored,
    /// The occurrence was absorbed; composition continues.
    Progress,
    /// The composition completed (non-window path).
    Complete,
}

/// One composition-graph instance. Absorbed occurrences live in the
/// owning compositor's [`OccSlab`]; the instance holds only handles,
/// all allocated under the instance's slab *generation* — freed in one
/// sweep by [`Automaton::retire`] when the composition window closes.
#[derive(Debug)]
pub struct Automaton {
    root: Node,
    policy: ConsumptionPolicy,
    /// Slab generation this instance allocates under (`u64::MAX` for
    /// standalone instances built outside a compositor).
    gen: u64,
    /// Clock time of the first absorbed occurrence (anchors interval
    /// lifespans).
    pub started_at: Option<TimePoint>,
}

#[derive(Debug)]
enum Node {
    Prim {
        ty: reach_common::EventTypeId,
        matched: Vec<OccHandle>,
    },
    Seq {
        parts: Vec<Node>,
        pos: usize,
    },
    Conj {
        parts: Vec<Node>,
    },
    Disj {
        parts: Vec<Node>,
        winner: Option<usize>,
    },
    Neg {
        inner: Box<Node>,
        violated: bool,
    },
    Closure {
        /// Shared handle to the immutable sub-expression — rebuilt from
        /// on every sub-completion, never deep-cloned.
        template: Arc<EventExpr>,
        current: Box<Node>,
        completions: Vec<Vec<OccHandle>>,
    },
    History {
        /// Shared handle, as in [`Node::Closure`].
        template: Arc<EventExpr>,
        current: Box<Node>,
        completions: Vec<Vec<OccHandle>>,
        target: u32,
    },
}

fn build(expr: &EventExpr) -> Node {
    match expr {
        EventExpr::Primitive(id) => Node::Prim {
            ty: *id,
            matched: Vec::new(),
        },
        EventExpr::Sequence(parts) => Node::Seq {
            parts: parts.iter().map(build).collect(),
            pos: 0,
        },
        EventExpr::Conjunction(parts) => Node::Conj {
            parts: parts.iter().map(build).collect(),
        },
        EventExpr::Disjunction(parts) => Node::Disj {
            parts: parts.iter().map(build).collect(),
            winner: None,
        },
        EventExpr::Negation(inner) => Node::Neg {
            inner: Box::new(build(inner)),
            violated: false,
        },
        EventExpr::Closure(inner) => Node::Closure {
            template: Arc::clone(inner),
            current: Box::new(build(inner)),
            completions: Vec::new(),
        },
        EventExpr::History { expr, count } => Node::History {
            template: Arc::clone(expr),
            current: Box::new(build(expr)),
            completions: Vec::new(),
            target: *count,
        },
    }
}

impl Node {
    fn feed(
        &mut self,
        occ: &Arc<EventOccurrence>,
        policy: ConsumptionPolicy,
        slab: &mut OccSlab,
        gen: u64,
    ) -> Feed {
        match self {
            Node::Prim { ty, matched } => {
                if occ.event_type != *ty {
                    return Feed::Ignored;
                }
                match policy {
                    ConsumptionPolicy::Recent => {
                        // Most recent occurrence supersedes; the
                        // superseded slot recycles immediately.
                        for h in matched.drain(..) {
                            slab.free_one(h);
                        }
                        matched.push(slab.alloc(gen, Arc::clone(occ)));
                        Feed::Complete
                    }
                    ConsumptionPolicy::Cumulative => {
                        matched.push(slab.alloc(gen, Arc::clone(occ)));
                        Feed::Complete
                    }
                    // Chronicle / continuous: one occurrence per slot.
                    _ => {
                        if matched.is_empty() {
                            matched.push(slab.alloc(gen, Arc::clone(occ)));
                            Feed::Complete
                        } else {
                            Feed::Ignored
                        }
                    }
                }
            }
            Node::Seq { parts, pos } => {
                // Recent / cumulative may revisit completed prefix parts
                // (a fresher e1 supersedes; a further e1 accumulates).
                if matches!(
                    policy,
                    ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative
                ) {
                    let upto = (*pos).min(parts.len().saturating_sub(1));
                    for part in parts.iter_mut().take(upto) {
                        if part.feed(occ, policy, slab, gen) != Feed::Ignored {
                            return Feed::Progress;
                        }
                    }
                }
                if *pos >= parts.len() {
                    return Feed::Ignored;
                }
                match parts[*pos].feed(occ, policy, slab, gen) {
                    Feed::Ignored => Feed::Ignored,
                    Feed::Progress => Feed::Progress,
                    Feed::Complete => {
                        if parts[*pos].complete() {
                            *pos += 1;
                        }
                        if *pos == parts.len() {
                            Feed::Complete
                        } else {
                            Feed::Progress
                        }
                    }
                }
            }
            Node::Conj { parts } => {
                let mut any = false;
                for part in parts.iter_mut() {
                    if part.feed(occ, policy, slab, gen) != Feed::Ignored {
                        any = true;
                        // Recent/cumulative keep feeding so every
                        // matching slot sees the occurrence; chronicle
                        // consumes it in the first accepting slot.
                        if !matches!(
                            policy,
                            ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative
                        ) {
                            break;
                        }
                    }
                }
                if !any {
                    Feed::Ignored
                } else if self.complete() {
                    Feed::Complete
                } else {
                    Feed::Progress
                }
            }
            Node::Disj { parts, winner } => {
                let mut any = false;
                for (i, part) in parts.iter_mut().enumerate() {
                    if part.feed(occ, policy, slab, gen) != Feed::Ignored {
                        any = true;
                        if part.complete() && winner.is_none() {
                            *winner = Some(i);
                        }
                    }
                }
                if !any {
                    Feed::Ignored
                } else if winner.is_some() {
                    Feed::Complete
                } else {
                    Feed::Progress
                }
            }
            Node::Neg { inner, violated } => {
                match inner.feed(occ, policy, slab, gen) {
                    Feed::Ignored => Feed::Ignored,
                    Feed::Progress => Feed::Progress,
                    Feed::Complete => {
                        if inner.complete() {
                            *violated = true;
                        }
                        // Absorbing the forbidden event is progress of
                        // the (doomed) window, never completion.
                        Feed::Progress
                    }
                }
            }
            Node::Closure {
                template,
                current,
                completions,
            } => match current.feed(occ, policy, slab, gen) {
                Feed::Ignored => Feed::Ignored,
                Feed::Progress => Feed::Progress,
                Feed::Complete => {
                    if current.complete() {
                        completions.push(current.collect());
                        **current = build(template);
                    }
                    Feed::Progress // fires only at window close
                }
            },
            Node::History {
                template,
                current,
                completions,
                target,
            } => match current.feed(occ, policy, slab, gen) {
                Feed::Ignored => Feed::Ignored,
                Feed::Progress => Feed::Progress,
                Feed::Complete => {
                    if current.complete() {
                        completions.push(current.collect());
                        **current = build(template);
                    }
                    if completions.len() as u32 >= *target {
                        Feed::Complete
                    } else {
                        Feed::Progress
                    }
                }
            },
        }
    }

    /// Completion on the immediate (feed) path.
    fn complete(&self) -> bool {
        match self {
            Node::Prim { matched, .. } => !matched.is_empty(),
            Node::Seq { parts, pos } => *pos == parts.len(),
            Node::Conj { parts } => parts.iter().all(|p| p.complete()),
            Node::Disj { winner, .. } => winner.is_some(),
            Node::Neg { .. } => false,
            Node::Closure { .. } => false,
            Node::History {
                completions,
                target,
                ..
            } => completions.len() as u32 >= *target,
        }
    }

    /// Completion at window close (negation satisfied by absence,
    /// closure by presence).
    fn complete_at_close(&self) -> bool {
        match self {
            Node::Neg { violated, .. } => !violated,
            Node::Closure { completions, .. } => !completions.is_empty(),
            Node::Prim { matched, .. } => !matched.is_empty(),
            Node::Seq { parts, pos } => {
                // Remaining parts must all be satisfiable-by-absence.
                parts[..*pos]
                    .iter()
                    .all(|p| p.complete() || p.complete_at_close())
                    && parts[*pos..].iter().all(|p| p.complete_at_close())
            }
            Node::Conj { parts } => parts.iter().all(|p| p.complete() || p.complete_at_close()),
            Node::Disj { parts, winner } => {
                winner.is_some() || parts.iter().any(|p| p.complete_at_close())
            }
            Node::History {
                completions,
                target,
                ..
            } => completions.len() as u32 >= *target,
        }
    }

    /// Gather constituent handles in completion order — plain index
    /// copies, no refcount traffic at any tree level.
    fn collect(&self) -> Vec<OccHandle> {
        match self {
            Node::Prim { matched, .. } => matched.clone(),
            Node::Seq { parts, .. } | Node::Conj { parts } => {
                parts.iter().flat_map(|p| p.collect()).collect()
            }
            Node::Disj { parts, winner } => match winner {
                Some(i) => parts[*i].collect(),
                None => parts
                    .iter()
                    .find(|p| p.complete_at_close())
                    .map(|p| p.collect())
                    .unwrap_or_default(),
            },
            Node::Neg { .. } => Vec::new(),
            Node::Closure { completions, .. } | Node::History { completions, .. } => {
                completions.iter().flatten().copied().collect()
            }
        }
    }
}

impl Automaton {
    /// A standalone instance (no slab generation bound) — only useful
    /// for inspecting the built node tree; feeding it still works but
    /// its slots are reclaimed only by an explicit [`Automaton::retire`].
    pub fn new(expr: &EventExpr, policy: ConsumptionPolicy) -> Self {
        Automaton {
            root: build(expr),
            policy,
            gen: u64::MAX,
            started_at: None,
        }
    }

    /// An instance bound to a fresh generation of `slab` — how the
    /// compositor creates every pooled instance.
    pub fn new_in(expr: &EventExpr, policy: ConsumptionPolicy, slab: &mut OccSlab) -> Self {
        let mut a = Self::new(expr, policy);
        a.gen = slab.open_gen();
        a
    }

    /// Feed one occurrence; absorbed occurrences are stored in `slab`
    /// under this instance's generation.
    pub fn feed(&mut self, occ: &Arc<EventOccurrence>, slab: &mut OccSlab) -> Feed {
        let r = self.root.feed(occ, self.policy, slab, self.gen);
        if r != Feed::Ignored && self.started_at.is_none() {
            self.started_at = Some(occ.at);
        }
        if r == Feed::Complete && !self.root.complete() {
            // A sub-node signalled completion that the tree absorbs
            // (e.g. a completed part of a longer sequence).
            return Feed::Progress;
        }
        r
    }

    /// Whether the instance is complete on the feed path.
    pub fn complete(&self) -> bool {
        self.root.complete()
    }

    /// Whether the instance fires when its window closes.
    pub fn complete_at_close(&self) -> bool {
        self.root.complete_at_close()
    }

    /// Resolve the constituents in completion order. Must be called
    /// *before* [`Automaton::retire`] — this is the one place handles
    /// are turned back into `Arc`s, so completions escape the slab by
    /// value and can never dangle.
    pub fn constituents(&self, slab: &OccSlab) -> Vec<Arc<EventOccurrence>> {
        self.root
            .collect()
            .into_iter()
            .filter_map(|h| slab.get(h).cloned())
            .collect()
    }

    /// Close this instance's composition window: free its whole slab
    /// generation in one sweep (§3.3 — "the whole composition graph
    /// instance ... is simply removed"). Consumes the instance so no
    /// handle can be resolved afterwards.
    pub fn retire(self, slab: &mut OccSlab) {
        slab.free_gen(self.gen);
    }
}

/// Key partitioning automaton instances (§3.3 life-spans, plus the
/// receiver dimension when constituents are correlated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScopeKey {
    /// Same-transaction composite: one instance pool per top-level txn.
    Txn(TxnId),
    /// Cross-transaction composite: one global pool.
    Global,
    /// Same-transaction + same-receiver.
    TxnReceiver(TxnId, reach_common::ObjectId),
    /// Cross-transaction + same-receiver.
    Receiver(reach_common::ObjectId),
}

/// Upper bound on in-flight instances per scope pool. Chronicle and
/// continuous contexts open a new instance per unconsumed initiator; a
/// stream of initiators that never complete would otherwise grow the
/// pool (and the per-event scan) without bound. When the cap is hit the
/// *oldest* semi-composed instance is discarded — the same policy §3.3
/// applies when a life-span elapses, triggered by pressure instead of
/// time.
pub const MAX_POOL: usize = 4096;

/// A completed composition ready to become a composite occurrence.
#[derive(Debug)]
pub struct Completion {
    pub constituents: Vec<Arc<EventOccurrence>>,
    /// True if completed by window close rather than by a feed.
    pub at_window_close: bool,
}

/// Instance pools plus the occurrence slab they allocate from — one
/// mutex so a feed touches a single lock.
struct CompState {
    instances: HashMap<ScopeKey, Vec<Automaton>>,
    slab: OccSlab,
}

/// The compositor for one composite event type.
pub struct Compositor {
    expr: EventExpr,
    scope: CompositionScope,
    lifespan: Lifespan,
    policy: ConsumptionPolicy,
    correlation: Correlation,
    has_window_ops: bool,
    state: Mutex<CompState>,
    /// Shared observability registry; instance accounting (§3.3 GC
    /// visibility) is recorded here when observability is enabled.
    metrics: Arc<MetricsRegistry>,
}

impl Compositor {
    pub fn new(
        expr: EventExpr,
        scope: CompositionScope,
        lifespan: Lifespan,
        policy: ConsumptionPolicy,
    ) -> Self {
        Self::with_correlation(expr, scope, lifespan, policy, Correlation::None)
    }

    /// A compositor whose instances are additionally keyed by the
    /// constituents' receiver object.
    pub fn with_correlation(
        expr: EventExpr,
        scope: CompositionScope,
        lifespan: Lifespan,
        policy: ConsumptionPolicy,
        correlation: Correlation,
    ) -> Self {
        let has_window_ops = expr.has_window_operator();
        Compositor {
            expr,
            scope,
            lifespan,
            policy,
            correlation,
            has_window_ops,
            state: Mutex::new(CompState {
                instances: HashMap::new(),
                slab: OccSlab::new(),
            }),
            metrics: MetricsRegistry::new_shared(),
        }
    }

    /// Attach the stack-wide registry (replacing the private default).
    /// Called by the ECA-manager while it still owns the compositor.
    pub fn set_metrics(&mut self, metrics: Arc<MetricsRegistry>) {
        self.metrics = metrics;
    }

    pub fn scope(&self) -> CompositionScope {
        self.scope
    }

    pub fn lifespan(&self) -> Lifespan {
        self.lifespan
    }

    fn scope_key(&self, occ: &EventOccurrence) -> Option<ScopeKey> {
        match (self.scope, self.correlation) {
            (CompositionScope::SameTransaction, Correlation::None) => {
                occ.top_txn.map(ScopeKey::Txn)
            }
            (CompositionScope::CrossTransaction, Correlation::None) => Some(ScopeKey::Global),
            (CompositionScope::SameTransaction, Correlation::SameReceiver) => {
                let receiver = occ.first_primitive().data.receiver?;
                occ.top_txn.map(|t| ScopeKey::TxnReceiver(t, receiver))
            }
            (CompositionScope::CrossTransaction, Correlation::SameReceiver) => {
                Some(ScopeKey::Receiver(occ.first_primitive().data.receiver?))
            }
        }
    }

    /// Feed an occurrence; returns completions fired by this feed.
    pub fn feed(&self, occ: &Arc<EventOccurrence>) -> Vec<Completion> {
        let Some(key) = self.scope_key(occ) else {
            // A transaction-less (temporal) occurrence cannot join a
            // same-transaction composite.
            return Vec::new();
        };
        let obs = self.metrics.on();
        let mut state = self.state.lock();
        let CompState { instances, slab } = &mut *state;
        let pool = instances.entry(key).or_default();
        let mut fired = Vec::new();
        match self.policy {
            ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative => {
                if pool.is_empty() {
                    pool.push(Automaton::new_in(&self.expr, self.policy, slab));
                    if obs {
                        self.metrics.events.instances_created.inc();
                    }
                }
                if pool[0].feed(occ, slab) == Feed::Complete {
                    // Recent/cumulative pools hold exactly one instance.
                    let inst = pool.pop().expect("fed instance present");
                    fired.push(Completion {
                        constituents: inst.constituents(slab),
                        at_window_close: false,
                    });
                    inst.retire(slab);
                }
            }
            ConsumptionPolicy::Chronicle => {
                // Oldest instance that accepts the occurrence wins; if
                // none accepts, a fresh instance gets a chance.
                let mut accepted = false;
                let mut complete_idx = None;
                for (i, inst) in pool.iter_mut().enumerate() {
                    match inst.feed(occ, slab) {
                        Feed::Ignored => continue,
                        Feed::Progress => {
                            accepted = true;
                            break;
                        }
                        Feed::Complete => {
                            accepted = true;
                            complete_idx = Some(i);
                            break;
                        }
                    }
                }
                if let Some(i) = complete_idx {
                    let inst = pool.remove(i);
                    fired.push(Completion {
                        constituents: inst.constituents(slab),
                        at_window_close: false,
                    });
                    inst.retire(slab);
                }
                if !accepted {
                    let mut inst = Automaton::new_in(&self.expr, self.policy, slab);
                    match inst.feed(occ, slab) {
                        Feed::Progress => {
                            pool.push(inst);
                            if obs {
                                self.metrics.events.instances_created.inc();
                            }
                            if pool.len() > MAX_POOL {
                                // Discard oldest (§3.3 pressure GC).
                                pool.remove(0).retire(slab);
                                if obs {
                                    self.metrics.events.instances_discarded.inc();
                                    self.metrics.events.instances_pressure_gcd.inc();
                                }
                            }
                        }
                        Feed::Complete => {
                            fired.push(Completion {
                                constituents: inst.constituents(slab),
                                at_window_close: false,
                            });
                            inst.retire(slab);
                        }
                        Feed::Ignored => inst.retire(slab), // irrelevant occurrence
                    }
                }
            }
            ConsumptionPolicy::Continuous => {
                // Every occurrence reaches every open window, and may
                // open a window of its own.
                let mut survivors = Vec::with_capacity(pool.len() + 1);
                for mut inst in pool.drain(..) {
                    match inst.feed(occ, slab) {
                        Feed::Complete => {
                            fired.push(Completion {
                                constituents: inst.constituents(slab),
                                at_window_close: false,
                            });
                            inst.retire(slab);
                        }
                        _ => survivors.push(inst),
                    }
                }
                let mut fresh = Automaton::new_in(&self.expr, self.policy, slab);
                match fresh.feed(occ, slab) {
                    Feed::Progress => {
                        survivors.push(fresh);
                        if obs {
                            self.metrics.events.instances_created.inc();
                        }
                    }
                    Feed::Complete => {
                        fired.push(Completion {
                            constituents: fresh.constituents(slab),
                            at_window_close: false,
                        });
                        fresh.retire(slab);
                    }
                    Feed::Ignored => fresh.retire(slab),
                }
                if survivors.len() > MAX_POOL {
                    let excess = survivors.len() - MAX_POOL;
                    // Discard oldest windows.
                    for old in survivors.drain(..excess) {
                        old.retire(slab);
                    }
                    if obs {
                        self.metrics.events.instances_discarded.add(excess as u64);
                        self.metrics
                            .events
                            .instances_pressure_gcd
                            .add(excess as u64);
                    }
                }
                *pool = survivors;
            }
        }
        if pool.is_empty() {
            instances.remove(&key);
        }
        if obs {
            let live: usize = instances.values().map(|p| p.len()).sum();
            self.metrics.events.instances_peak.record_max(live as u64);
            self.metrics
                .events
                .occ_slab_peak
                .record_max(slab.high_water() as u64);
        }
        fired
    }

    /// A top-level transaction ended: close its window. Same-transaction
    /// instances are evaluated for window-close firing and then removed
    /// — "once the transaction is either committed or aborted, the event
    /// composition is discarded" (§3.3).
    pub fn close_txn(&self, txn: TxnId) -> Vec<Completion> {
        if self.scope != CompositionScope::SameTransaction {
            return Vec::new();
        }
        let mut fired = Vec::new();
        let mut discarded = 0u64;
        {
            let mut state = self.state.lock();
            let CompState { instances, slab } = &mut *state;
            let keys: Vec<ScopeKey> = instances
                .keys()
                .filter(|k| {
                    matches!(k, ScopeKey::Txn(t) if *t == txn)
                        || matches!(k, ScopeKey::TxnReceiver(t, _) if *t == txn)
                })
                .copied()
                .collect();
            for k in keys {
                let Some(pool) = instances.remove(&k) else {
                    continue;
                };
                for inst in pool {
                    discarded += 1;
                    if self.has_window_ops && inst.complete_at_close() {
                        fired.push(Completion {
                            constituents: inst.constituents(slab),
                            at_window_close: true,
                        });
                    }
                    // Window closed: free the whole generation.
                    inst.retire(slab);
                }
            }
        }
        if discarded > 0 && self.metrics.on() {
            self.metrics.events.instances_discarded.add(discarded);
        }
        fired
    }

    /// Sweep interval lifespans: instances whose validity window has
    /// elapsed fire (if a window operator is satisfied) or are discarded.
    pub fn expire(&self, now: TimePoint) -> Vec<Completion> {
        let Lifespan::Interval(window) = self.lifespan else {
            return Vec::new();
        };
        let mut fired = Vec::new();
        let mut expired = 0u64;
        let mut state = self.state.lock();
        let CompState { instances, slab } = &mut *state;
        for pool in instances.values_mut() {
            let mut i = 0;
            while i < pool.len() {
                let elapsed = match pool[i].started_at {
                    Some(started) => started.plus(window) <= now,
                    None => false,
                };
                if !elapsed {
                    i += 1;
                    continue;
                }
                let inst = pool.remove(i);
                if self.has_window_ops && inst.complete_at_close() {
                    fired.push(Completion {
                        constituents: inst.constituents(slab),
                        at_window_close: true,
                    });
                }
                inst.retire(slab);
                expired += 1;
            }
        }
        instances.retain(|_, pool| !pool.is_empty());
        if expired > 0 && self.metrics.on() {
            self.metrics.events.instances_discarded.add(expired);
        }
        fired
    }

    /// Number of live (semi-composed) instances — what §3.3's GC keeps
    /// bounded.
    pub fn live_instances(&self) -> usize {
        self.state.lock().instances.values().map(|p| p.len()).sum()
    }

    /// Occupied occurrence-slab slots (constituents of semi-composed
    /// instances awaiting their window close).
    pub fn slab_live(&self) -> usize {
        self.state.lock().slab.live()
    }
}

impl std::fmt::Debug for Compositor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compositor")
            .field("scope", &self.scope)
            .field("policy", &self.policy)
            .field("live", &self.live_instances())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;
    use reach_common::{EventTypeId, Timestamp};

    fn occ(ty: u64, seq: u64, txn: Option<u64>) -> Arc<EventOccurrence> {
        Arc::new(EventOccurrence {
            event_type: EventTypeId::new(ty),
            seq: Timestamp::new(seq),
            at: TimePoint::from_millis(seq),
            txn: txn.map(TxnId::new),
            top_txn: txn.map(TxnId::new),
            data: EventData::default(),
            constituents: Vec::new(),
        })
    }

    fn e(n: u64) -> EventExpr {
        EventExpr::Primitive(EventTypeId::new(n))
    }

    fn cross(expr: EventExpr, policy: ConsumptionPolicy) -> Compositor {
        Compositor::new(
            expr,
            CompositionScope::CrossTransaction,
            Lifespan::Interval(std::time::Duration::from_secs(3600)),
            policy,
        )
    }

    #[test]
    fn sequence_requires_order() {
        let c = cross(
            EventExpr::Sequence(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        // e2 first: ignored entirely.
        assert!(c.feed(&occ(2, 1, Some(1))).is_empty());
        assert_eq!(c.live_instances(), 0);
        // e1 then e2: fires.
        assert!(c.feed(&occ(1, 2, Some(1))).is_empty());
        assert_eq!(c.live_instances(), 1);
        let fired = c.feed(&occ(2, 3, Some(1)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].constituents.len(), 2);
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn conjunction_any_order() {
        let c = cross(
            EventExpr::Conjunction(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        assert!(c.feed(&occ(2, 1, Some(1))).is_empty());
        let fired = c.feed(&occ(1, 2, Some(1)));
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn disjunction_fires_on_first() {
        let c = cross(
            EventExpr::Disjunction(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        let fired = c.feed(&occ(2, 1, Some(1)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].constituents[0].event_type, EventTypeId::new(2));
    }

    #[test]
    fn history_counts_occurrences() {
        let c = cross(
            EventExpr::History {
                expr: Arc::new(e(1)),
                count: 3,
            },
            ConsumptionPolicy::Chronicle,
        );
        assert!(c.feed(&occ(1, 1, Some(1))).is_empty());
        assert!(c.feed(&occ(1, 2, Some(1))).is_empty());
        let fired = c.feed(&occ(1, 3, Some(1)));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].constituents.len(), 3);
    }

    #[test]
    fn snoop_contexts_on_the_papers_example() {
        // E3 = (E1 ; E2), arrivals e1, e1', e2 — §3.4's running example.
        let arrivals = [occ(1, 1, Some(1)), occ(1, 2, Some(1)), occ(2, 3, Some(1))];
        let run = |policy: ConsumptionPolicy| -> Vec<Vec<u64>> {
            let c = cross(EventExpr::Sequence(vec![e(1), e(2)]), policy);
            let mut all = Vec::new();
            for a in &arrivals {
                for f in c.feed(a) {
                    all.push(f.constituents.iter().map(|o| o.seq.raw()).collect());
                }
            }
            all
        };
        // recent: uses the most recent e1 (seq 2).
        assert_eq!(run(ConsumptionPolicy::Recent), vec![vec![2, 3]]);
        // chronicle: uses the chronologically first e1 (seq 1).
        assert_eq!(run(ConsumptionPolicy::Chronicle), vec![vec![1, 3]]);
        // continuous: both open windows complete on e2.
        assert_eq!(
            run(ConsumptionPolicy::Continuous),
            vec![vec![1, 3], vec![2, 3]]
        );
        // cumulative: all occurrences folded in.
        assert_eq!(run(ConsumptionPolicy::Cumulative), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn chronicle_pairs_fifo_across_completions() {
        let c = cross(
            EventExpr::Sequence(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(1)));
        c.feed(&occ(1, 2, Some(1)));
        assert_eq!(c.live_instances(), 2);
        let f1 = c.feed(&occ(2, 3, Some(1)));
        assert_eq!(f1[0].constituents[0].seq.raw(), 1);
        let f2 = c.feed(&occ(2, 4, Some(1)));
        assert_eq!(f2[0].constituents[0].seq.raw(), 2);
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn same_transaction_scope_partitions_by_txn() {
        let c = Compositor::new(
            EventExpr::Sequence(vec![e(1), e(2)]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(10)));
        // e2 in a different transaction must not complete txn 10's window.
        assert!(c.feed(&occ(2, 2, Some(20))).is_empty());
        // e2 in txn 10 completes it.
        assert_eq!(c.feed(&occ(2, 3, Some(10))).len(), 1);
    }

    #[test]
    fn txn_end_discards_semi_composed_instances() {
        let c = Compositor::new(
            EventExpr::Sequence(vec![e(1), e(2)]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(10)));
        assert_eq!(c.live_instances(), 1);
        let fired = c.close_txn(TxnId::new(10));
        assert!(fired.is_empty());
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn negation_fires_at_window_close_iff_absent() {
        // Neg(e2) within a transaction window.
        let c = Compositor::new(
            EventExpr::Sequence(vec![e(1), EventExpr::Negation(Arc::new(e(2)))]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        );
        // Window 10: e1 then nothing → fires at close.
        c.feed(&occ(1, 1, Some(10)));
        let fired = c.close_txn(TxnId::new(10));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].at_window_close);
        // Window 20: e1 then the forbidden e2 → no firing at close.
        c.feed(&occ(1, 2, Some(20)));
        c.feed(&occ(2, 3, Some(20)));
        assert!(c.close_txn(TxnId::new(20)).is_empty());
    }

    #[test]
    fn closure_collapses_multiple_occurrences() {
        let c = Compositor::new(
            EventExpr::Closure(Arc::new(e(1))),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        );
        for s in 1..=4 {
            assert!(c.feed(&occ(1, s, Some(10))).is_empty());
        }
        let fired = c.close_txn(TxnId::new(10));
        assert_eq!(fired.len(), 1, "closure fires once");
        assert_eq!(fired[0].constituents.len(), 4, "with all occurrences");
        // Empty window: no firing.
        assert!(c.close_txn(TxnId::new(11)).is_empty());
    }

    #[test]
    fn interval_expiry_gcs_instances() {
        let c = Compositor::new(
            EventExpr::Sequence(vec![e(1), e(2)]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(std::time::Duration::from_millis(100)),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(1))); // at t=1ms
        assert_eq!(c.live_instances(), 1);
        // Not yet expired at t=50ms.
        assert!(c.expire(TimePoint::from_millis(50)).is_empty());
        assert_eq!(c.live_instances(), 1);
        // Expired at t=200ms: discarded silently (no window operator).
        assert!(c.expire(TimePoint::from_millis(200)).is_empty());
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn interval_expiry_fires_negation() {
        let c = Compositor::new(
            EventExpr::Sequence(vec![e(1), EventExpr::Negation(Arc::new(e(2)))]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(std::time::Duration::from_millis(100)),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(1)));
        let fired = c.expire(TimePoint::from_millis(200));
        assert_eq!(fired.len(), 1);
        assert!(fired[0].at_window_close);
    }

    #[test]
    fn cross_transaction_composite_reports_all_origins() {
        let c = cross(
            EventExpr::Conjunction(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(10)));
        let fired = c.feed(&occ(2, 2, Some(20)));
        assert_eq!(fired.len(), 1);
        let origins: Vec<_> = fired[0]
            .constituents
            .iter()
            .filter_map(|o| o.top_txn)
            .collect();
        assert_eq!(origins, vec![TxnId::new(10), TxnId::new(20)]);
    }

    #[test]
    fn slab_slots_reclaimed_at_fire_and_window_close() {
        // Fire path: constituents leave the slab with the completion.
        let c = cross(
            EventExpr::Sequence(vec![e(1), e(2)]),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(1, 1, Some(1)));
        assert_eq!(c.slab_live(), 1);
        let fired = c.feed(&occ(2, 2, Some(1)));
        assert_eq!(fired[0].constituents.len(), 2);
        assert_eq!(c.slab_live(), 0, "generation freed at fire");
        // Ignored occurrences never occupy a slot.
        c.feed(&occ(99, 3, Some(1)));
        assert_eq!(c.slab_live(), 0);

        // Window-close path: closure banks occurrences until EOT, then
        // the whole generation is freed after resolution.
        let w = Compositor::new(
            EventExpr::Closure(Arc::new(e(1))),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        );
        for s in 1..=4 {
            w.feed(&occ(1, s, Some(10)));
        }
        assert_eq!(w.slab_live(), 4);
        let fired = w.close_txn(TxnId::new(10));
        assert_eq!(fired[0].constituents.len(), 4);
        assert_eq!(w.slab_live(), 0, "generation freed at window close");
    }

    #[test]
    fn recent_supersede_recycles_slots_eagerly() {
        let c = cross(
            EventExpr::Sequence(vec![e(1), e(2)]),
            ConsumptionPolicy::Recent,
        );
        for s in 1..=10 {
            c.feed(&occ(1, s, Some(1)));
        }
        // Ten e1 arrivals, but only the most recent occupies a slot.
        assert_eq!(c.slab_live(), 1, "superseded slots recycle eagerly");
        let fired = c.feed(&occ(2, 11, Some(1)));
        assert_eq!(fired[0].constituents.len(), 2);
        assert_eq!(fired[0].constituents[0].seq.raw(), 10);
        assert_eq!(c.slab_live(), 0);
    }

    #[test]
    fn nested_expression() {
        // ( (e1 ; e2) | TIMES(2, e3) )
        let c = cross(
            EventExpr::Disjunction(vec![
                EventExpr::Sequence(vec![e(1), e(2)]),
                EventExpr::History {
                    expr: Arc::new(e(3)),
                    count: 2,
                },
            ]),
            ConsumptionPolicy::Chronicle,
        );
        c.feed(&occ(3, 1, Some(1)));
        c.feed(&occ(1, 2, Some(1)));
        let fired = c.feed(&occ(3, 3, Some(1)));
        assert_eq!(fired.len(), 1, "TIMES(2, e3) branch wins");
        assert_eq!(fired[0].constituents.len(), 2);
    }
}
