//! `reach-core` — the REACH active layer: the paper's primary
//! contribution, integrated with the Open OODB substrate.
//!
//! The layer decomposes exactly as §6 prescribes:
//!
//! * [`event`] — the event model: primitive event types (method,
//!   state-change, flow-control, temporal) and event occurrences with
//!   their parameters (§3.1);
//! * [`coupling`] — the six coupling modes and the **Table 1** validity
//!   matrix of (event category × coupling mode) (§3.2);
//! * [`algebra`] — the composition algebra: sequence, conjunction,
//!   disjunction, negation, closure, history, with validity intervals
//!   (§3.1, §3.3);
//! * [`compositor`] — the "many small compositors": one automaton
//!   instance per (composite type, scope key), fed asynchronously,
//!   garbage-collected when its lifespan ends (§6.3);
//! * [`consumption`] — the SNOOP consumption policies: recent,
//!   chronicle, continuous, cumulative (§3.4);
//! * [`rule`] — ECA rules: priorities, couplings, condition and action
//!   closures (the compiled form of §6.1's rule language);
//! * [`eca`] — the ECA-managers: one per event type, holding the rules
//!   it fires and the composite managers it feeds (§6.3, Figure 2);
//! * [`engine`] — rule firing: serial ring-sequence and parallel
//!   sibling-subtransaction execution, the deferred queue, the four
//!   detached variants with their commit dependencies (§6.4);
//! * [`temporal`] — absolute/periodic/relative temporal events and the
//!   milestone mechanism for time-constrained processing;
//! * [`history`] — distributed per-manager event histories with the
//!   post-commit global history collector (§6.3);
//! * [`reach`] — [`reach::ReachSystem`], the assembled active OODBMS.

pub mod algebra;
pub mod compositor;
pub mod consumption;
pub mod coupling;
pub mod eca;
pub mod engine;
pub mod event;
pub mod history;
pub mod oracle;
pub mod reach;
pub mod rule;
pub mod temporal;

pub use algebra::{CompositionScope, Correlation, EventExpr, Lifespan};
pub use consumption::ConsumptionPolicy;
pub use coupling::{supported, CouplingMode, EventCategory};
pub use engine::{
    DeadLetter, ExecutionStrategy, FiringListener, FiringNotice, RetryPolicy, StatsSnapshot,
    TieBreak,
};
pub use event::{EventData, EventOccurrence, EventSpec, PrimitiveEvent};
pub use reach::{ReachConfig, ReachSystem};
pub use rule::{Rule, RuleBuilder, RuleCtx};
