//! [`ReachSystem`] — the assembled active OODBMS.
//!
//! This is the integration the paper argues for: the REACH detectors are
//! registered directly on the Open OODB substrate's sentry hooks (the
//! dispatcher for method events, the object space for state-change and
//! lifecycle events, the transaction manager for flow-control events),
//! the ECA-managers and compositors sit behind them, and the rule engine
//! executes through the same transaction manager the application uses.
//! Nothing here goes "on top of" a closed interface — which is exactly
//! what §4 found impossible with O2 and ObjectStore.

use crate::algebra::{validate_composite, CompositionScope, Correlation, EventExpr, Lifespan};
use crate::consumption::ConsumptionPolicy;
use crate::coupling::{self, CouplingMode, EventCategory};
use crate::eca::{CompositionMode, EcaManager, Router};
use crate::engine::{
    DeadLetter, Engine, EngineHandler, ExecutionStrategy, RetryPolicy, StatsSnapshot, TieBreak,
};
use crate::event::{CompositeSpec, EventSpec, FlowPoint, MethodPhase, PrimitiveEvent};
use crate::history::GlobalHistory;
use crate::rule::{Rule, RuleBuilder};
use crate::temporal::TemporalManager;
use open_oodb::Database;
use reach_common::sync::RwLock;
use reach_common::{
    ClassId, EventTypeId, IdGen, MetricsRegistry, MetricsSnapshot, ReachError, Result, RuleId,
    Stage, TimePoint, Timestamp, TxnId,
};
use reach_object::{MethodCall, MethodSentry, StateChange, StateSentry, Value};
use reach_txn::{TxnEvent, TxnEventKind, TxnListener};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Construction-time options.
#[derive(Debug, Clone)]
pub struct ReachConfig {
    /// Synchronous (deterministic) or parallel (threaded) composition.
    pub composition: CompositionMode,
    /// Serial ring-sequence or parallel sibling subtransactions for
    /// immediate rule batches.
    pub strategy: ExecutionStrategy,
    /// Group-commit sequencing on the WAL: concurrent committers share
    /// one log sync. Off restores a private sync per commit (the E16
    /// baseline).
    pub group_commit: bool,
    /// Leader batching window for group commit; `None` keeps the WAL's
    /// default (~100µs on file-backed logs).
    pub group_window: Option<Duration>,
    /// Automatic fuzzy checkpoint every this many bytes of WAL growth
    /// (checked after each commit/abort); `None` leaves checkpoints to
    /// explicit [`ReachSystem::checkpoint`] calls.
    pub checkpoint_bytes: Option<u64>,
    /// Event-sequence clock shared with other engine instances. The
    /// distribution layer hands every shard the same clock so `seq`
    /// values totally order occurrences across the deployment; `None`
    /// gives the router a private clock (the single-node default).
    pub shared_seq: Option<Arc<AtomicU64>>,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig {
            composition: CompositionMode::Synchronous,
            strategy: ExecutionStrategy::Serial,
            group_commit: true,
            group_window: None,
            checkpoint_bytes: None,
            shared_seq: None,
        }
    }
}

/// Management view of one registered rule.
#[derive(Debug, Clone)]
pub struct RuleInfo {
    pub id: RuleId,
    pub name: String,
    pub priority: reach_common::Priority,
    pub coupling: CouplingMode,
    pub action_coupling: Option<CouplingMode>,
    pub event_type: EventTypeId,
    pub event_name: String,
    pub enabled: bool,
}

/// The active OODBMS: Open OODB substrate + REACH active layer.
pub struct ReachSystem {
    db: Arc<Database>,
    router: Arc<Router>,
    engine: Arc<Engine>,
    temporal: Arc<TemporalManager>,
    global_history: Arc<GlobalHistory>,
    rules: RwLock<HashMap<RuleId, Arc<Rule>>>,
    rule_ids: IdGen,
    rule_seq: AtomicU64,
    ticker_stop: Arc<AtomicBool>,
}

impl ReachSystem {
    /// Build a REACH system over a database.
    pub fn new(db: Arc<Database>, config: ReachConfig) -> Arc<Self> {
        let seq = config
            .shared_seq
            .clone()
            .unwrap_or_else(|| Arc::new(AtomicU64::new(1)));
        let router = Router::with_seq_clock(Arc::clone(db.schema()), Arc::clone(db.metrics()), seq);
        router.set_mode(config.composition);
        db.storage().wal().set_group_commit(config.group_commit);
        if let Some(window) = config.group_window {
            db.storage().wal().set_group_window(window);
        }
        db.storage()
            .set_checkpoint_threshold(config.checkpoint_bytes);
        let engine = Engine::new(Arc::clone(&db));
        engine.set_strategy(config.strategy);
        router.set_handler(Arc::new(EngineHandler(Arc::clone(&engine))));
        let temporal = TemporalManager::new(Arc::clone(&router));
        {
            let t = Arc::clone(&temporal);
            router.add_observer(Arc::new(move |occ| t.observe(occ)));
        }
        let system = Arc::new(ReachSystem {
            db: Arc::clone(&db),
            router: Arc::clone(&router),
            engine,
            temporal,
            global_history: Arc::new(GlobalHistory::default()),
            rules: RwLock::new(HashMap::new()),
            rule_ids: IdGen::new(),
            rule_seq: AtomicU64::new(1),
            ticker_stop: Arc::new(AtomicBool::new(false)),
        });
        // Wire the detectors onto the substrate's sentry hooks.
        db.dispatcher()
            .add_sentry(Arc::new(MethodBridge(Arc::clone(&system))));
        db.space()
            .add_state_sentry(Arc::new(StateBridge(Arc::clone(&system))));
        db.space()
            .add_lifecycle_sentry(Arc::new(LifecycleBridge(Arc::clone(&system))));
        db.txn_manager()
            .add_listener(Arc::new(FlowBridge(Arc::clone(&system))));
        {
            // The `persist` DB-internal event (§3.1).
            let weak = Arc::downgrade(&system);
            db.persistence_pm()
                .add_persist_hook(Arc::new(move |txn, oid| {
                    let Some(sys) = weak.upgrade() else { return };
                    if txn.is_null() {
                        return;
                    }
                    let Ok(top) = sys.db.txn_manager().top_of(txn) else {
                        return;
                    };
                    let Ok(class) = sys.db.space().class_of(oid) else {
                        return;
                    };
                    sys.router
                        .raise_persist(txn, top, sys.db.clock().now(), oid, class);
                }));
        }
        system
    }

    /// Convenience: in-memory database + default configuration.
    pub fn in_memory() -> Result<Arc<Self>> {
        Ok(Self::new(Database::in_memory()?, ReachConfig::default()))
    }

    // ---- component access ----

    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Begin a read-only snapshot transaction: condition-evaluation
    /// style workloads (many reads, no writes) run against the
    /// committed state at their begin stamp without acquiring locks, so
    /// they never wait behind rule-triggering writers. See
    /// [`Database::begin_read_only`].
    pub fn begin_read_only(&self) -> Result<reach_common::TxnId> {
        self.db.begin_read_only()
    }

    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    pub fn temporal(&self) -> &Arc<TemporalManager> {
        &self.temporal
    }

    pub fn global_history(&self) -> &Arc<GlobalHistory> {
        &self.global_history
    }

    pub fn stats(&self) -> StatsSnapshot {
        self.engine.snapshot()
    }

    /// The stack-wide observability registry (owned by the storage
    /// layer, shared by every component of this system).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.db.metrics()
    }

    /// Turn on firing-path spans, latency histograms and the gated
    /// counter families. Until this is called the instrumentation costs
    /// one relaxed atomic load per record site.
    pub fn enable_metrics(&self) {
        self.db.metrics().enable();
    }

    /// Plain-data copy of every counter, histogram and recent-span ring
    /// — render it with [`MetricsSnapshot::render`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.db.metrics().snapshot()
    }

    /// Take an explicit fuzzy checkpoint (flush, log the dirty-page and
    /// active-writer tables, truncate the obsolete log prefix) and
    /// return what it did.
    pub fn checkpoint(&self) -> Result<open_oodb::CheckpointStats> {
        self.db.checkpoint()
    }

    pub fn set_tiebreak(&self, t: TieBreak) {
        self.engine.set_tiebreak(t);
    }

    pub fn set_simple_events_first(&self, on: bool) {
        self.engine.set_simple_events_first(on);
    }

    /// Tune the transient-error retry of detached rule firings.
    pub fn set_retry_policy(&self, p: RetryPolicy) {
        self.engine.set_retry_policy(p);
    }

    /// Detached firings the engine permanently gave up on.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.engine.dead_letters()
    }

    /// Drain the dead-letter record, leaving it empty. The network
    /// server uses this to forward gave-up firings to subscribers
    /// exactly once.
    pub fn take_dead_letters(&self) -> Vec<DeadLetter> {
        self.engine.take_dead_letters()
    }

    /// Register a listener called after every executed rule action —
    /// the subscription hook for rule-firing notifications.
    pub fn add_firing_listener(&self, listener: crate::engine::FiringListener) {
        self.engine.add_firing_listener(listener);
    }

    // ---- event type definitions ----

    /// `event after class::method(...)` — a method-invocation event.
    /// The dispatcher starts monitoring the pair (the sentry's
    /// "potentially useful" overhead becomes "useful").
    pub fn define_method_event(
        &self,
        name: &str,
        class: ClassId,
        method_name: &str,
        phase: MethodPhase,
    ) -> Result<EventTypeId> {
        let method = self.db.schema().resolve_method(class, method_name)?;
        let ty = self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::Method {
                class,
                method,
                phase,
            }),
        );
        self.db.dispatcher().monitor(class, method);
        Ok(ty)
    }

    /// A state-change event on `class.attribute`.
    pub fn define_state_event(
        &self,
        name: &str,
        class: ClassId,
        attribute: &str,
    ) -> Result<EventTypeId> {
        self.db.schema().attr_slot(class, attribute)?;
        Ok(self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::StateChange {
                class,
                attribute: attribute.to_string(),
            }),
        ))
    }

    /// A constructor (`deletion = false`) or destructor event.
    pub fn define_lifecycle_event(
        &self,
        name: &str,
        class: ClassId,
        deletion: bool,
    ) -> Result<EventTypeId> {
        Ok(self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::Lifecycle { class, deletion }),
        ))
    }

    /// The `persist` DB-internal event: fires when an instance of
    /// `class` (or a subclass) is made persistent.
    pub fn define_persist_event(&self, name: &str, class: ClassId) -> Result<EventTypeId> {
        Ok(self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::Persist { class }),
        ))
    }

    /// A transaction flow-control event (BOT, EOT, commit, abort).
    pub fn define_flow_event(&self, name: &str, point: FlowPoint) -> Result<EventTypeId> {
        Ok(self
            .router
            .register(name, EventSpec::Primitive(PrimitiveEvent::Flow { point })))
    }

    /// An explicit application signal (modelled as a method event, §3.1).
    pub fn define_signal(&self, name: &str) -> Result<EventTypeId> {
        Ok(self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::UserSignal {
                name: name.to_string(),
            }),
        ))
    }

    /// An absolute temporal event.
    pub fn define_absolute_event(&self, name: &str, at: TimePoint) -> Result<EventTypeId> {
        let spec = PrimitiveEvent::TemporalAbsolute { at };
        let ty = self
            .router
            .register(name, EventSpec::Primitive(spec.clone()));
        self.temporal.track(ty, &spec);
        Ok(ty)
    }

    /// A periodic temporal event.
    pub fn define_periodic_event(
        &self,
        name: &str,
        first: TimePoint,
        period: Duration,
    ) -> Result<EventTypeId> {
        let spec = PrimitiveEvent::TemporalPeriodic { first, period };
        let ty = self
            .router
            .register(name, EventSpec::Primitive(spec.clone()));
        self.temporal.track(ty, &spec);
        Ok(ty)
    }

    /// A relative temporal event: `delay` after each `anchor` occurrence.
    pub fn define_relative_event(
        &self,
        name: &str,
        anchor: EventTypeId,
        delay: Duration,
    ) -> Result<EventTypeId> {
        let spec = PrimitiveEvent::TemporalRelative { anchor, delay };
        let ty = self
            .router
            .register(name, EventSpec::Primitive(spec.clone()));
        self.temporal.track(ty, &spec);
        Ok(ty)
    }

    /// A milestone event type: fires only when a watched transaction
    /// misses its deadline (see [`ReachSystem::set_milestone`]).
    /// Categorized as purely temporal, so contingency rules must use a
    /// detached coupling (Table 1).
    pub fn define_milestone_event(&self, name: &str) -> Result<EventTypeId> {
        Ok(self.router.register(
            name,
            EventSpec::Primitive(PrimitiveEvent::TemporalAbsolute { at: TimePoint::MAX }),
        ))
    }

    /// Watch `txn`: unless `reach_milestone` is called first, the
    /// milestone event fires at `deadline`.
    pub fn set_milestone(&self, txn: TxnId, event: EventTypeId, deadline: TimePoint) {
        self.temporal.set_milestone(txn, event, deadline);
    }

    /// Report milestone progress.
    pub fn reach_milestone(&self, txn: TxnId, event: EventTypeId) {
        self.temporal.reach_milestone(txn, event);
    }

    /// A composite event. Validates the §3.3 life-span rules and rejects
    /// temporal constituents in same-transaction composites (temporal
    /// events have no transaction to share).
    pub fn define_composite(
        &self,
        name: &str,
        expr: EventExpr,
        scope: CompositionScope,
        lifespan: Lifespan,
        consumption: ConsumptionPolicy,
    ) -> Result<EventTypeId> {
        self.define_composite_correlated(
            name,
            expr,
            scope,
            lifespan,
            consumption,
            Correlation::None,
        )
    }

    /// A composite event whose constituents are correlated (e.g. all
    /// concerning the same receiver object — SAMOS's "same object").
    pub fn define_composite_correlated(
        &self,
        name: &str,
        expr: EventExpr,
        scope: CompositionScope,
        lifespan: Lifespan,
        consumption: ConsumptionPolicy,
        correlation: Correlation,
    ) -> Result<EventTypeId> {
        validate_composite(&expr, scope, lifespan)?;
        for dep in expr.referenced_types() {
            let mgr = self
                .router
                .manager(dep)
                .ok_or(ReachError::IllegalEventDefinition(format!(
                    "composite {name:?} references unregistered event type {dep}"
                )))?;
            if scope == CompositionScope::SameTransaction
                && mgr.spec.category() == EventCategory::PurelyTemporal
            {
                return Err(ReachError::IllegalEventDefinition(format!(
                    "same-transaction composite {name:?} cannot contain temporal event {dep}"
                )));
            }
        }
        Ok(self.router.register(
            name,
            EventSpec::Composite(CompositeSpec {
                expr,
                scope,
                lifespan,
                consumption,
                correlation,
            }),
        ))
    }

    /// Look up an event type by name.
    pub fn event(&self, name: &str) -> Result<EventTypeId> {
        self.router
            .event_by_name(name)
            .ok_or_else(|| ReachError::NameNotFound(name.to_string()))
    }

    /// The ECA-manager for an event type.
    pub fn manager(&self, ty: EventTypeId) -> Result<Arc<EcaManager>> {
        self.router
            .manager(ty)
            .ok_or_else(|| ReachError::NameNotFound(format!("event type {ty}")))
    }

    // ---- rules ----

    /// Register a rule. Enforces Table 1 against the event's category.
    pub fn define_rule(&self, builder: RuleBuilder) -> Result<RuleId> {
        let id: RuleId = self.rule_ids.next();
        let created = Timestamp::new(self.rule_seq.fetch_add(1, Ordering::Relaxed));
        let rule = Arc::new(builder.build(id, created)?);
        let mgr = self.manager(rule.event_type)?;
        coupling::validate(mgr.spec.category(), rule.coupling)?;
        if let Some(ac) = rule.action_coupling {
            coupling::validate(mgr.spec.category(), ac)?;
            // The action cannot run in an *earlier* phase than its
            // condition: immediate < deferred < the detached family.
            let rank = |m: CouplingMode| match m {
                CouplingMode::Immediate => 0,
                CouplingMode::Deferred => 1,
                _ => 2,
            };
            if rank(ac) < rank(rule.coupling) {
                return Err(ReachError::UnsupportedCoupling {
                    event: format!("C-A pair ({} cond, {} action)", rule.coupling, ac),
                    mode: ac.to_string(),
                });
            }
        }
        mgr.add_rule(Arc::clone(&rule));
        self.rules.write().insert(id, rule);
        Ok(id)
    }

    /// Unregister a rule.
    pub fn drop_rule(&self, id: RuleId) -> Result<()> {
        let rule = self
            .rules
            .write()
            .remove(&id)
            .ok_or(ReachError::RuleNotFound(id))?;
        if let Ok(mgr) = self.manager(rule.event_type) {
            mgr.remove_rule(id);
        }
        Ok(())
    }

    /// Enable/disable a rule in place.
    pub fn set_rule_enabled(&self, id: RuleId, on: bool) -> Result<()> {
        self.rules
            .read()
            .get(&id)
            .map(|r| r.set_enabled(on))
            .ok_or(ReachError::RuleNotFound(id))
    }

    /// A registered rule object.
    pub fn rule(&self, id: RuleId) -> Result<Arc<Rule>> {
        self.rules
            .read()
            .get(&id)
            .cloned()
            .ok_or(ReachError::RuleNotFound(id))
    }

    /// Number of registered rules.
    pub fn rule_count(&self) -> usize {
        self.rules.read().len()
    }

    /// Describe every registered rule (the management view the paper's
    /// planned rule-definition GUI would render).
    pub fn list_rules(&self) -> Vec<RuleInfo> {
        let mut out: Vec<RuleInfo> = self
            .rules
            .read()
            .values()
            .map(|r| RuleInfo {
                id: r.id,
                name: r.name.clone(),
                priority: r.priority,
                coupling: r.coupling,
                action_coupling: r.action_coupling,
                event_type: r.event_type,
                event_name: self
                    .router
                    .manager(r.event_type)
                    .map(|m| m.name.clone())
                    .unwrap_or_default(),
                enabled: r.is_enabled(),
            })
            .collect();
        out.sort_by_key(|r| r.id);
        out
    }

    // ---- raising & time ----

    /// Raise an explicit user signal, optionally within a transaction.
    pub fn raise_signal(&self, txn: Option<TxnId>, name: &str, args: Vec<Value>) -> Result<()> {
        self.raise_signal_for(txn, name, None, args)
    }

    /// Raise a user signal that concerns a specific object — the
    /// occurrence carries the receiver, so correlated composites
    /// (`Correlation::SameReceiver`) can partition signal streams per
    /// object.
    pub fn raise_signal_for(
        &self,
        txn: Option<TxnId>,
        name: &str,
        receiver: Option<reach_common::ObjectId>,
        args: Vec<Value>,
    ) -> Result<()> {
        let top = match txn {
            Some(t) => Some(self.db.txn_manager().top_of(t)?),
            None => None,
        };
        self.router
            .raise_signal(txn, top, self.db.clock().now(), name, receiver, args);
        Ok(())
    }

    /// Advance the virtual clock, firing due temporal events, sweeping
    /// validity intervals and milestone deadlines. Returns the number of
    /// temporal occurrences raised.
    pub fn advance_time(&self, d: Duration) -> usize {
        let now = self.db.clock().advance(d);
        let fired = self.temporal.tick(now);
        self.router.expire(now);
        fired
    }

    /// Start a background ticker (real-time mode): polls the clock every
    /// `interval`. Call [`ReachSystem::stop_ticker`] to end it.
    pub fn start_ticker(self: &Arc<Self>, interval: Duration) {
        self.ticker_stop.store(false, Ordering::Release);
        let system = Arc::clone(self);
        let stop = Arc::clone(&self.ticker_stop);
        std::thread::Builder::new()
            .name("reach-ticker".into())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    let now = system.db.clock().now();
                    system.temporal.tick(now);
                    system.router.expire(now);
                }
            })
            .expect("spawn ticker");
    }

    pub fn stop_ticker(&self) {
        self.ticker_stop.store(true, Ordering::Release);
    }

    /// Wait until composition queues are drained and all detached rule
    /// transactions have finished.
    pub fn wait_quiescent(&self) {
        self.router.flush();
        self.engine.wait_idle();
        // Detached rules may themselves have raised events that fan out
        // again; one more round settles short cascades.
        self.router.flush();
        self.engine.wait_idle();
    }

    /// Drain every local history of `top`'s occurrences into the global
    /// history — the §6.3 post-EOT collection.
    fn collect_histories(&self, top: TxnId) {
        let mut drained = Vec::new();
        for mgr in self.router.managers() {
            drained.extend(mgr.history.drain_for_txn(top));
        }
        if !drained.is_empty() {
            self.global_history.absorb(drained);
        }
    }
}

impl std::fmt::Debug for ReachSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReachSystem")
            .field("rules", &self.rule_count())
            .field("managers", &self.router.managers().len())
            .finish()
    }
}

// ---------------------------------------------------------------------
// Detector bridges
// ---------------------------------------------------------------------

struct MethodBridge(Arc<ReachSystem>);

impl MethodBridge {
    fn raise(&self, call: &MethodCall, phase: MethodPhase) {
        let sys = &self.0;
        let (txn, top) = if call.txn.is_null() {
            return; // events outside transactions are not observable
        } else {
            match sys.db.txn_manager().top_of(call.txn) {
                Ok(top) => (call.txn, top),
                Err(_) => return,
            }
        };
        // This bridge *is* the integrated in-line wrapper sentry: the
        // dispatcher only calls it for monitored methods, so every
        // traversal is useful work.
        let t0 = sys.db.metrics().span_start();
        sys.router.raise_method(
            txn,
            top,
            sys.db.clock().now(),
            call.receiver,
            call.class,
            call.method,
            phase,
            &call.args,
        );
        if let Some(t0) = t0 {
            let m = sys.db.metrics();
            m.sentry.inline_invocations.inc();
            m.sentry.inline_detections.inc();
            m.record_span(Stage::Sentry, t0.elapsed().as_nanos() as u64);
        }
    }
}

impl MethodSentry for MethodBridge {
    fn before(&self, call: &MethodCall) -> Result<()> {
        // No before-phase method event is registered anywhere: the
        // raise cannot match and no immediate rule can veto, so skip
        // the txn resolution, index lookup and activity check outright.
        if !self.0.router.observes_method_phase(MethodPhase::Before) {
            return Ok(());
        }
        self.raise(call, MethodPhase::Before);
        // An immediate rule may have aborted the triggering transaction
        // (consistency veto): refuse to run the method body then.
        if !call.txn.is_null() && !self.0.db.txn_manager().is_active(call.txn) {
            return Err(ReachError::TxnAborted(call.txn));
        }
        Ok(())
    }

    fn after(&self, call: &MethodCall, _result: &Result<Value>) {
        if !self.0.router.observes_method_phase(MethodPhase::After) {
            return;
        }
        self.raise(call, MethodPhase::After);
    }

    /// Batched after-detection: translate the whole batch into router
    /// observations and raise them in one pass, amortizing the
    /// txn→top resolution, the clock read and the metrics stamps.
    /// (All calls get the batch-end clock reading as their time point;
    /// under the virtual clock that is exactly what per-call raising
    /// yields too, since the clock only moves on explicit ticks.)
    fn after_batch(&self, calls: &[(MethodCall, Result<Value>)]) {
        let sys = &self.0;
        if !sys.router.observes_method_phase(MethodPhase::After) {
            return;
        }
        let t0 = sys.db.metrics().span_start();
        let now = sys.db.clock().now();
        let mut last: Option<(TxnId, TxnId)> = None;
        let mut obs = Vec::with_capacity(calls.len());
        for (call, _result) in calls {
            if call.txn.is_null() {
                continue; // events outside transactions are not observable
            }
            let top = match last {
                Some((txn, top)) if txn == call.txn => top,
                _ => match sys.db.txn_manager().top_of(call.txn) {
                    Ok(top) => {
                        last = Some((call.txn, top));
                        top
                    }
                    Err(_) => continue,
                },
            };
            obs.push(crate::eca::MethodObservation {
                txn: call.txn,
                top,
                at: now,
                receiver: call.receiver,
                class: call.class,
                method: call.method,
                phase: MethodPhase::After,
                args: &call.args,
            });
        }
        sys.router.raise_method_batch(&obs);
        if let Some(t0) = t0 {
            let m = sys.db.metrics();
            m.sentry.inline_invocations.add(obs.len() as u64);
            m.sentry.inline_detections.add(obs.len() as u64);
            m.record_span(Stage::Sentry, t0.elapsed().as_nanos() as u64);
        }
    }
}

struct StateBridge(Arc<ReachSystem>);

impl StateSentry for StateBridge {
    fn on_change(&self, change: &StateChange) {
        let sys = &self.0;
        if change.txn.is_null() {
            return;
        }
        let Ok(top) = sys.db.txn_manager().top_of(change.txn) else {
            return;
        };
        let t0 = sys.db.metrics().span_start();
        sys.router.raise_state_change(
            change.txn,
            top,
            sys.db.clock().now(),
            change.oid,
            change.class,
            &change.attribute,
            change.old.clone(),
            change.new.clone(),
        );
        if let Some(t0) = t0 {
            let m = sys.db.metrics();
            m.sentry.inline_invocations.inc();
            m.sentry.inline_detections.inc();
            m.record_span(Stage::Sentry, t0.elapsed().as_nanos() as u64);
        }
    }
}

struct LifecycleBridge(Arc<ReachSystem>);

impl reach_object::LifecycleSentry for LifecycleBridge {
    fn on_create(
        &self,
        txn: TxnId,
        oid: reach_common::ObjectId,
        state: &reach_object::ObjectState,
    ) {
        self.raise(txn, oid, state.class, false);
    }

    fn on_delete(
        &self,
        txn: TxnId,
        oid: reach_common::ObjectId,
        state: &reach_object::ObjectState,
    ) {
        self.raise(txn, oid, state.class, true);
    }
}

impl LifecycleBridge {
    fn raise(&self, txn: TxnId, oid: reach_common::ObjectId, class: ClassId, deletion: bool) {
        let sys = &self.0;
        if txn.is_null() {
            return;
        }
        let Ok(top) = sys.db.txn_manager().top_of(txn) else {
            return;
        };
        sys.router
            .raise_lifecycle(txn, top, sys.db.clock().now(), oid, class, deletion);
    }
}

struct FlowBridge(Arc<ReachSystem>);

impl TxnListener for FlowBridge {
    fn on_txn_event(&self, event: &TxnEvent) {
        let sys = &self.0;
        let point = match event.kind {
            TxnEventKind::Begin => FlowPoint::Begin,
            TxnEventKind::PreCommit => FlowPoint::PreCommit,
            TxnEventKind::Committed => FlowPoint::Commit,
            TxnEventKind::Aborted => FlowPoint::Abort,
        };
        // Rule-spawned transactions do not raise flow-control events
        // (termination guard), but their composition state and histories
        // are still cleaned up below. Both the rule-txn test (a mutex)
        // and the raise itself are skipped entirely when no flow event
        // is registered — this listener runs twice per subtransaction,
        // so with zero flow rules it must stay at one atomic load.
        let raise = |txn, top, at, point| {
            if sys.router.observes_flow() && !sys.engine.is_rule_txn(event.top_level) {
                sys.router.raise_flow(txn, top, at, point);
            }
        };
        match event.kind {
            TxnEventKind::Begin => {
                raise(event.txn, event.top_level, event.at, point);
            }
            TxnEventKind::PreCommit => {
                // Composition barrier (§6.4): all in-flight primitives of
                // this transaction must be composed before deferred rules
                // are chosen, and same-transaction windows close here so
                // negation/closure composites can still fire deferred
                // rules inside the committing transaction.
                sys.router.flush();
                sys.router.close_txn(event.top_level, true);
                raise(event.txn, event.top_level, event.at, point);
            }
            TxnEventKind::Committed => {
                raise(event.txn, event.top_level, event.at, point);
                if event.parent.is_none() {
                    sys.router.close_txn(event.top_level, false);
                    sys.engine.on_txn_finished(event.top_level);
                    sys.temporal.txn_finished(event.top_level);
                    sys.collect_histories(event.top_level);
                }
            }
            TxnEventKind::Aborted => {
                raise(event.txn, event.top_level, event.at, point);
                if event.parent.is_none() {
                    // Abort revokes the transaction's events: windows are
                    // discarded without firing.
                    sys.router.close_txn(event.top_level, false);
                    sys.engine.on_txn_finished(event.top_level);
                    sys.temporal.txn_finished(event.top_level);
                    sys.collect_histories(event.top_level);
                }
            }
        }
    }
}
