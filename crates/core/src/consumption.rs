//! Event consumption policies (§3.4).
//!
//! "The problem arises from multiple instances of primitive events
//! arriving at an event composer and the resulting ambiguity" — given
//! `E3 = (E1 ; E2)` and arrivals `e1, e1', e2`, should the composer use
//! `e1` or `e1'`? SNOOP \[CM91\] defines four contexts, all implemented
//! here; REACH's minimum is recent + chronicle.
//!
//! * **recent** — "typical for sensor monitoring": the most recent
//!   occurrence of each primitive participates; earlier ones are
//!   superseded.
//! * **chronicle** — "typically used in workflow applications":
//!   primitives are consumed in strict arrival order; after a composite
//!   fires, its constituents are consumed and composition restarts.
//! * **continuous** — "useful in financial applications": every
//!   initiator occurrence opens its own composition window; one
//!   occurrence may complete many windows.
//! * **cumulative** — all occurrences of each primitive up to completion
//!   are folded into the composite's constituents.
//!
//! The policy is orthogonal to the life-span of the composition (§3.4
//! final remark) — both are parameters of a composite definition.

use std::fmt;

/// The four SNOOP consumption contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsumptionPolicy {
    Recent,
    Chronicle,
    Continuous,
    Cumulative,
}

impl ConsumptionPolicy {
    pub const ALL: [ConsumptionPolicy; 4] = [
        ConsumptionPolicy::Recent,
        ConsumptionPolicy::Chronicle,
        ConsumptionPolicy::Continuous,
        ConsumptionPolicy::Cumulative,
    ];
}

impl fmt::Display for ConsumptionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConsumptionPolicy::Recent => "recent",
            ConsumptionPolicy::Chronicle => "chronicle",
            ConsumptionPolicy::Continuous => "continuous",
            ConsumptionPolicy::Cumulative => "cumulative",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(ConsumptionPolicy::Recent.to_string(), "recent");
        assert_eq!(ConsumptionPolicy::ALL.len(), 4);
    }
}
