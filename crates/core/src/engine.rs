//! The rule execution engine (§6.4).
//!
//! Responsibilities:
//!
//! * **ordering** — rules fired by one event run by priority; ties break
//!   oldest-rule-first (default) or newest-rule-first; the deferred
//!   drain can additionally put simple-event rules ahead of
//!   composite-event rules;
//! * **immediate** rules run as subtransactions at the detection point —
//!   either serially (the paper's ring-sequence fallback for the missing
//!   nested-transaction parallelism) or as parallel sibling
//!   subtransactions ([`ExecutionStrategy`]); a failing immediate rule
//!   aborts the triggering transaction (consistency semantics);
//! * **deferred** rules are buffered per top-level transaction and
//!   drained at pre-commit through the Transaction PM, in order;
//! * the four **detached** variants run on worker threads in fresh
//!   top-level transactions, with commit/abort dependencies registered
//!   against *every* origin transaction of the triggering event
//!   (Table 1's "all commit" / "all abort"), sequential start-after-
//!   commit scheduling, and lock hand-over for the exclusive mode;
//! * **§3.2 parameter rule** — references to transient objects never
//!   cross into detached executions; such firings are rejected and
//!   counted.

use crate::coupling::CouplingMode;
use crate::eca::FireHandler;
use crate::event::EventOccurrence;
use crate::rule::{Rule, RuleCtx};
use open_oodb::Database;
use reach_common::sync::{Condvar, Mutex, RwLock};
use reach_common::{
    EventTypeId, MetricsRegistry, ObjectId, ReachError, Result, RuleId, Stage, TxnId,
};
use reach_txn::dependency::{CommitRule, Outcome};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A small reusable worker pool for parallel immediate actions. Thread
/// spawn costs hundreds of microseconds — more than most rule actions —
/// so parallel sibling subtransactions only ever win if the workers are
/// standing by. Submission never blocks: when all workers are busy the
/// job runs inline on the caller (graceful degradation to the serial
/// ring-sequence, and immune to pool-exhaustion deadlocks from cascaded
/// rule firings).
struct ActionPool {
    tx: crossbeam::channel::Sender<Box<dyn FnOnce() + Send>>,
}

impl ActionPool {
    fn new(workers: usize) -> Self {
        let (tx, rx) = crossbeam::channel::bounded::<Box<dyn FnOnce() + Send>>(workers * 2);
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("reach-action-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn action worker");
        }
        ActionPool { tx }
    }

    /// Run all jobs (possibly concurrently), returning their AND-ed
    /// results once every job finished.
    fn run_all(&self, jobs: Vec<Box<dyn FnOnce() -> bool + Send>>) -> bool {
        let n = jobs.len();
        let (ack_tx, ack_rx) = crossbeam::channel::bounded::<bool>(n);
        for job in jobs {
            let ack = ack_tx.clone();
            let wrapped: Box<dyn FnOnce() + Send> = Box::new(move || {
                let _ = ack.send(job());
            });
            if let Err(e) = self.tx.try_send(wrapped) {
                // Pool saturated: run inline.
                match e {
                    crossbeam::channel::TrySendError::Full(job)
                    | crossbeam::channel::TrySendError::Disconnected(job) => job(),
                }
            }
        }
        drop(ack_tx);
        let mut all_ok = true;
        for _ in 0..n {
            all_ok &= ack_rx.recv().unwrap_or(false);
        }
        all_ok
    }
}

/// Standing workers for detached rule firings. A thread spawn per
/// detached firing dominates the detached path under load (E13 fires
/// ~1.6k detached rules per run). The pool parks a few workers and
/// falls back to a fresh thread whenever none is idle, so the blocking
/// dependency waits of the causally-dependent modes never queue behind
/// a busy worker — detached concurrency is preserved exactly, only the
/// spawn cost of the common case is amortized.
struct DetachedPool {
    tx: crossbeam::channel::Sender<Box<dyn FnOnce() + Send>>,
    /// Workers parked in `recv` and not yet reserved by a submission.
    /// Every successful reservation (CAS decrement) pairs with exactly
    /// one queued job, so a job never waits behind a blocked one.
    idle: AtomicIsize,
}

impl DetachedPool {
    fn new(workers: usize) -> Arc<Self> {
        let (tx, rx) = crossbeam::channel::unbounded::<Box<dyn FnOnce() + Send>>();
        let pool = Arc::new(DetachedPool {
            tx,
            idle: AtomicIsize::new(0),
        });
        for i in 0..workers {
            let rx = rx.clone();
            let pool2 = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("reach-detached-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                        pool2.idle.fetch_add(1, Ordering::Release);
                    }
                })
                .expect("spawn detached worker");
        }
        pool.idle.store(workers as isize, Ordering::Release);
        pool
    }

    /// Run `job` on a parked worker, or a fresh thread if none is idle.
    fn run(&self, job: Box<dyn FnOnce() + Send>) {
        let mut idle = self.idle.load(Ordering::Acquire);
        loop {
            if idle <= 0 {
                std::thread::spawn(job);
                return;
            }
            match self.idle.compare_exchange_weak(
                idle,
                idle - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(current) => idle = current,
            }
        }
        if let Err(crossbeam::channel::SendError(job)) = self.tx.send(job) {
            // Workers gone (engine tearing down): degrade to a thread.
            self.idle.fetch_add(1, Ordering::Release);
            std::thread::spawn(job);
        }
    }
}

/// How a set of rules fired by one event executes (E5's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionStrategy {
    /// Ordered ring-sequence, one subtransaction after another.
    Serial,
    /// Parallel sibling subtransactions on threads.
    Parallel,
}

/// §6.4 tie-break policies for equal priorities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Default: oldest rule first.
    OldestFirst,
    /// Optional: newest rule first.
    NewestFirst,
}

/// Plain-value snapshot of the engine's rule-accounting counters. The
/// counters themselves live in the stack-wide metrics registry
/// (`MetricsRegistry::engine`) so `exp_torture`, `exp_observe` and
/// `Reach::metrics_snapshot()` all read one source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub immediate_runs: u64,
    pub deferred_runs: u64,
    pub detached_runs: u64,
    pub actions_executed: u64,
    pub conditions_false: u64,
    pub skipped_transient: u64,
    pub skipped_dependency: u64,
    pub failures: u64,
    pub triggering_aborts: u64,
    pub retries: u64,
    pub gave_up: u64,
}

/// Bounded exponential-backoff policy for detached firings that hit a
/// *transient* error ([`ReachError::is_transient`]): deadlock victims,
/// lock timeouts, buffer-pool pressure. Attempt `k` (1-based) sleeps
/// `base_backoff * 2^(k-1)` before re-running, capped at `max_backoff`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (so 1 disables retrying).
    pub max_attempts: u32,
    pub base_backoff: Duration,
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        (self.base_backoff * 2u32.pow(shift)).min(self.max_backoff)
    }
}

/// A rule action that actually ran (condition held, action returned),
/// reported to firing listeners registered with
/// [`Engine::add_firing_listener`]. This is the hook the network server
/// uses to push rule-firing notifications to subscribed clients.
#[derive(Debug, Clone)]
pub struct FiringNotice {
    /// The rule that fired.
    pub rule: RuleId,
    /// Its registered name.
    pub rule_name: String,
    /// The event type of the triggering occurrence.
    pub event_type: EventTypeId,
}

/// Callback invoked after every executed rule action.
pub type FiringListener = Box<dyn Fn(&FiringNotice) + Send + Sync>;

/// A detached rule firing the engine could not complete. Firings are
/// never silently dropped: whatever the engine gives up on lands here,
/// with the final error and the number of attempts made.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    pub rule: RuleId,
    pub rule_name: String,
    pub error: ReachError,
    pub attempts: u32,
    /// The shard this engine runs as (0 in a single-node deployment).
    /// Without it, a multi-shard operator draining dead letters cannot
    /// tell *where* the firing was abandoned.
    pub shard: u32,
    /// The transaction whose event triggered the firing (first origin
    /// of the occurrence; `None` for detached/temporal occurrences with
    /// no transactional origin).
    pub origin: Option<TxnId>,
}

type Pending = (Arc<Rule>, Arc<EventOccurrence>, bool);

/// The engine. Installed as the router's [`FireHandler`].
pub struct Engine {
    db: Arc<Database>,
    strategy: RwLock<ExecutionStrategy>,
    tiebreak: RwLock<TieBreak>,
    /// Deferred-drain policy: simple-event rules before composite-event
    /// rules (§6.4's third policy).
    simple_events_first: RwLock<bool>,
    /// Ablation switch: evaluate immediate conditions inside their own
    /// subtransaction (the naive design) instead of as queries in the
    /// triggering transaction. Default false; the `ablation` bench
    /// measures the difference.
    conditions_in_subtxn: std::sync::atomic::AtomicBool,
    deferred: Mutex<HashMap<TxnId, Vec<Pending>>>,
    hooked: Mutex<HashSet<TxnId>>,
    /// Transactions spawned to run detached rules. Their flow-control
    /// points do not raise events — otherwise a rule on the commit event
    /// would re-trigger itself forever (the termination problem §6.4
    /// cites \[AWH92\] for; suppressing rule-transaction flow events is
    /// REACH's pragmatic guard).
    rule_txns: Mutex<HashSet<TxnId>>,
    /// Standing workers for parallel immediate actions (lazy).
    pool: Mutex<Option<Arc<ActionPool>>>,
    /// Standing workers for detached firings (lazy).
    detached_pool: Mutex<Option<Arc<DetachedPool>>>,
    inflight: Mutex<usize>,
    idle: Condvar,
    /// Stack-wide registry; rule accounting lands in `metrics.engine`
    /// (ungated — these counters pre-date the observability switch).
    metrics: Arc<MetricsRegistry>,
    dep_timeout: Duration,
    retry: RwLock<RetryPolicy>,
    dead_letters: Mutex<Vec<DeadLetter>>,
    firing_listeners: RwLock<Vec<FiringListener>>,
    /// Shard label stamped onto dead letters (0 = single node).
    shard_id: std::sync::atomic::AtomicU32,
}

impl Engine {
    pub fn new(db: Arc<Database>) -> Arc<Self> {
        let metrics = Arc::clone(db.metrics());
        Arc::new(Engine {
            db,
            strategy: RwLock::new(ExecutionStrategy::Serial),
            tiebreak: RwLock::new(TieBreak::OldestFirst),
            simple_events_first: RwLock::new(false),
            conditions_in_subtxn: std::sync::atomic::AtomicBool::new(false),
            deferred: Mutex::new(HashMap::new()),
            hooked: Mutex::new(HashSet::new()),
            rule_txns: Mutex::new(HashSet::new()),
            pool: Mutex::new(None),
            detached_pool: Mutex::new(None),
            inflight: Mutex::new(0),
            idle: Condvar::new(),
            metrics,
            dep_timeout: Duration::from_secs(10),
            retry: RwLock::new(RetryPolicy::default()),
            dead_letters: Mutex::new(Vec::new()),
            firing_listeners: RwLock::new(Vec::new()),
            shard_id: std::sync::atomic::AtomicU32::new(0),
        })
    }

    pub fn set_retry_policy(&self, p: RetryPolicy) {
        *self.retry.write() = p;
    }

    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.read()
    }

    /// Firings the engine gave up on — the permanent-failure record.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.dead_letters.lock().clone()
    }

    /// Drain the dead-letter record (e.g. after an operator handled it).
    pub fn take_dead_letters(&self) -> Vec<DeadLetter> {
        std::mem::take(&mut *self.dead_letters.lock())
    }

    /// Register a listener called after every executed rule action
    /// (any coupling mode), from the executing thread. Listeners must
    /// be fast and must not call back into the engine.
    pub fn add_firing_listener(&self, listener: FiringListener) {
        self.firing_listeners.write().push(listener);
    }

    /// Tell every registered listener `rule` just ran its action for
    /// `occ`. The empty-listener fast path is one RwLock read.
    fn notify_firing(&self, rule: &Rule, occ: &EventOccurrence) {
        let listeners = self.firing_listeners.read();
        if listeners.is_empty() {
            return;
        }
        let notice = FiringNotice {
            rule: rule.id,
            rule_name: rule.name.clone(),
            event_type: occ.event_type,
        };
        for l in listeners.iter() {
            l(&notice);
        }
    }

    /// Record a firing the engine is abandoning for good. Transient
    /// errors that exhausted their retry budget additionally bump
    /// `gave_up`; nothing is ever dropped without a trace. `origins`
    /// are the triggering occurrence's origin transactions — the first
    /// is recorded so a drained dead letter names the transaction (and
    /// via [`Engine::set_shard_id`] the shard) it came from.
    fn give_up(&self, rule: &Rule, origins: &[TxnId], error: ReachError, attempts: u32) {
        self.metrics.engine.failures.inc();
        if error.is_transient() {
            self.metrics.engine.gave_up.inc();
        }
        self.dead_letters.lock().push(DeadLetter {
            rule: rule.id,
            rule_name: rule.name.clone(),
            error,
            attempts,
            shard: self.shard_id.load(std::sync::atomic::Ordering::Relaxed),
            origin: origins.first().copied(),
        });
    }

    /// Label this engine with its shard index so abandoned firings are
    /// attributable in a multi-shard deployment. Defaults to 0.
    pub fn set_shard_id(&self, shard: u32) {
        self.shard_id
            .store(shard, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn set_strategy(&self, s: ExecutionStrategy) {
        *self.strategy.write() = s;
    }

    pub fn strategy(&self) -> ExecutionStrategy {
        *self.strategy.read()
    }

    pub fn set_tiebreak(&self, t: TieBreak) {
        *self.tiebreak.write() = t;
    }

    pub fn set_simple_events_first(&self, on: bool) {
        *self.simple_events_first.write() = on;
    }

    /// Ablation: run immediate conditions in their own subtransactions.
    pub fn set_conditions_in_subtxn(&self, on: bool) {
        self.conditions_in_subtxn.store(on, Ordering::Release);
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        let e = &self.metrics.engine;
        StatsSnapshot {
            immediate_runs: e.immediate_runs.get(),
            deferred_runs: e.deferred_runs.get(),
            detached_runs: e.detached_runs.get(),
            actions_executed: e.actions_executed.get(),
            conditions_false: e.conditions_false.get(),
            skipped_transient: e.skipped_transient.get(),
            skipped_dependency: e.skipped_dependency.get(),
            failures: e.failures.get(),
            triggering_aborts: e.triggering_aborts.get(),
            retries: e.retries.get(),
            gave_up: e.gave_up.get(),
        }
    }

    /// Sort rules for firing: priority descending, then the tie-break.
    fn order(&self, rules: &mut [Arc<Rule>]) {
        let tiebreak = *self.tiebreak.read();
        rules.sort_by(|a, b| {
            b.priority.cmp(&a.priority).then_with(|| match tiebreak {
                TieBreak::OldestFirst => a.created.cmp(&b.created),
                TieBreak::NewestFirst => b.created.cmp(&a.created),
            })
        });
    }

    /// Run one rule in `txn`, updating stats. With a split C-A coupling
    /// the condition is evaluated here and the action is *scheduled*
    /// under the rule's action coupling instead of running inline.
    /// `count_failures` is false on the detached retry path, where an
    /// error may be retried and only the *final* give-up counts as a
    /// failure; immediate and deferred executions fail at most once.
    fn run_rule(
        self: &Arc<Self>,
        rule: &Arc<Rule>,
        txn: TxnId,
        occ: &Arc<EventOccurrence>,
        count_failures: bool,
    ) -> Result<bool> {
        let ctx = RuleCtx {
            db: &self.db,
            txn,
            event: occ,
        };
        if let Some(ac) = rule.action_coupling {
            return match rule.eval_condition(&ctx) {
                Ok(true) => {
                    match ac {
                        CouplingMode::Deferred => {
                            self.enqueue_deferred(Arc::clone(rule), Arc::clone(occ), true)
                        }
                        mode => {
                            self.spawn_detached_inner(Arc::clone(rule), Arc::clone(occ), mode, true)
                        }
                    }
                    Ok(true)
                }
                Ok(false) => {
                    self.metrics.engine.conditions_false.inc();
                    Ok(false)
                }
                Err(e) => {
                    if count_failures {
                        self.metrics.engine.failures.inc();
                    }
                    Err(e)
                }
            };
        }
        match rule.execute(&ctx) {
            Ok(true) => {
                self.metrics.engine.actions_executed.inc();
                self.notify_firing(rule, occ);
                Ok(true)
            }
            Ok(false) => {
                self.metrics.engine.conditions_false.inc();
                Ok(false)
            }
            Err(e) => {
                if count_failures {
                    self.metrics.engine.failures.inc();
                }
                Err(e)
            }
        }
    }

    /// Run only the action of a rule whose condition already held.
    /// `count_failures` as in [`Engine::run_rule`].
    fn run_action_only(
        &self,
        rule: &Rule,
        txn: TxnId,
        occ: &EventOccurrence,
        count_failures: bool,
    ) -> Result<()> {
        let ctx = RuleCtx {
            db: &self.db,
            txn,
            event: occ,
        };
        match rule.run_action(&ctx) {
            Ok(()) => {
                self.metrics.engine.actions_executed.inc();
                self.notify_firing(rule, occ);
                Ok(())
            }
            Err(e) => {
                if count_failures {
                    self.metrics.engine.failures.inc();
                }
                Err(e)
            }
        }
    }

    // ---- immediate ----

    /// Evaluate an immediate rule's condition in the *triggering*
    /// transaction (conditions are queries — HiPAC semantics — so they
    /// need no subtransaction of their own; §6.4 asks to "reduce the
    /// levels of indirection" on the firing path and skipping the
    /// subtransaction for false conditions is the biggest lever).
    /// Returns `Some(rule)` if the action must run.
    fn immediate_condition(
        self: &Arc<Self>,
        rule: &Arc<Rule>,
        parent: TxnId,
        occ: &Arc<EventOccurrence>,
    ) -> Result<bool> {
        self.metrics.engine.immediate_runs.inc();
        if self.conditions_in_subtxn.load(Ordering::Acquire) {
            // Ablation path: the naive design pays a subtransaction per
            // condition evaluation.
            let tm = self.db.txn_manager();
            let child = tm.begin_nested(parent)?;
            let ctx = RuleCtx {
                db: &self.db,
                txn: child,
                event: occ,
            };
            let outcome = rule.eval_condition(&ctx);
            let _ = tm.commit(child);
            return match outcome {
                Ok(true) => Ok(true),
                Ok(false) => {
                    self.metrics.engine.conditions_false.inc();
                    Ok(false)
                }
                Err(e) => {
                    self.metrics.engine.failures.inc();
                    Err(e)
                }
            };
        }
        let ctx = RuleCtx {
            db: &self.db,
            txn: parent,
            event: occ,
        };
        match rule.eval_condition(&ctx) {
            Ok(true) => Ok(true),
            Ok(false) => {
                self.metrics.engine.conditions_false.inc();
                Ok(false)
            }
            Err(e) => {
                self.metrics.engine.failures.inc();
                Err(e)
            }
        }
    }

    /// Run one immediate action in a fresh subtransaction of `parent`.
    fn immediate_action(
        self: &Arc<Self>,
        rule: &Arc<Rule>,
        parent: TxnId,
        occ: &Arc<EventOccurrence>,
    ) -> Result<()> {
        let t0 = self.metrics.span_start();
        let tm = self.db.txn_manager();
        let child = tm.begin_nested(parent)?;
        let out = match self.run_action_only(rule, child, occ, true) {
            Ok(()) => tm.commit(child),
            Err(e) => {
                let _ = tm.abort(child);
                Err(e)
            }
        };
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::Subtransaction, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn fire_immediate(self: &Arc<Self>, rules: Vec<Arc<Rule>>, occ: &Arc<EventOccurrence>) {
        let Some(parent) = occ.txn else {
            self.metrics.engine.failures.add(rules.len() as u64);
            return;
        };
        // Phase 1: conditions, in order, in the triggering transaction.
        let mut to_run = Vec::new();
        for rule in rules {
            match self.immediate_condition(&rule, parent, occ) {
                Ok(true) => {
                    if let Some(ac) = rule.action_coupling {
                        // Split C-A coupling: schedule the action later.
                        match ac {
                            CouplingMode::Deferred => {
                                self.enqueue_deferred(rule, Arc::clone(occ), true)
                            }
                            mode => self.spawn_detached_inner(rule, Arc::clone(occ), mode, true),
                        }
                    } else {
                        to_run.push(rule);
                    }
                }
                Ok(false) => {}
                Err(_) => {
                    self.abort_trigger(parent);
                    return;
                }
            }
        }
        if to_run.is_empty() {
            return;
        }
        // Phase 2: actions, as subtransactions — the ring-sequence
        // serially or as parallel siblings.
        match *self.strategy.read() {
            ExecutionStrategy::Serial => {
                for rule in to_run {
                    if self.immediate_action(&rule, parent, occ).is_err() {
                        self.abort_trigger(parent);
                        return;
                    }
                }
            }
            ExecutionStrategy::Parallel => {
                let pool = {
                    let mut guard = self.pool.lock();
                    guard
                        .get_or_insert_with(|| {
                            let n = std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(2)
                                .max(2);
                            Arc::new(ActionPool::new(n))
                        })
                        .clone()
                };
                let jobs: Vec<Box<dyn FnOnce() -> bool + Send>> = to_run
                    .into_iter()
                    .map(|rule| {
                        let engine = Arc::clone(self);
                        let occ = Arc::clone(occ);
                        Box::new(move || engine.immediate_action(&rule, parent, &occ).is_ok())
                            as Box<dyn FnOnce() -> bool + Send>
                    })
                    .collect();
                if !pool.run_all(jobs) {
                    self.abort_trigger(parent);
                }
            }
        }
    }

    fn abort_trigger(&self, txn: TxnId) {
        let tm = self.db.txn_manager();
        if let Ok(top) = tm.top_of(txn) {
            if tm.is_active(top) && tm.abort(top).is_ok() {
                self.metrics.engine.triggering_aborts.inc();
            }
        }
    }

    // ---- deferred ----

    fn schedule_deferred(self: &Arc<Self>, rule: Arc<Rule>, occ: Arc<EventOccurrence>) {
        self.enqueue_deferred(rule, occ, false);
    }

    fn enqueue_deferred(
        self: &Arc<Self>,
        rule: Arc<Rule>,
        occ: Arc<EventOccurrence>,
        action_only: bool,
    ) {
        let Some(top) = occ.top_txn else {
            self.metrics.engine.failures.inc();
            return;
        };
        self.deferred
            .lock()
            .entry(top)
            .or_default()
            .push((rule, occ, action_only));
        let mut hooked = self.hooked.lock();
        if hooked.insert(top) {
            let engine = Arc::clone(self);
            let res = self
                .db
                .txn_manager()
                .defer(top, Box::new(move || engine.drain_deferred(top)));
            if res.is_err() {
                hooked.remove(&top);
                self.deferred.lock().remove(&top);
                self.metrics.engine.failures.inc();
            }
        }
    }

    /// Enqueue a whole batch of deferred firings for one top-level
    /// transaction under a single lock pass. The pre-commit drain
    /// sorts by (priority, simple-first, rule age), which orders
    /// entries of *different* rules deterministically regardless of
    /// enqueue order, and the sort is stable, so entries of the same
    /// rule keep their event order — batching the enqueue leaves the
    /// drain order identical to per-event scheduling.
    fn enqueue_deferred_batch(self: &Arc<Self>, top: TxnId, entries: Vec<Pending>) {
        if entries.is_empty() {
            return;
        }
        self.deferred.lock().entry(top).or_default().extend(entries);
        let mut hooked = self.hooked.lock();
        if hooked.insert(top) {
            let engine = Arc::clone(self);
            let res = self
                .db
                .txn_manager()
                .defer(top, Box::new(move || engine.drain_deferred(top)));
            if res.is_err() {
                hooked.remove(&top);
                self.deferred.lock().remove(&top);
                self.metrics.engine.failures.inc();
            }
        }
    }

    /// Drain the deferred batch of `top` at pre-commit, ordered. Rules
    /// scheduled *during* the drain form a later batch (the transaction
    /// manager keeps calling back until the queue is dry).
    fn drain_deferred(self: &Arc<Self>, top: TxnId) -> Result<()> {
        self.hooked.lock().remove(&top);
        let mut batch = self.deferred.lock().remove(&top).unwrap_or_default();
        let tiebreak = *self.tiebreak.read();
        let simple_first = *self.simple_events_first.read();
        batch.sort_by(|(ra, oa, _), (rb, ob, _)| {
            rb.priority
                .cmp(&ra.priority)
                .then_with(|| {
                    if simple_first {
                        // Simple (no constituents) before composite.
                        oa.constituents
                            .is_empty()
                            .cmp(&ob.constituents.is_empty())
                            .reverse()
                    } else {
                        std::cmp::Ordering::Equal
                    }
                })
                .then_with(|| match tiebreak {
                    TieBreak::OldestFirst => ra.created.cmp(&rb.created),
                    TieBreak::NewestFirst => rb.created.cmp(&ra.created),
                })
        });
        let tm = self.db.txn_manager();
        for (rule, occ, action_only) in batch {
            self.metrics.engine.deferred_runs.inc();
            // Condition first (a query, evaluated in the committing
            // transaction); subtransaction only for a firing action.
            if !action_only {
                let ctx = RuleCtx {
                    db: &self.db,
                    txn: top,
                    event: &occ,
                };
                match rule.eval_condition(&ctx) {
                    Ok(true) => {}
                    Ok(false) => {
                        self.metrics.engine.conditions_false.inc();
                        continue;
                    }
                    Err(e) => {
                        self.metrics.engine.failures.inc();
                        return Err(e);
                    }
                }
            }
            let t0 = self.metrics.span_start();
            let child = tm.begin_nested(top)?;
            let out = match self.run_action_only(&rule, child, &occ, true) {
                Ok(()) => tm.commit(child),
                Err(e) => {
                    let _ = tm.abort(child);
                    // Propagate: a failing deferred rule aborts the
                    // triggering transaction (the manager handles it).
                    Err(e)
                }
            };
            if let Some(t0) = t0 {
                self.metrics
                    .record_span(Stage::Subtransaction, t0.elapsed().as_nanos() as u64);
            }
            out?;
        }
        Ok(())
    }

    // ---- detached ----

    /// §3.2: "References to transient objects are not allowed since
    /// these objects may disappear as soon as the originating
    /// transaction completes."
    ///
    /// An oid outside this space's partition belongs to another shard,
    /// which only ships *committed* (hence persistent) occurrences; a
    /// foreign receiver is therefore never a transient escape here.
    fn transient_refs(&self, occ: &EventOccurrence) -> Option<ObjectId> {
        let space = self.db.space();
        fn walk(e: &EventOccurrence, f: &impl Fn(ObjectId) -> bool) -> Option<ObjectId> {
            if let Some(oid) = e.data.receiver {
                if !f(oid) {
                    return Some(oid);
                }
            }
            for c in &e.constituents {
                if let Some(o) = walk(c, f) {
                    return Some(o);
                }
            }
            None
        }
        walk(occ, &|oid| space.is_persistent(oid) || !space.is_local(oid))
    }

    fn spawn_detached(
        self: &Arc<Self>,
        rule: Arc<Rule>,
        occ: Arc<EventOccurrence>,
        mode: CouplingMode,
    ) {
        self.spawn_detached_inner(rule, occ, mode, false)
    }

    fn spawn_detached_inner(
        self: &Arc<Self>,
        rule: Arc<Rule>,
        occ: Arc<EventOccurrence>,
        mode: CouplingMode,
        action_only: bool,
    ) {
        if let Some(oid) = self.transient_refs(&occ) {
            self.metrics.engine.skipped_transient.inc();
            let _ = ReachError::TransientReferenceEscape(oid); // documented refusal
            return;
        }
        let origins = occ.origin_txns();
        // Exclusive mode: arrange the resource (lock) hand-over *now*,
        // while the trigger is still active — if the trigger aborts, its
        // locks transfer to the contingency transaction before release.
        let tm = self.db.txn_manager();
        let rule_txn_for_exclusive = if mode == CouplingMode::ExclusiveCausallyDependent {
            match tm.begin() {
                Ok(txn) => {
                    self.mark_rule_txn(txn);
                    for o in &origins {
                        tm.dependencies().add(txn, CommitRule::IfAborted(*o));
                        if tm.is_active(*o) {
                            let locks = Arc::clone(tm.locks());
                            let from = *o;
                            let _ = tm.on_abort(*o, Box::new(move || locks.transfer(from, txn)));
                        }
                    }
                    Some(txn)
                }
                Err(e) => {
                    self.give_up(&rule, &origins, e, 1);
                    return;
                }
            }
        } else {
            None
        };
        *self.inflight.lock() += 1;
        let engine = Arc::clone(self);
        let job = Box::new(move || {
            engine.run_detached(
                rule,
                occ,
                mode,
                origins,
                rule_txn_for_exclusive,
                action_only,
            );
            let mut n = engine.inflight.lock();
            *n -= 1;
            if *n == 0 {
                engine.idle.notify_all();
            }
        });
        let pool = {
            let mut guard = self.detached_pool.lock();
            Arc::clone(guard.get_or_insert_with(|| {
                let n = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2)
                    .max(2);
                DetachedPool::new(n)
            }))
        };
        pool.run(job);
    }

    fn run_detached(
        self: &Arc<Self>,
        rule: Arc<Rule>,
        occ: Arc<EventOccurrence>,
        mode: CouplingMode,
        origins: Vec<TxnId>,
        pre_created: Option<TxnId>,
        action_only: bool,
    ) {
        let tm = self.db.txn_manager();
        let deps = tm.dependencies();
        // Sequential mode gates on the origins exactly once — an
        // already-satisfied gate needs no re-check on retry.
        if mode == CouplingMode::SequentialCausallyDependent {
            for o in &origins {
                match deps.wait_for_outcome(*o, self.dep_timeout) {
                    Ok(Outcome::Committed) => {}
                    Ok(Outcome::Aborted) => {
                        self.metrics.engine.skipped_dependency.inc();
                        return;
                    }
                    Err(e) => {
                        self.give_up(&rule, &origins, e, 1);
                        return;
                    }
                }
            }
        }
        let policy = self.retry_policy();
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            // First exclusive attempt runs in the pre-created contingency
            // transaction (its IfAborted dependencies and the lock
            // hand-over were wired by the spawner); every other attempt
            // gets a fresh transaction with the mode's dependencies
            // re-registered.
            let txn = if attempt == 1 && mode == CouplingMode::ExclusiveCausallyDependent {
                pre_created.expect("pre-created txn")
            } else {
                let t = match tm.begin() {
                    Ok(t) => t,
                    Err(e) => {
                        self.give_up(&rule, &origins, e, attempt);
                        return;
                    }
                };
                match mode {
                    CouplingMode::ParallelCausallyDependent => {
                        for o in &origins {
                            deps.add(t, CommitRule::IfCommitted(*o));
                        }
                    }
                    CouplingMode::ExclusiveCausallyDependent => {
                        // A retry can no longer inherit the trigger's
                        // locks (the abort already happened), but the
                        // commit condition must survive the retry.
                        for o in &origins {
                            deps.add(t, CommitRule::IfAborted(*o));
                        }
                    }
                    _ => {}
                }
                t
            };
            self.mark_rule_txn(txn);
            if attempt == 1 {
                self.metrics.engine.detached_runs.inc();
            }
            let outcome = if action_only {
                self.run_action_only(&rule, txn, &occ, false).map(|_| true)
            } else {
                self.run_rule(&rule, txn, &occ, false)
            };
            // On success, commit honours the registered dependencies; an
            // exclusive rule whose trigger committed aborts here — a
            // final refusal, not an error to retry.
            let err = match outcome {
                Ok(_) => match tm.commit(txn) {
                    Ok(()) => {
                        self.unmark_rule_txn(txn);
                        return;
                    }
                    Err(e) => {
                        self.unmark_rule_txn(txn);
                        if e.is_transient() && attempt < policy.max_attempts {
                            e
                        } else {
                            self.metrics.engine.skipped_dependency.inc();
                            return;
                        }
                    }
                },
                Err(e) => {
                    let _ = tm.abort(txn);
                    self.unmark_rule_txn(txn);
                    e
                }
            };
            if err.is_transient() && attempt < policy.max_attempts {
                self.metrics.engine.retries.inc();
                std::thread::sleep(policy.backoff(attempt));
            } else {
                self.give_up(&rule, &origins, err, attempt);
                return;
            }
        }
    }

    /// Whether `txn` is a rule-spawned (detached) transaction.
    pub fn is_rule_txn(&self, txn: TxnId) -> bool {
        self.rule_txns.lock().contains(&txn)
    }

    fn mark_rule_txn(&self, txn: TxnId) {
        self.rule_txns.lock().insert(txn);
    }

    fn unmark_rule_txn(&self, txn: TxnId) {
        self.rule_txns.lock().remove(&txn);
    }

    /// Block until every detached worker has finished.
    pub fn wait_idle(&self) {
        let mut n = self.inflight.lock();
        while *n > 0 {
            self.idle.wait(&mut n);
        }
    }

    /// A top-level transaction ended: drop any buffered deferred work
    /// (the manager cleared its hooks; an aborted transaction fires no
    /// deferred rules).
    pub fn on_txn_finished(&self, top: TxnId) {
        self.deferred.lock().remove(&top);
        self.hooked.lock().remove(&top);
    }
}

impl Engine {
    /// Dispatch a set of rules fired by one event: immediate rules run
    /// as one batch (serial ring-sequence or parallel siblings), the
    /// rest are scheduled by coupling mode.
    pub fn fire_all(self: &Arc<Self>, mut rules: Vec<Arc<Rule>>, occ: Arc<EventOccurrence>) {
        let t0 = self.metrics.span_start();
        self.order(&mut rules);
        let mut immediate = Vec::new();
        for rule in rules {
            match rule.coupling {
                CouplingMode::Immediate => immediate.push(rule),
                CouplingMode::Deferred => self.schedule_deferred(rule, Arc::clone(&occ)),
                mode => self.spawn_detached(rule, Arc::clone(&occ), mode),
            }
        }
        if !immediate.is_empty() {
            self.fire_immediate(immediate, &occ);
        }
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::Engine, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Batched [`Engine::fire_all`]: order the rule set once, then
    /// schedule and fire per occurrence in event order. Each
    /// occurrence still sees the exact per-event sequence — deferred/
    /// detached scheduling in priority order, then its immediate batch
    /// — so firing sequences are identical to per-event dispatch.
    pub fn fire_batch(self: &Arc<Self>, mut rules: Vec<Arc<Rule>>, occs: &[Arc<EventOccurrence>]) {
        let t0 = self.metrics.span_start();
        self.order(&mut rules);
        let n_immediate = rules
            .iter()
            .filter(|r| r.coupling == CouplingMode::Immediate)
            .count();
        // Deferred firings for the batch are collected per top-level
        // transaction run and enqueued in one lock pass (see
        // `enqueue_deferred_batch` for why the drain order is
        // unaffected).
        let mut deferred: Vec<Pending> = Vec::new();
        let mut deferred_top: Option<TxnId> = None;
        for occ in occs {
            let mut immediate = Vec::with_capacity(n_immediate);
            for rule in &rules {
                match rule.coupling {
                    CouplingMode::Immediate => immediate.push(Arc::clone(rule)),
                    CouplingMode::Deferred => match occ.top_txn {
                        Some(top) => {
                            if deferred_top != Some(top) {
                                if let Some(prev) = deferred_top {
                                    self.enqueue_deferred_batch(
                                        prev,
                                        std::mem::take(&mut deferred),
                                    );
                                }
                                deferred_top = Some(top);
                            }
                            deferred.push((Arc::clone(rule), Arc::clone(occ), false));
                        }
                        None => self.metrics.engine.failures.inc(),
                    },
                    mode => self.spawn_detached(Arc::clone(rule), Arc::clone(occ), mode),
                }
            }
            if !immediate.is_empty() {
                self.fire_immediate(immediate, occ);
            }
        }
        if let Some(top) = deferred_top {
            self.enqueue_deferred_batch(top, deferred);
        }
        if let Some(t0) = t0 {
            self.metrics
                .record_span(Stage::Engine, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Adapter installing an [`Engine`] as the router's fire handler.
pub struct EngineHandler(pub Arc<Engine>);

impl FireHandler for EngineHandler {
    fn fire(&self, rules: Vec<Arc<Rule>>, occ: Arc<EventOccurrence>) {
        self.0.fire_all(rules, occ);
    }

    fn fire_batch(&self, rules: Vec<Arc<Rule>>, occs: &[Arc<EventOccurrence>]) {
        self.0.fire_batch(rules, occs);
    }
}
