//! The event composition algebra.
//!
//! §3.1: "The REACH algebra inherits the sequence, disjunction and
//! closure of the HiPAC algebra ... In addition, it takes from SAMOS the
//! notion of validity interval for an event and uses SAMOS's negation,
//! conjunction and history operators."
//!
//! Operator semantics implemented here (documented choices where the
//! paper defers to the cited algebras):
//!
//! * **sequence** `(E1 ; E2 ; ...)` — completes when each part has
//!   completed in order; occurrences that cannot extend the current
//!   prefix are ignored (non-blocking);
//! * **conjunction** `(E1 & E2 & ...)` — all parts, any order;
//! * **disjunction** `(E1 | E2 | ...)` — any one part;
//! * **negation** `¬E` — *window-close* semantics (SAMOS `NOT E IN I`):
//!   raised at the end of the composition's validity interval iff `E`
//!   never completed within it. Only legal where the lifespan defines a
//!   window (a transaction or an explicit interval);
//! * **closure** `E*` — raised at window close iff `E` completed at
//!   least once; all completions are accumulated as constituents
//!   (multiple firings collapse into one);
//! * **history** `TIMES(n, E)` — completes the instant `E` has
//!   completed `n` times within the window.
//!
//! §3.3 (event life-span): single-transaction composites live for the
//! duration of the transaction; cross-transaction composites **must**
//! carry a validity interval — "composite events without an explicit or
//! implicit validity interval are illegal".

use reach_common::{EventTypeId, ReachError, Result};
use std::sync::Arc;
use std::time::Duration;

/// Whether a composite's primitives must all originate in one
/// transaction (§3.2's third kind of event) or may span several
/// (the fourth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositionScope {
    SameTransaction,
    CrossTransaction,
}

/// Constituent correlation: whether all primitives of one composition
/// instance must concern the same object (SAMOS's "same object"
/// modifier — without it, a pattern like "3 failures" mixes failures of
/// unrelated objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Correlation {
    /// Constituents may concern any objects.
    #[default]
    None,
    /// Every constituent must have the same receiver object; instances
    /// are keyed per receiver.
    SameReceiver,
}

/// How long a partially-composed event stays alive (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lifespan {
    /// Until the originating transaction ends (single-tx composites).
    Transaction,
    /// A validity interval from the composition's first primitive.
    Interval(Duration),
}

/// A composition expression over registered event types.
#[derive(Debug, Clone, PartialEq)]
pub enum EventExpr {
    /// A (registered) event type — primitive or itself composite.
    Primitive(EventTypeId),
    /// Ordered sequence.
    Sequence(Vec<EventExpr>),
    /// All, in any order.
    Conjunction(Vec<EventExpr>),
    /// Any one.
    Disjunction(Vec<EventExpr>),
    /// Absence within the validity window.
    ///
    /// Recursive operands are `Arc`, not `Box`: compositors instantiate
    /// one automaton per in-flight composition attempt and window
    /// operators keep a handle to their sub-expression as a rebuild
    /// template, so sharing the immutable expression structure makes
    /// instantiation (and `EventExpr::clone`) O(1) in expression depth
    /// instead of a deep copy per instance.
    Negation(Arc<EventExpr>),
    /// One or more occurrences within the window, collapsed.
    Closure(Arc<EventExpr>),
    /// Exactly `count` occurrences.
    History { expr: Arc<EventExpr>, count: u32 },
}

impl EventExpr {
    /// Every event type referenced by the expression (with duplicates
    /// removed, in first-mention order). These are the types the
    /// composite's ECA-manager must subscribe to.
    pub fn referenced_types(&self) -> Vec<EventTypeId> {
        let mut out = Vec::new();
        fn walk(e: &EventExpr, out: &mut Vec<EventTypeId>) {
            match e {
                EventExpr::Primitive(id) => {
                    if !out.contains(id) {
                        out.push(*id);
                    }
                }
                EventExpr::Sequence(parts)
                | EventExpr::Conjunction(parts)
                | EventExpr::Disjunction(parts) => {
                    for p in parts {
                        walk(p, out);
                    }
                }
                EventExpr::Negation(inner)
                | EventExpr::Closure(inner)
                | EventExpr::History { expr: inner, .. } => walk(inner, out),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Whether the expression contains a window-close operator (negation
    /// or closure) anywhere — such composites can only fire when their
    /// window ends.
    pub fn has_window_operator(&self) -> bool {
        match self {
            EventExpr::Primitive(_) => false,
            EventExpr::Negation(_) | EventExpr::Closure(_) => true,
            EventExpr::Sequence(parts)
            | EventExpr::Conjunction(parts)
            | EventExpr::Disjunction(parts) => parts.iter().any(|p| p.has_window_operator()),
            EventExpr::History { expr, .. } => expr.has_window_operator(),
        }
    }

    /// Structural validation of the expression itself.
    pub fn validate(&self) -> Result<()> {
        match self {
            EventExpr::Primitive(id) => {
                if id.is_null() {
                    return Err(ReachError::IllegalEventDefinition(
                        "null event type in expression".into(),
                    ));
                }
                Ok(())
            }
            EventExpr::Sequence(parts)
            | EventExpr::Conjunction(parts)
            | EventExpr::Disjunction(parts) => {
                if parts.len() < 2 {
                    return Err(ReachError::IllegalEventDefinition(
                        "sequence/conjunction/disjunction need at least two operands".into(),
                    ));
                }
                parts.iter().try_for_each(|p| p.validate())
            }
            EventExpr::Negation(inner) | EventExpr::Closure(inner) => inner.validate(),
            EventExpr::History { expr, count } => {
                if *count == 0 {
                    return Err(ReachError::IllegalEventDefinition(
                        "history count must be at least 1".into(),
                    ));
                }
                expr.validate()
            }
        }
    }
}

/// Validate a full composite definition per §3.3:
/// cross-transaction composites require a validity *interval*, and a
/// pure negation needs a window to ever fire.
pub fn validate_composite(
    expr: &EventExpr,
    scope: CompositionScope,
    lifespan: Lifespan,
) -> Result<()> {
    expr.validate()?;
    match (scope, lifespan) {
        (CompositionScope::CrossTransaction, Lifespan::Transaction) => {
            Err(ReachError::IllegalEventDefinition(
                "composite events spanning transactions require a validity interval (§3.3)".into(),
            ))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u64) -> EventExpr {
        EventExpr::Primitive(EventTypeId::new(n))
    }

    #[test]
    fn referenced_types_dedupes_in_order() {
        let expr = EventExpr::Sequence(vec![
            e(1),
            EventExpr::Conjunction(vec![e(2), e(1)]),
            EventExpr::Negation(Arc::new(e(3))),
        ]);
        assert_eq!(
            expr.referenced_types(),
            vec![
                EventTypeId::new(1),
                EventTypeId::new(2),
                EventTypeId::new(3)
            ]
        );
    }

    #[test]
    fn window_operator_detection() {
        assert!(!e(1).has_window_operator());
        assert!(EventExpr::Negation(Arc::new(e(1))).has_window_operator());
        assert!(
            EventExpr::Sequence(vec![e(1), EventExpr::Closure(Arc::new(e(2)))])
                .has_window_operator()
        );
        assert!(!EventExpr::History {
            expr: Arc::new(e(1)),
            count: 3
        }
        .has_window_operator());
    }

    #[test]
    fn structural_validation() {
        assert!(EventExpr::Sequence(vec![e(1)]).validate().is_err());
        assert!(EventExpr::Sequence(vec![e(1), e(2)]).validate().is_ok());
        assert!(EventExpr::History {
            expr: Arc::new(e(1)),
            count: 0
        }
        .validate()
        .is_err());
        assert!(EventExpr::Primitive(EventTypeId::NULL).validate().is_err());
    }

    #[test]
    fn cross_transaction_requires_interval() {
        let expr = EventExpr::Conjunction(vec![e(1), e(2)]);
        assert!(validate_composite(
            &expr,
            CompositionScope::CrossTransaction,
            Lifespan::Transaction
        )
        .is_err());
        assert!(validate_composite(
            &expr,
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(5))
        )
        .is_ok());
        assert!(validate_composite(
            &expr,
            CompositionScope::SameTransaction,
            Lifespan::Transaction
        )
        .is_ok());
    }
}
