//! Reference interpreter for the event algebra — the differential
//! oracle the compositor is tested against.
//!
//! [`crate::compositor`] is incremental: automaton instances carry
//! position counters, winner indices and banked completions that
//! mutate as occurrences stream in, and the pool logic implements the
//! four SNOOP consumption policies. Efficient — and exactly the kind of
//! code where an off-by-one survives review. This module re-implements
//! the same semantics *naively*: no `Feed` enum, no position counters —
//! every question (is this slot complete? where is the sequence
//! frontier? who won the disjunction?) is recomputed from the absorbed
//! occurrences on demand, straight from the operator definitions in
//! [`crate::algebra`]. Slow and obvious, which is the point: proptest
//! streams random event sequences through both implementations and any
//! divergence in firings is a bug in one of them.
//!
//! The oracle interprets **one scope pool** (one transaction window for
//! same-transaction composites, the global pool for cross-transaction
//! ones); callers partition occurrences by scope themselves — that
//! keeps scope routing out of the trusted base.

use crate::algebra::EventExpr;
use crate::consumption::ConsumptionPolicy;
use crate::event::EventOccurrence;
use std::sync::Arc;

/// One firing: the constituent occurrences in tree (collection) order.
pub type Firing = Vec<Arc<EventOccurrence>>;

/// Declarative mirror of one composition attempt over `expr`.
#[derive(Debug, Clone)]
enum Slot {
    Prim {
        ty: reach_common::EventTypeId,
        matched: Vec<Arc<EventOccurrence>>,
    },
    Seq(Vec<Slot>),
    Conj(Vec<Slot>),
    Disj {
        parts: Vec<Slot>,
        winner: Option<usize>,
    },
    Neg {
        inner: Box<Slot>,
        violated: bool,
    },
    Closure {
        template: Arc<EventExpr>,
        current: Box<Slot>,
        banked: Vec<Firing>,
    },
    History {
        template: Arc<EventExpr>,
        current: Box<Slot>,
        banked: Vec<Firing>,
        target: u32,
    },
}

fn fresh(expr: &EventExpr) -> Slot {
    match expr {
        EventExpr::Primitive(id) => Slot::Prim {
            ty: *id,
            matched: Vec::new(),
        },
        EventExpr::Sequence(parts) => Slot::Seq(parts.iter().map(fresh).collect()),
        EventExpr::Conjunction(parts) => Slot::Conj(parts.iter().map(fresh).collect()),
        EventExpr::Disjunction(parts) => Slot::Disj {
            parts: parts.iter().map(fresh).collect(),
            winner: None,
        },
        EventExpr::Negation(inner) => Slot::Neg {
            inner: Box::new(fresh(inner)),
            violated: false,
        },
        EventExpr::Closure(inner) => Slot::Closure {
            template: Arc::clone(inner),
            current: Box::new(fresh(inner)),
            banked: Vec::new(),
        },
        EventExpr::History { expr, count } => Slot::History {
            template: Arc::clone(expr),
            current: Box::new(fresh(expr)),
            banked: Vec::new(),
            target: *count,
        },
    }
}

impl Slot {
    /// Absorb an occurrence; `true` if any slot in the tree took it.
    /// Straight transliteration of §3.1/§3.4 per operator:
    ///
    /// * a **primitive** slot matches its type; *recent* keeps only the
    ///   newest occurrence, *cumulative* all of them, *chronicle* and
    ///   *continuous* exactly the first;
    /// * a **sequence** offers the occurrence to its frontier part (the
    ///   first incomplete one); under recent/cumulative the already
    ///   completed prefix — never the final part — may absorb a fresher
    ///   or further occurrence first;
    /// * a **conjunction** offers it to every part (recent/cumulative)
    ///   or consumes it in the first accepting part (chronicle,
    ///   continuous);
    /// * a **disjunction** offers it to every part; the first part ever
    ///   to complete is the winner;
    /// * **negation** records that the forbidden event completed;
    /// * **closure** and **history** bank each completion of their
    ///   inner expression and start it afresh.
    fn absorb(&mut self, occ: &Arc<EventOccurrence>, policy: ConsumptionPolicy) -> bool {
        let accumulating = matches!(
            policy,
            ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative
        );
        match self {
            Slot::Prim { ty, matched } => {
                if occ.event_type != *ty {
                    return false;
                }
                match policy {
                    ConsumptionPolicy::Recent => {
                        matched.clear();
                        matched.push(Arc::clone(occ));
                        true
                    }
                    ConsumptionPolicy::Cumulative => {
                        matched.push(Arc::clone(occ));
                        true
                    }
                    ConsumptionPolicy::Chronicle | ConsumptionPolicy::Continuous => {
                        if matched.is_empty() {
                            matched.push(Arc::clone(occ));
                            true
                        } else {
                            false
                        }
                    }
                }
            }
            Slot::Seq(parts) => {
                let frontier = parts
                    .iter()
                    .position(|p| !p.complete())
                    .unwrap_or(parts.len());
                if accumulating {
                    // The completed prefix may still absorb (a fresher
                    // occurrence supersedes / a further one accumulates)
                    // — but the final part never re-absorbs, or a
                    // completed sequence could never stay consumed.
                    let upto = frontier.min(parts.len().saturating_sub(1));
                    for part in parts.iter_mut().take(upto) {
                        if part.absorb(occ, policy) {
                            return true;
                        }
                    }
                }
                match parts.get_mut(frontier) {
                    Some(part) => part.absorb(occ, policy),
                    None => false,
                }
            }
            Slot::Conj(parts) => {
                let mut any = false;
                for part in parts.iter_mut() {
                    if part.absorb(occ, policy) {
                        any = true;
                        if !accumulating {
                            break;
                        }
                    }
                }
                any
            }
            Slot::Disj { parts, winner } => {
                let mut any = false;
                for (i, part) in parts.iter_mut().enumerate() {
                    if part.absorb(occ, policy) {
                        any = true;
                        if winner.is_none() && part.complete() {
                            *winner = Some(i);
                        }
                    }
                }
                any
            }
            Slot::Neg { inner, violated } => {
                let took = inner.absorb(occ, policy);
                if took && inner.complete() {
                    *violated = true;
                }
                took
            }
            Slot::Closure {
                template,
                current,
                banked,
            } => {
                let took = current.absorb(occ, policy);
                if took && current.complete() {
                    banked.push(current.constituents());
                    **current = fresh(template);
                }
                took
            }
            Slot::History {
                template,
                current,
                banked,
                ..
            } => {
                let took = current.absorb(occ, policy);
                if took && current.complete() {
                    banked.push(current.constituents());
                    **current = fresh(template);
                }
                took
            }
        }
    }

    /// Completion on the immediate path, recomputed from state.
    fn complete(&self) -> bool {
        match self {
            Slot::Prim { matched, .. } => !matched.is_empty(),
            Slot::Seq(parts) => parts.iter().all(|p| p.complete()),
            Slot::Conj(parts) => parts.iter().all(|p| p.complete()),
            Slot::Disj { winner, .. } => winner.is_some(),
            Slot::Neg { .. } => false,
            Slot::Closure { .. } => false,
            Slot::History { banked, target, .. } => banked.len() as u32 >= *target,
        }
    }

    /// Completion at window close: negation satisfied by absence,
    /// closure by having completed at least once; everything else must
    /// be complete or itself closable.
    fn complete_at_close(&self) -> bool {
        match self {
            Slot::Prim { matched, .. } => !matched.is_empty(),
            Slot::Seq(parts) => {
                let frontier = parts
                    .iter()
                    .position(|p| !p.complete())
                    .unwrap_or(parts.len());
                parts[..frontier]
                    .iter()
                    .all(|p| p.complete() || p.complete_at_close())
                    && parts[frontier..].iter().all(|p| p.complete_at_close())
            }
            Slot::Conj(parts) => parts.iter().all(|p| p.complete() || p.complete_at_close()),
            Slot::Disj { parts, winner } => {
                winner.is_some() || parts.iter().any(|p| p.complete_at_close())
            }
            Slot::Neg { violated, .. } => !violated,
            Slot::Closure { banked, .. } => !banked.is_empty(),
            Slot::History { banked, target, .. } => banked.len() as u32 >= *target,
        }
    }

    /// Constituents in tree order (matching the real collector).
    fn constituents(&self) -> Firing {
        match self {
            Slot::Prim { matched, .. } => matched.clone(),
            Slot::Seq(parts) | Slot::Conj(parts) => {
                parts.iter().flat_map(|p| p.constituents()).collect()
            }
            Slot::Disj { parts, winner } => match winner {
                Some(i) => parts[*i].constituents(),
                None => parts
                    .iter()
                    .find(|p| p.complete_at_close())
                    .map(|p| p.constituents())
                    .unwrap_or_default(),
            },
            Slot::Neg { .. } => Vec::new(),
            Slot::Closure { banked, .. } | Slot::History { banked, .. } => {
                banked.iter().flatten().cloned().collect()
            }
        }
    }
}

/// The reference compositor: one pool of composition attempts over one
/// scope, with the SNOOP policy deciding how occurrences are shared
/// between attempts and when attempts are opened and retired.
pub struct OracleCompositor {
    expr: EventExpr,
    policy: ConsumptionPolicy,
    has_window_ops: bool,
    pool: Vec<Slot>,
}

impl OracleCompositor {
    /// Reference compositor for `expr` under `policy`.
    pub fn new(expr: EventExpr, policy: ConsumptionPolicy) -> Self {
        let has_window_ops = expr.has_window_operator();
        OracleCompositor {
            expr,
            policy,
            has_window_ops,
            pool: Vec::new(),
        }
    }

    /// Feed one occurrence; returns the firings it caused, in order.
    pub fn feed(&mut self, occ: &Arc<EventOccurrence>) -> Vec<Firing> {
        let mut fired = Vec::new();
        match self.policy {
            // One rolling attempt: newest (recent) or all (cumulative)
            // occurrences folded in; firing consumes the attempt.
            ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative => {
                if self.pool.is_empty() {
                    self.pool.push(fresh(&self.expr));
                }
                let slot = &mut self.pool[0];
                let took = slot.absorb(occ, self.policy);
                if took && slot.complete() {
                    fired.push(slot.constituents());
                    self.pool.clear();
                }
            }
            // Oldest attempt that can use the occurrence consumes it;
            // if none can, the occurrence may open a new attempt.
            ConsumptionPolicy::Chronicle => {
                let mut accepted = false;
                for (i, slot) in self.pool.iter_mut().enumerate() {
                    if slot.absorb(occ, self.policy) {
                        accepted = true;
                        if slot.complete() {
                            let done = self.pool.remove(i);
                            fired.push(done.constituents());
                        }
                        break;
                    }
                }
                if !accepted {
                    let mut slot = fresh(&self.expr);
                    if slot.absorb(occ, self.policy) {
                        if slot.complete() {
                            fired.push(slot.constituents());
                        } else {
                            self.pool.push(slot);
                        }
                    }
                }
            }
            // Every occurrence reaches every open attempt and opens one
            // of its own.
            ConsumptionPolicy::Continuous => {
                let mut survivors = Vec::with_capacity(self.pool.len() + 1);
                for mut slot in self.pool.drain(..) {
                    let took = slot.absorb(occ, self.policy);
                    if took && slot.complete() {
                        fired.push(slot.constituents());
                    } else {
                        survivors.push(slot);
                    }
                }
                let mut slot = fresh(&self.expr);
                if slot.absorb(occ, self.policy) {
                    if slot.complete() {
                        fired.push(slot.constituents());
                    } else {
                        survivors.push(slot);
                    }
                }
                self.pool = survivors;
            }
        }
        fired
    }

    /// Close the scope's window (transaction end / interval expiry):
    /// attempts whose window operators are satisfied fire; every attempt
    /// is then discarded (§3.3).
    pub fn close(&mut self) -> Vec<Firing> {
        let pool = std::mem::take(&mut self.pool);
        if !self.has_window_ops {
            return Vec::new();
        }
        pool.iter()
            .filter(|s| s.complete_at_close())
            .map(|s| s.constituents())
            .collect()
    }

    /// Open (semi-composed) attempts — for sanity assertions.
    pub fn live(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;
    use reach_common::{EventTypeId, TimePoint, Timestamp, TxnId};

    fn occ(ty: u64, seq: u64) -> Arc<EventOccurrence> {
        Arc::new(EventOccurrence {
            event_type: EventTypeId::new(ty),
            seq: Timestamp::new(seq),
            at: TimePoint::from_millis(seq),
            txn: Some(TxnId::new(1)),
            top_txn: Some(TxnId::new(1)),
            data: EventData::default(),
            constituents: Vec::new(),
        })
    }

    fn e(n: u64) -> EventExpr {
        EventExpr::Primitive(EventTypeId::new(n))
    }

    fn seqs(firings: Vec<Firing>) -> Vec<Vec<u64>> {
        firings
            .into_iter()
            .map(|f| f.into_iter().map(|o| o.seq.raw()).collect())
            .collect()
    }

    /// §3.4's running example: E3 = (E1 ; E2), arrivals e1, e1', e2 —
    /// the oracle must reproduce the paper's table for all four
    /// policies.
    #[test]
    fn snoop_contexts_on_the_papers_example() {
        let run = |policy: ConsumptionPolicy| -> Vec<Vec<u64>> {
            let mut c = OracleCompositor::new(EventExpr::Sequence(vec![e(1), e(2)]), policy);
            let mut all = Vec::new();
            for a in [occ(1, 1), occ(1, 2), occ(2, 3)] {
                all.extend(seqs(c.feed(&a)));
            }
            all
        };
        assert_eq!(run(ConsumptionPolicy::Recent), vec![vec![2, 3]]);
        assert_eq!(run(ConsumptionPolicy::Chronicle), vec![vec![1, 3]]);
        assert_eq!(
            run(ConsumptionPolicy::Continuous),
            vec![vec![1, 3], vec![2, 3]]
        );
        assert_eq!(run(ConsumptionPolicy::Cumulative), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn negation_fires_at_close_iff_absent() {
        let expr = EventExpr::Sequence(vec![e(1), EventExpr::Negation(Arc::new(e(2)))]);
        let mut c = OracleCompositor::new(expr.clone(), ConsumptionPolicy::Chronicle);
        c.feed(&occ(1, 1));
        assert_eq!(seqs(c.close()), vec![vec![1]]);
        let mut c = OracleCompositor::new(expr, ConsumptionPolicy::Chronicle);
        c.feed(&occ(1, 1));
        c.feed(&occ(2, 2));
        assert!(c.close().is_empty());
    }

    #[test]
    fn closure_banks_all_completions() {
        let mut c = OracleCompositor::new(
            EventExpr::Closure(Arc::new(e(1))),
            ConsumptionPolicy::Chronicle,
        );
        for s in 1..=4 {
            assert!(c.feed(&occ(1, s)).is_empty());
        }
        assert_eq!(seqs(c.close()), vec![vec![1, 2, 3, 4]]);
        assert!(c.close().is_empty(), "pool discarded at close");
    }

    #[test]
    fn history_completes_at_count() {
        let mut c = OracleCompositor::new(
            EventExpr::History {
                expr: Arc::new(e(1)),
                count: 3,
            },
            ConsumptionPolicy::Chronicle,
        );
        assert!(c.feed(&occ(1, 1)).is_empty());
        assert!(c.feed(&occ(1, 2)).is_empty());
        assert_eq!(seqs(c.feed(&occ(1, 3))), vec![vec![1, 2, 3]]);
    }
}
