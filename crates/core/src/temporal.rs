//! Temporal events and milestones.
//!
//! §3.1: "Temporal events can be either absolute or relative, periodic
//! or aperiodic." and "we defined a special kind of temporal event,
//! milestones, which are used for time-constrained processing and can be
//! applied to tracking the progress of a transaction relative to its
//! deadline. If the transaction does not reach a milestone in time, the
//! probability of missing its deadline is high and a contingency plan
//! can be invoked."
//!
//! The [`TemporalManager`] is driven by [`TemporalManager::tick`]: under
//! the virtual clock the REACH facade calls it whenever time advances
//! (deterministic tests and experiments); under a real clock a
//! background ticker thread does.

use crate::eca::Router;
use crate::event::{EventOccurrence, PrimitiveEvent};
use reach_common::sync::Mutex;
use reach_common::{EventTypeId, TimePoint, TxnId};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug)]
enum Kind {
    Absolute {
        at: TimePoint,
        fired: bool,
    },
    Periodic {
        next: TimePoint,
        period: Duration,
    },
    Relative {
        // Kept for introspection/Debug; firing is driven by `pending`.
        #[allow(dead_code)]
        anchor: EventTypeId,
        #[allow(dead_code)]
        delay: Duration,
    },
}

#[derive(Debug)]
struct TemporalSpec {
    ty: EventTypeId,
    kind: Kind,
}

/// A registered milestone watch on a transaction.
#[derive(Debug, Clone)]
pub struct Milestone {
    pub txn: TxnId,
    pub event_type: EventTypeId,
    pub deadline: TimePoint,
    pub reached: bool,
    pub fired: bool,
}

/// Drives temporal event types and milestone deadlines.
pub struct TemporalManager {
    router: Arc<Router>,
    specs: Mutex<Vec<TemporalSpec>>,
    /// Relative events waiting for their delay to elapse.
    pending: Mutex<Vec<(EventTypeId, TimePoint)>>,
    milestones: Mutex<Vec<Milestone>>,
    /// Anchor type -> (relative type, delay), for quick lookup.
    anchors: Mutex<HashMap<EventTypeId, Vec<(EventTypeId, Duration)>>>,
}

impl TemporalManager {
    pub fn new(router: Arc<Router>) -> Arc<Self> {
        Arc::new(TemporalManager {
            router,
            specs: Mutex::new(Vec::new()),
            pending: Mutex::new(Vec::new()),
            milestones: Mutex::new(Vec::new()),
            anchors: Mutex::new(HashMap::new()),
        })
    }

    /// Register a temporal event type already created on the router.
    pub fn track(&self, ty: EventTypeId, spec: &PrimitiveEvent) {
        let kind = match spec {
            PrimitiveEvent::TemporalAbsolute { at } => Kind::Absolute {
                at: *at,
                fired: false,
            },
            PrimitiveEvent::TemporalPeriodic { first, period } => Kind::Periodic {
                next: *first,
                period: *period,
            },
            PrimitiveEvent::TemporalRelative { anchor, delay } => {
                self.anchors
                    .lock()
                    .entry(*anchor)
                    .or_default()
                    .push((ty, *delay));
                Kind::Relative {
                    anchor: *anchor,
                    delay: *delay,
                }
            }
            _ => return,
        };
        self.specs.lock().push(TemporalSpec { ty, kind });
    }

    /// An occurrence was delivered; schedule any relative events
    /// anchored to its type.
    pub fn observe(&self, occ: &EventOccurrence) {
        let anchors = self.anchors.lock();
        if let Some(relatives) = anchors.get(&occ.event_type) {
            let mut pending = self.pending.lock();
            for (ty, delay) in relatives {
                pending.push((*ty, occ.at.plus(*delay)));
            }
        }
    }

    /// Set a milestone: unless [`TemporalManager::reach_milestone`] is
    /// called before `deadline`, the milestone's event type fires (the
    /// contingency rules attached to it run detached, per Table 1).
    pub fn set_milestone(&self, txn: TxnId, event_type: EventTypeId, deadline: TimePoint) {
        self.milestones.lock().push(Milestone {
            txn,
            event_type,
            deadline,
            reached: false,
            fired: false,
        });
    }

    /// The transaction reached its milestone in time.
    pub fn reach_milestone(&self, txn: TxnId, event_type: EventTypeId) {
        let mut ms = self.milestones.lock();
        for m in ms.iter_mut() {
            if m.txn == txn && m.event_type == event_type {
                m.reached = true;
            }
        }
    }

    /// Drop milestone watches of a finished transaction. If it finished
    /// *after* an unreached deadline the event has already fired; if it
    /// finished in time the watch simply ends.
    pub fn txn_finished(&self, txn: TxnId) {
        self.milestones.lock().retain(|m| m.txn != txn);
    }

    /// Fire everything due at `now`. Returns the number of temporal
    /// occurrences raised.
    pub fn tick(&self, now: TimePoint) -> usize {
        let mut due: Vec<EventTypeId> = Vec::new();
        {
            let mut specs = self.specs.lock();
            for spec in specs.iter_mut() {
                match &mut spec.kind {
                    Kind::Absolute { at, fired } => {
                        if !*fired && *at <= now {
                            *fired = true;
                            due.push(spec.ty);
                        }
                    }
                    Kind::Periodic { next, period } => {
                        while *next <= now {
                            due.push(spec.ty);
                            *next = next.plus(*period);
                        }
                    }
                    Kind::Relative { .. } => {} // driven by `pending`
                }
            }
        }
        {
            let mut pending = self.pending.lock();
            pending.retain(|(ty, fire_at)| {
                if *fire_at <= now {
                    due.push(*ty);
                    false
                } else {
                    true
                }
            });
        }
        {
            let mut ms = self.milestones.lock();
            for m in ms.iter_mut() {
                if !m.reached && !m.fired && m.deadline <= now {
                    m.fired = true;
                    due.push(m.event_type);
                }
            }
        }
        let n = due.len();
        for ty in due {
            self.router.raise_temporal(ty, now);
        }
        n
    }

    /// Number of pending relative firings (introspection).
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Active milestone watches (introspection).
    pub fn milestone_count(&self) -> usize {
        self.milestones.lock().len()
    }
}

impl std::fmt::Debug for TemporalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemporalManager")
            .field("specs", &self.specs.lock().len())
            .field("pending", &self.pending_count())
            .field("milestones", &self.milestone_count())
            .finish()
    }
}
