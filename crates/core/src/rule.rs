//! ECA rules.
//!
//! §6.1: a rule "is mapped onto one rule object and two C functions for
//! condition evaluation and action execution ... archived in a shared
//! library". Our equivalent of those shared-library functions are
//! closures over [`RuleCtx`]; the rule-language compiler
//! (`reach-rulelang`) produces exactly such closures from `cond`/`action`
//! source text, and hand-written rules supply them directly.

use crate::coupling::CouplingMode;
use crate::event::EventOccurrence;
use open_oodb::Database;
use reach_common::{EventTypeId, Priority, Result, RuleId, Timestamp, TxnId};
use reach_object::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything a condition or action can see.
pub struct RuleCtx<'a> {
    /// The database (full OODB capability inside rules).
    pub db: &'a Arc<Database>,
    /// The transaction the condition/action executes in (a
    /// subtransaction for immediate/deferred, a fresh top-level for the
    /// detached modes).
    pub txn: TxnId,
    /// The triggering event occurrence.
    pub event: &'a EventOccurrence,
}

impl RuleCtx<'_> {
    /// The receiver of the triggering (first primitive) event.
    pub fn receiver(&self) -> Option<reach_common::ObjectId> {
        self.event.first_primitive().data.receiver
    }

    /// Positional argument of the triggering event, `Null` when absent.
    pub fn arg(&self, idx: usize) -> Value {
        self.event
            .first_primitive()
            .data
            .args
            .get(idx)
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// New value of a state-change event.
    pub fn new_value(&self) -> Value {
        self.event
            .first_primitive()
            .data
            .new
            .clone()
            .unwrap_or(Value::Null)
    }

    /// Old value of a state-change event.
    pub fn old_value(&self) -> Value {
        self.event
            .first_primitive()
            .data
            .old
            .clone()
            .unwrap_or(Value::Null)
    }
}

/// Compiled condition: `true` means the action fires.
pub type Condition = Arc<dyn Fn(&RuleCtx<'_>) -> Result<bool> + Send + Sync>;
/// Compiled action.
pub type Action = Arc<dyn Fn(&RuleCtx<'_>) -> Result<()> + Send + Sync>;

/// An ECA rule object.
pub struct Rule {
    pub id: RuleId,
    pub name: String,
    pub priority: Priority,
    /// E-C coupling: where the condition runs relative to the
    /// triggering transaction (§3.2). Validated against Table 1 at
    /// registration.
    pub coupling: CouplingMode,
    /// C-A coupling: where the action runs relative to the condition
    /// (HiPAC's second coupling, which REACH inherits — the rule
    /// language's separate `cond <mode>` / `action <mode>` keywords).
    /// `None` means the action runs with the condition. When set, it
    /// must be *later* than the E-C coupling (an action cannot run
    /// before its condition) and is itself validated against Table 1.
    pub action_coupling: Option<CouplingMode>,
    /// The event type that fires this rule.
    pub event_type: EventTypeId,
    pub condition: Condition,
    pub action: Action,
    /// Registration timestamp — §6.4's oldest/newest tie-break key.
    pub created: Timestamp,
    enabled: AtomicBool,
}

impl Rule {
    /// Whether the rule currently fires.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Enable/disable without unregistering.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Release);
    }

    /// Evaluate the condition, then the action if it held. Returns
    /// whether the action ran.
    pub fn execute(&self, ctx: &RuleCtx<'_>) -> Result<bool> {
        if (self.condition)(ctx)? {
            (self.action)(ctx)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Evaluate only the condition (split C-A coupling).
    pub fn eval_condition(&self, ctx: &RuleCtx<'_>) -> Result<bool> {
        (self.condition)(ctx)
    }

    /// Run only the action (split C-A coupling).
    pub fn run_action(&self, ctx: &RuleCtx<'_>) -> Result<()> {
        (self.action)(ctx)
    }
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("coupling", &self.coupling)
            .field("event_type", &self.event_type)
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Builder for rules (the programmatic face of the rule language).
pub struct RuleBuilder {
    name: String,
    priority: Priority,
    coupling: CouplingMode,
    action_coupling: Option<CouplingMode>,
    event_type: Option<EventTypeId>,
    condition: Option<Condition>,
    action: Option<Action>,
}

impl RuleBuilder {
    pub fn new(name: &str) -> Self {
        RuleBuilder {
            name: name.to_string(),
            priority: Priority::DEFAULT,
            coupling: CouplingMode::Immediate,
            action_coupling: None,
            event_type: None,
            condition: None,
            action: None,
        }
    }

    /// `prio N;`
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = Priority::new(p);
        self
    }

    /// The E-C coupling mode (Table 1 validation happens at registration).
    pub fn coupling(mut self, c: CouplingMode) -> Self {
        self.coupling = c;
        self
    }

    /// A C-A coupling differing from the E-C coupling: the condition
    /// runs per `coupling`, and if it holds, the action is scheduled
    /// under this (later) mode.
    pub fn action_coupling(mut self, c: CouplingMode) -> Self {
        self.action_coupling = Some(c);
        self
    }

    /// `event ...;` — the registered event type that triggers the rule.
    pub fn on(mut self, event_type: EventTypeId) -> Self {
        self.event_type = Some(event_type);
        self
    }

    /// `cond ...;`
    pub fn when<F>(mut self, f: F) -> Self
    where
        F: Fn(&RuleCtx<'_>) -> Result<bool> + Send + Sync + 'static,
    {
        self.condition = Some(Arc::new(f));
        self
    }

    /// `action ...;`
    pub fn then<F>(mut self, f: F) -> Self
    where
        F: Fn(&RuleCtx<'_>) -> Result<()> + Send + Sync + 'static,
    {
        self.action = Some(Arc::new(f));
        self
    }

    /// Finish the description. `id`/`created` are assigned by the
    /// system at registration ([`crate::reach::ReachSystem::define_rule`]).
    pub fn build(self, id: RuleId, created: Timestamp) -> Result<Rule> {
        let event_type = self.event_type.ok_or_else(|| {
            reach_common::ReachError::IllegalEventDefinition(format!(
                "rule {:?} has no event clause",
                self.name
            ))
        })?;
        Ok(Rule {
            id,
            name: self.name,
            priority: self.priority,
            coupling: self.coupling,
            action_coupling: self.action_coupling.filter(|ac| *ac != self.coupling),
            event_type,
            condition: self.condition.unwrap_or_else(|| Arc::new(|_| Ok(true))),
            action: self.action.unwrap_or_else(|| Arc::new(|_| Ok(()))),
            created,
            enabled: AtomicBool::new(true),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventData;
    use reach_common::TimePoint;

    fn occurrence() -> EventOccurrence {
        EventOccurrence {
            event_type: EventTypeId::new(1),
            seq: Timestamp::new(1),
            at: TimePoint::ZERO,
            txn: Some(TxnId::new(1)),
            top_txn: Some(TxnId::new(1)),
            data: EventData {
                receiver: Some(reach_common::ObjectId::new(9)),
                args: vec![Value::Int(42)].into(),
                ..Default::default()
            },
            constituents: Vec::new(),
        }
    }

    #[test]
    fn builder_produces_enabled_rule_with_defaults() {
        let rule = RuleBuilder::new("r")
            .on(EventTypeId::new(1))
            .build(RuleId::new(1), Timestamp::new(1))
            .unwrap();
        assert!(rule.is_enabled());
        assert_eq!(rule.priority, Priority::DEFAULT);
        assert_eq!(rule.coupling, CouplingMode::Immediate);
    }

    #[test]
    fn builder_without_event_fails() {
        assert!(RuleBuilder::new("r")
            .build(RuleId::new(1), Timestamp::new(1))
            .is_err());
    }

    #[test]
    fn execute_respects_condition() {
        let db = Database::in_memory().unwrap();
        let occ = occurrence();
        let hits = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let rule = RuleBuilder::new("r")
            .on(EventTypeId::new(1))
            .when(|ctx| Ok(ctx.arg(0).as_int()? > 40))
            .then(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                Ok(())
            })
            .build(RuleId::new(1), Timestamp::new(1))
            .unwrap();
        let ctx = RuleCtx {
            db: &db,
            txn: TxnId::new(1),
            event: &occ,
        };
        assert!(rule.execute(&ctx).unwrap());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // Condition false → action does not run.
        let mut cold = occurrence();
        cold.data.args = vec![Value::Int(1)].into();
        let ctx = RuleCtx {
            db: &db,
            txn: TxnId::new(1),
            event: &cold,
        };
        assert!(!rule.execute(&ctx).unwrap());
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn ctx_accessors() {
        let db = Database::in_memory().unwrap();
        let occ = occurrence();
        let ctx = RuleCtx {
            db: &db,
            txn: TxnId::new(1),
            event: &occ,
        };
        assert_eq!(ctx.receiver(), Some(reach_common::ObjectId::new(9)));
        assert_eq!(ctx.arg(0), Value::Int(42));
        assert_eq!(ctx.arg(5), Value::Null);
        assert_eq!(ctx.new_value(), Value::Null);
    }
}
