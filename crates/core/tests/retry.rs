//! Graceful degradation of detached rule firings: transient errors
//! (deadlock victims, lock timeouts, buffer-pool pressure) are retried
//! with bounded exponential backoff; permanent failures are never
//! silently dropped — they land in the engine's dead-letter record.

use crossbeam::channel::bounded;
use open_oodb::Database;
use reach_common::{ClassId, ObjectId, ReachError};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RetryPolicy, RuleBuilder};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn world() -> (Arc<ReachSystem>, ClassId) {
    let db = Database::in_memory().unwrap();
    let (b, poke) = db
        .define_class("Res")
        .attr("v", ValueType::Int, Value::Int(0))
        .virtual_method("poke");
    let class = b.define().unwrap();
    db.methods().register_fn(poke, |ctx| {
        ctx.set("v", ctx.arg(0))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    (sys, class)
}

fn persistent_obj(sys: &ReachSystem, class: ClassId) -> ObjectId {
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, class).unwrap();
    db.persist(t, oid).unwrap();
    db.commit(t).unwrap();
    oid
}

/// Two detached rules fire off the same event and take exclusive locks
/// on the same two objects in opposite orders, rendezvousing after the
/// first lock so their first attempts are guaranteed to deadlock. The
/// victim's firing must be retried (with backoff, in a fresh
/// transaction) and both must eventually commit — nothing skipped,
/// nothing dead-lettered.
#[test]
fn deadlock_victim_rule_is_retried_until_both_commit() {
    let (sys, class) = world();
    let obj_a = persistent_obj(&sys, class);
    let obj_b = persistent_obj(&sys, class);
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    // One-shot rendezvous: each rule announces its first lock and waits
    // (bounded) for the other before requesting the second. Retries skip
    // the rendezvous — the other side may already be long gone.
    let (ready_a_tx, ready_a_rx) = bounded::<()>(1);
    let (ready_b_tx, ready_b_rx) = bounded::<()>(1);
    let attempts_a = Arc::new(AtomicUsize::new(0));
    let attempts_b = Arc::new(AtomicUsize::new(0));

    {
        let attempts = Arc::clone(&attempts_a);
        sys.define_rule(
            RuleBuilder::new("lock-a-then-b")
                .on(ev)
                .coupling(CouplingMode::Detached)
                .then(move |ctx| {
                    let first = attempts.fetch_add(1, Ordering::SeqCst) == 0;
                    // set_attr takes the exclusive lock without raising
                    // the method event (no re-triggering cascade).
                    ctx.db.set_attr(ctx.txn, obj_a, "v", Value::Int(10))?;
                    if first {
                        let _ = ready_a_tx.send(());
                        let _ = ready_b_rx.recv_timeout(Duration::from_secs(5));
                    }
                    ctx.db.set_attr(ctx.txn, obj_b, "v", Value::Int(11))?;
                    Ok(())
                }),
        )
        .unwrap();
    }
    {
        let attempts = Arc::clone(&attempts_b);
        sys.define_rule(
            RuleBuilder::new("lock-b-then-a")
                .on(ev)
                .coupling(CouplingMode::Detached)
                .then(move |ctx| {
                    let first = attempts.fetch_add(1, Ordering::SeqCst) == 0;
                    ctx.db.set_attr(ctx.txn, obj_b, "v", Value::Int(20))?;
                    if first {
                        let _ = ready_b_tx.send(());
                        let _ = ready_a_rx.recv_timeout(Duration::from_secs(5));
                    }
                    ctx.db.set_attr(ctx.txn, obj_a, "v", Value::Int(21))?;
                    Ok(())
                }),
        )
        .unwrap();
    }

    let trigger = persistent_obj(&sys, class);
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, trigger, "poke", &[Value::Int(0)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();

    let stats = sys.stats();
    assert_eq!(stats.detached_runs, 2, "each rule fired exactly once");
    assert!(
        stats.retries >= 1,
        "the deadlock victim must have been retried: {stats:?}"
    );
    assert_eq!(stats.gave_up, 0, "no firing exhausted its retry budget");
    assert_eq!(stats.failures, 0, "both firings ultimately succeeded");
    assert!(sys.dead_letters().is_empty());
    assert_eq!(
        attempts_a.load(Ordering::SeqCst) + attempts_b.load(Ordering::SeqCst),
        2 + stats.retries as usize,
        "every retry re-ran exactly one action"
    );
    // Both rules committed: both objects carry some rule-written value.
    let t = db.begin().unwrap();
    for oid in [obj_a, obj_b] {
        let v = db.get_attr(t, oid, "v").unwrap();
        assert_ne!(v, Value::Int(0), "rule writes on {oid:?} are visible");
    }
    db.commit(t).unwrap();
}

/// A firing that fails with a *transient* error on every attempt is
/// abandoned after `max_attempts`, counted as `gave_up`, and recorded in
/// the dead-letter list with its attempt count.
#[test]
fn transient_failure_exhausts_retries_and_lands_in_dead_letters() {
    let (sys, class) = world();
    sys.set_retry_policy(RetryPolicy {
        max_attempts: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
    });
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    sys.define_rule(
        RuleBuilder::new("always-starved")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                a.fetch_add(1, Ordering::SeqCst);
                Err(ReachError::BufferPoolExhausted)
            }),
    )
    .unwrap();

    let oid = persistent_obj(&sys, class);
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "poke", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();

    let stats = sys.stats();
    assert_eq!(attempts.load(Ordering::SeqCst), 3, "max_attempts honoured");
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.gave_up, 1);
    assert_eq!(stats.failures, 1);
    let dead = sys.dead_letters();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].rule_name, "always-starved");
    assert_eq!(dead[0].attempts, 3);
    assert_eq!(dead[0].error, ReachError::BufferPoolExhausted);
}

/// A permanent (non-transient) failure is not retried at all — it goes
/// straight to the dead-letter record after the first attempt.
#[test]
fn permanent_failure_is_dead_lettered_without_retry() {
    let (sys, class) = world();
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    let attempts = Arc::new(AtomicUsize::new(0));
    let a = Arc::clone(&attempts);
    sys.define_rule(
        RuleBuilder::new("broken-action")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                a.fetch_add(1, Ordering::SeqCst);
                Err(ReachError::MethodFailed("boom".into()))
            }),
    )
    .unwrap();

    let oid = persistent_obj(&sys, class);
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "poke", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();

    let stats = sys.stats();
    assert_eq!(
        attempts.load(Ordering::SeqCst),
        1,
        "no retry of a permanent error"
    );
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.gave_up, 0, "gave_up counts only exhausted transients");
    assert_eq!(stats.failures, 1);
    let dead = sys.dead_letters();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].rule_name, "broken-action");
    assert_eq!(dead[0].attempts, 1);
    assert_eq!(dead[0].error, ReachError::MethodFailed("boom".into()));
}

/// `take_dead_letters` drains the record exactly once: the caller gets
/// every record accumulated so far, a second drain is empty, and
/// `dead_letters` (the inspect API) does not consume. This is the
/// contract the server's notification pump relies on to forward each
/// gave-up firing to subscribers exactly once.
#[test]
fn take_dead_letters_drains_exactly_once() {
    let (sys, class) = world();
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("always-broken")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| Err(ReachError::MethodFailed("boom".into()))),
    )
    .unwrap();

    let oid = persistent_obj(&sys, class);
    let db = sys.db();
    for i in 0..3 {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "poke", &[Value::Int(i)]).unwrap();
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();

    // Inspect does not consume.
    assert_eq!(sys.dead_letters().len(), 3);
    assert_eq!(sys.dead_letters().len(), 3);
    // Drain consumes everything, exactly once.
    let drained = sys.take_dead_letters();
    assert_eq!(drained.len(), 3);
    assert!(drained.iter().all(|d| d.rule_name == "always-broken"));
    assert!(sys.take_dead_letters().is_empty());
    assert!(sys.dead_letters().is_empty());

    // New give-ups land in the (now empty) record again.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "poke", &[Value::Int(9)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(sys.take_dead_letters().len(), 1);
}

/// Firing listeners observe every executed action with the rule id,
/// name and triggering event type — the server's subscription hook.
#[test]
fn firing_listeners_observe_executed_actions() {
    let (sys, class) = world();
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    let rule = sys
        .define_rule(
            RuleBuilder::new("observed")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| Ok(())),
        )
        .unwrap();
    let seen = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    {
        let seen = Arc::clone(&seen);
        sys.add_firing_listener(Box::new(move |n| {
            seen.lock()
                .push((n.rule, n.rule_name.clone(), n.event_type));
        }));
    }

    let oid = persistent_obj(&sys, class);
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "poke", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();

    let seen = seen.lock();
    assert_eq!(seen.len(), 1, "one action, one notice");
    assert_eq!(seen[0], (rule, "observed".to_string(), ev));
}
