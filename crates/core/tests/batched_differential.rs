//! Full-system differential oracle for the batched routing hot path:
//! the same seeded workload is driven once through the per-reading
//! `invoke` loop and once through `invoke_batch`, and the two runs must
//! produce **byte-identical firing sequences** — rule name and logical
//! event identity, in order.
//!
//! This pins the ordering contract the batched path promises: batching
//! moves *when* after-events are raised (once at batch end instead of
//! once per call) but never their relative order, so immediate rules,
//! deferred queues, composite detection state, and consumption-policy
//! bookkeeping all observe the identical event stream. Covered here:
//!
//! - mid-batch composite completions (`History(3)` against chunk sizes
//!   deliberately coprime with 3, so automata complete inside a batch
//!   and fresh instances open mid-batch);
//! - consumption-policy boundaries (all four SNOOP policies: Recent
//!   supersede, Chronicle FIFO pairing, Continuous multi-instance,
//!   Cumulative absorption — each reclaims/reopens instances mid-batch);
//! - window-close firings (a `Sequence[ping, Negation(report)]`
//!   composite that can only fire when the transaction window closes,
//!   with constituents accumulated *across* batch boundaries);
//! - subtransaction side effects (the immediate rule bumps a persistent
//!   counter; final attribute state must agree).
//!
//! Events are identified by a unique per-call payload id, NOT by the
//! router's raw sequence stamp: composite occurrences draw from the
//! same sequence counter as primitives, and a composite that completes
//! mid-batch is stamped after the whole batch's primitives instead of
//! between them — so raw stamps legitimately differ while the firing
//! *order* (the actual contract) is identical. Detached rules are
//! deliberately excluded: their execution order is asynchronous by the
//! coupling-mode contract (Table 1), so they have no byte-identical
//! guarantee to check. The seed honours `REACH_SEED` so the CI stress
//! matrix replays different workloads per leg.

use open_oodb::Database;
use reach_common::sync::Mutex;
use reach_common::{announce_seed, seed_from_env, ClassId, ObjectId, SplitMix64};
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, Lifespan, ReachConfig,
    ReachSystem, RuleBuilder,
};
use reach_object::{Value, ValueType};
use std::sync::Arc;

const SENSORS: usize = 4;
/// Payload ids are `call_index * 1024 + reading`; the reading (low 10
/// bits) carries the condition-relevant value, the rest makes every
/// call's payload unique so logs can be compared across runs whose raw
/// sequence stamps differ.
const THRESHOLD: i64 = 700;

fn reading(uid: i64) -> i64 {
    uid & 1023
}

/// One method call in the generated workload; `uid` is the unique
/// payload passed as the first argument either way.
#[derive(Clone, Copy)]
enum Call {
    Report { sensor: usize, uid: i64 },
    Ping { sensor: usize, uid: i64 },
}

/// A seeded workload: transactions of mixed report/ping calls. Pings
/// are sparse, but about half the transactions end on one, so the
/// negation composite both fires at window close and gets invalidated
/// by trailing reports across different transactions.
fn gen_workload(seed: u64, txns: usize, calls_per_txn: usize) -> Vec<Vec<Call>> {
    let mut rng = SplitMix64::new(seed);
    let mut next = 0i64;
    let mut uid = |value: i64| {
        next += 1;
        next * 1024 + value
    };
    (0..txns)
        .map(|_| {
            let mut calls: Vec<Call> = (0..calls_per_txn)
                .map(|_| {
                    let sensor = rng.below(SENSORS);
                    if rng.chance(1, 8) {
                        Call::Ping {
                            sensor,
                            uid: uid(0),
                        }
                    } else {
                        let v = rng.below(1000) as i64;
                        Call::Report {
                            sensor,
                            uid: uid(v),
                        }
                    }
                })
                .collect();
            if rng.chance(1, 2) {
                calls.push(Call::Ping {
                    sensor: rng.below(SENSORS),
                    uid: uid(0),
                });
            }
            calls
        })
        .collect()
}

struct Run {
    log: Vec<String>,
    alarms: Vec<i64>,
    stats: (u64, u64, u64, u64),
}

/// Build a fresh world, install the rule set, and drive `workload`
/// through it. `chunks` is `None` for the per-event reference loop, or
/// a cycle of batch sizes for the `invoke_batch` variant.
fn run_variant(policy: ConsumptionPolicy, workload: &[Vec<Call>], chunks: Option<&[usize]>) -> Run {
    let db = Database::in_memory().unwrap();
    let (b, report) = db
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .attr("alarms", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let (b, ping) = b.virtual_method("ping");
    let class: ClassId = b.define().unwrap();
    db.methods().register_fn(report, |ctx| {
        let v = ctx.arg(0);
        ctx.set("value", v.clone())?;
        Ok(v)
    });
    db.methods().register_fn(ping, |_| Ok(Value::Null));
    let sys = ReachSystem::new(db, ReachConfig::default());
    let db = sys.db();

    let ev_report = sys
        .define_method_event("after-report", class, "report", MethodPhase::After)
        .unwrap();
    let ev_ping = sys
        .define_method_event("after-ping", class, "ping", MethodPhase::After)
        .unwrap();
    // Completes every 3 reports — mid-batch for any chunk size coprime
    // with 3, and straddling chunk boundaries for the small sizes.
    let hist3 = sys
        .define_composite(
            "hist3",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev_report)),
                count: 3,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            policy,
        )
        .unwrap();
    // Fires only at window close (commit), and only for windows where
    // some ping was never followed by a report — constituents gathered
    // across batch boundaries.
    let quiet = sys
        .define_composite(
            "quiet",
            EventExpr::Sequence(vec![
                EventExpr::Primitive(ev_ping),
                EventExpr::Negation(Arc::new(EventExpr::Primitive(ev_report))),
            ]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            policy,
        )
        .unwrap();

    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    // Immediate: logs AND bumps a persistent counter in a
    // subtransaction, so final object state is part of the oracle.
    {
        let log = Arc::clone(&log);
        sys.define_rule(
            RuleBuilder::new("imm-high")
                .on(ev_report)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(reading(ctx.arg(0).as_int()?) >= THRESHOLD))
                .then(move |ctx| {
                    let oid = ctx.receiver().unwrap();
                    let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                    ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))?;
                    log.lock()
                        .push(format!("imm id={} alarms={n}", ctx.arg(0).as_int()?));
                    Ok(())
                }),
        )
        .unwrap();
    }
    {
        let log = Arc::clone(&log);
        sys.define_rule(
            RuleBuilder::new("def-high")
                .on(ev_report)
                .coupling(CouplingMode::Deferred)
                .when(|ctx| Ok(reading(ctx.arg(0).as_int()?) >= THRESHOLD))
                .then(move |ctx| {
                    log.lock().push(format!("def id={}", ctx.arg(0).as_int()?));
                    Ok(())
                }),
        )
        .unwrap();
    }
    for (name, ty) in [("hist3", hist3), ("quiet", quiet)] {
        let log = Arc::clone(&log);
        sys.define_rule(
            RuleBuilder::new(name)
                .on(ty)
                .coupling(CouplingMode::Deferred)
                .then(move |ctx| {
                    let ids: Vec<i64> = ctx
                        .event
                        .constituents
                        .iter()
                        .map(|c| match c.data.args.first() {
                            Some(v) => v.as_int().unwrap_or(-1),
                            None => -1,
                        })
                        .collect();
                    log.lock().push(format!("{name} of {ids:?}"));
                    Ok(())
                }),
        )
        .unwrap();
    }

    // Persistent sensors, created before the measured workload.
    let sensors: Vec<ObjectId> = {
        let t = db.begin().unwrap();
        let oids: Vec<ObjectId> = (0..SENSORS)
            .map(|_| {
                let oid = db.create(t, class).unwrap();
                db.persist(t, oid).unwrap();
                oid
            })
            .collect();
        db.commit(t).unwrap();
        oids
    };

    for txn_calls in workload {
        let t = db.begin().unwrap();
        match chunks {
            None => {
                for call in txn_calls {
                    let (oid, method, uid) = match call {
                        Call::Report { sensor, uid } => (sensors[*sensor], "report", *uid),
                        Call::Ping { sensor, uid } => (sensors[*sensor], "ping", *uid),
                    };
                    db.invoke(t, oid, method, &[Value::Int(uid)]).unwrap();
                }
            }
            Some(sizes) => {
                let mut cycle = sizes.iter().cycle();
                let mut rest = &txn_calls[..];
                while !rest.is_empty() {
                    let n = (*cycle.next().unwrap()).min(rest.len());
                    let (chunk, tail) = rest.split_at(n);
                    rest = tail;
                    let args: Vec<[Value; 1]> = chunk
                        .iter()
                        .map(|c| match c {
                            Call::Report { uid, .. } | Call::Ping { uid, .. } => [Value::Int(*uid)],
                        })
                        .collect();
                    let calls: Vec<(ObjectId, &str, &[Value])> = chunk
                        .iter()
                        .zip(&args)
                        .map(|(c, a)| match c {
                            Call::Report { sensor, .. } => (sensors[*sensor], "report", &a[..]),
                            Call::Ping { sensor, .. } => (sensors[*sensor], "ping", &a[..]),
                        })
                        .collect();
                    db.invoke_batch(t, &calls).unwrap();
                }
            }
        }
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();

    let t = db.begin().unwrap();
    let alarms: Vec<i64> = sensors
        .iter()
        .map(|&oid| db.get_attr(t, oid, "alarms").unwrap().as_int().unwrap())
        .collect();
    db.commit(t).unwrap();
    let s = sys.stats();
    Run {
        log: Arc::try_unwrap(log)
            .map(Mutex::into_inner)
            .unwrap_or_else(|l| l.lock().clone()),
        alarms,
        stats: (
            s.immediate_runs,
            s.deferred_runs,
            s.actions_executed,
            s.conditions_false,
        ),
    }
}

/// Chunk-size cycles for the batched variant. 7 and 5 are coprime with
/// the History(3) period (completions land mid-chunk); 1 degenerates to
/// single-call batches; 64 swallows a whole transaction in one batch.
const CHUNKINGS: [&[usize]; 3] = [&[7, 1, 3, 5], &[2, 13], &[64]];

#[test]
fn batched_routing_matches_per_event_firing_sequence() {
    let base = seed_from_env(0xBA7C11ED);
    for (p, policy) in ConsumptionPolicy::ALL.into_iter().enumerate() {
        let seed = base.wrapping_mul(31).wrapping_add(p as u64);
        announce_seed("batched_differential", seed);
        let workload = gen_workload(seed, 6, 48);
        let reference = run_variant(policy, &workload, None);
        assert!(
            !reference.log.is_empty(),
            "seed {seed:#x}: degenerate workload fired no rules"
        );
        for sizes in CHUNKINGS {
            let batched = run_variant(policy, &workload, Some(sizes));
            assert_eq!(
                reference.log, batched.log,
                "{policy:?}, seed {seed:#x}, chunks {sizes:?}: \
                 batched firing sequence diverged from per-event reference"
            );
            assert_eq!(
                reference.alarms, batched.alarms,
                "{policy:?}, seed {seed:#x}, chunks {sizes:?}: final object state diverged"
            );
            assert_eq!(
                reference.stats, batched.stats,
                "{policy:?}, seed {seed:#x}, chunks {sizes:?}: engine stats diverged"
            );
        }
    }
}

/// The batched path must also agree with itself when a transaction's
/// calls arrive as one batch vs many: associativity of batching.
#[test]
fn batch_splitting_is_associative() {
    let seed = seed_from_env(0xA550C).wrapping_add(1);
    announce_seed("batched_differential::associative", seed);
    let workload = gen_workload(seed, 4, 32);
    let whole = run_variant(ConsumptionPolicy::Chronicle, &workload, Some(&[64]));
    let split = run_variant(ConsumptionPolicy::Chronicle, &workload, Some(&[3]));
    assert_eq!(
        whole.log, split.log,
        "seed {seed:#x}: one-batch vs size-3 batches diverged"
    );
    assert_eq!(whole.alarms, split.alarms);
}
