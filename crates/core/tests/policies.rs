//! Tests of the §6.4 ordering policies, event-algebra operators
//! end-to-end, and edge cases of the active layer.

use open_oodb::Database;
use reach_common::ClassId;
use reach_common::TxnId;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, Lifespan, ReachConfig,
    ReachSystem, RuleBuilder, TieBreak,
};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct World {
    sys: Arc<ReachSystem>,
    class: ClassId,
}

fn world() -> World {
    let db = Database::in_memory().unwrap();
    let (b, m) = db
        .define_class("Probe")
        .attr("v", ValueType::Int, Value::Int(0))
        .virtual_method("hit");
    let (b, m2) = b.virtual_method("hit2");
    let class = b.define().unwrap();
    db.methods().register_fn(m, |ctx| {
        ctx.set("v", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(m2, |_| Ok(Value::Null));
    let sys = ReachSystem::new(db, ReachConfig::default());
    World { sys, class }
}

impl World {
    fn obj(&self) -> reach_common::ObjectId {
        let db = self.sys.db();
        let t = db.begin().unwrap();
        let oid = db.create(t, self.class).unwrap();
        db.persist(t, oid).unwrap();
        db.commit(t).unwrap();
        oid
    }

    fn hit(&self, oid: reach_common::ObjectId, v: i64) {
        let db = self.sys.db();
        let t = db.begin().unwrap();
        db.invoke(t, oid, "hit", &[Value::Int(v)]).unwrap();
        db.commit(t).unwrap();
    }
}

fn order_recorder(
    w: &World,
    ev: reach_common::EventTypeId,
    names: &[(&'static str, i32)],
    coupling: CouplingMode,
) -> Arc<reach_common::sync::Mutex<Vec<&'static str>>> {
    let order = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    for (name, prio) in names {
        let o = Arc::clone(&order);
        let name = *name;
        w.sys
            .define_rule(
                RuleBuilder::new(name)
                    .on(ev)
                    .coupling(coupling)
                    .priority(*prio)
                    .then(move |_| {
                        o.lock().push(name);
                        Ok(())
                    }),
            )
            .unwrap();
    }
    order
}

#[test]
fn tiebreak_oldest_first_is_default() {
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    // Equal priorities: registration (timestamp) order decides.
    let order = order_recorder(
        &w,
        ev,
        &[("first", 5), ("second", 5), ("third", 5)],
        CouplingMode::Immediate,
    );
    let oid = w.obj();
    w.hit(oid, 1);
    assert_eq!(*order.lock(), vec!["first", "second", "third"]);
}

#[test]
fn tiebreak_newest_first_is_optional() {
    let w = world();
    w.sys.set_tiebreak(TieBreak::NewestFirst);
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let order = order_recorder(
        &w,
        ev,
        &[("first", 5), ("second", 5), ("third", 5)],
        CouplingMode::Immediate,
    );
    let oid = w.obj();
    w.hit(oid, 1);
    assert_eq!(*order.lock(), vec!["third", "second", "first"]);
}

#[test]
fn deferred_simple_events_before_composite_policy() {
    let w = world();
    w.sys.set_simple_events_first(true);
    let simple = w
        .sys
        .define_method_event("simple", w.class, "hit", MethodPhase::After)
        .unwrap();
    let composite = w
        .sys
        .define_composite(
            "pair",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(simple)),
                count: 1,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let order = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    // Register the composite-event rule FIRST so without the policy it
    // would drain first (same priority, oldest first).
    {
        let o = Arc::clone(&order);
        w.sys
            .define_rule(
                RuleBuilder::new("composite-rule")
                    .on(composite)
                    .coupling(CouplingMode::Deferred)
                    .then(move |_| {
                        o.lock().push("composite");
                        Ok(())
                    }),
            )
            .unwrap();
    }
    {
        let o = Arc::clone(&order);
        w.sys
            .define_rule(
                RuleBuilder::new("simple-rule")
                    .on(simple)
                    .coupling(CouplingMode::Deferred)
                    .then(move |_| {
                        o.lock().push("simple");
                        Ok(())
                    }),
            )
            .unwrap();
    }
    let oid = w.obj();
    w.hit(oid, 1);
    assert_eq!(
        *order.lock(),
        vec!["simple", "composite"],
        "§6.4: rules with simple events fire ahead of rules with complex events"
    );
}

#[test]
fn disjunction_composite_end_to_end() {
    let w = world();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let e2 = w
        .sys
        .define_method_event("e2", w.class, "hit2", MethodPhase::After)
        .unwrap();
    let either = w
        .sys
        .define_composite(
            "either",
            EventExpr::Disjunction(vec![EventExpr::Primitive(e1), EventExpr::Primitive(e2)]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    w.sys
        .define_rule(
            RuleBuilder::new("on-either")
                .on(either)
                .coupling(CouplingMode::Deferred)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    let db = w.sys.db();
    // hit2 alone completes the disjunction.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "hit2", &[]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn composite_of_composites() {
    let w = world();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let inner = w
        .sys
        .define_composite(
            "two-hits",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(e1)),
                count: 2,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let outer = w
        .sys
        .define_composite(
            "two-pairs",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(inner)),
                count: 2,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    w.sys
        .define_rule(
            RuleBuilder::new("on-four")
                .on(outer)
                .coupling(CouplingMode::Detached)
                .then(move |ctx| {
                    // Constituents are the two inner composites.
                    assert_eq!(ctx.event.constituents.len(), 2);
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    for i in 0..4 {
        w.hit(oid, i);
    }
    w.sys.wait_quiescent();
    assert_eq!(
        count.load(Ordering::SeqCst),
        1,
        "4 hits = 2 pairs = 1 outer"
    );
}

#[test]
fn negation_composite_same_txn_end_to_end() {
    let w = world();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let e2 = w
        .sys
        .define_method_event("e2", w.class, "hit2", MethodPhase::After)
        .unwrap();
    // "hit without a subsequent hit2 in the same transaction".
    let unacked = w
        .sys
        .define_composite(
            "hit-unacked",
            EventExpr::Sequence(vec![
                EventExpr::Primitive(e1),
                EventExpr::Negation(Arc::new(EventExpr::Primitive(e2))),
            ]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    w.sys
        .define_rule(
            RuleBuilder::new("nag")
                .on(unacked)
                .coupling(CouplingMode::Deferred)
                .then(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    let db = w.sys.db();
    // Transaction 1: hit acknowledged by hit2 — no firing.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "hit", &[Value::Int(1)]).unwrap();
    db.invoke(t, oid, "hit2", &[]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    // Transaction 2: hit without acknowledgement — fires at window close
    // (pre-commit), deferred into the same transaction.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "hit", &[Value::Int(2)]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn closure_composite_collapses_in_transaction() {
    let w = world();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let burst = w
        .sys
        .define_composite(
            "hit-burst",
            EventExpr::Closure(Arc::new(EventExpr::Primitive(e1))),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let sizes = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    let s = Arc::clone(&sizes);
    w.sys
        .define_rule(
            RuleBuilder::new("burst")
                .on(burst)
                .coupling(CouplingMode::Deferred)
                .then(move |ctx| {
                    s.lock().push(ctx.event.constituents.len());
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    let db = w.sys.db();
    let t = db.begin().unwrap();
    for i in 0..5 {
        db.invoke(t, oid, "hit", &[Value::Int(i)]).unwrap();
    }
    db.commit(t).unwrap();
    assert_eq!(*sizes.lock(), vec![5], "one firing absorbing all 5 hits");
}

#[test]
fn aborted_transaction_revokes_its_events_from_cross_tx_composites() {
    // A cross-transaction composite must not fire off events of a
    // transaction that aborted *if they had not yet completed it*...
    // Design decision (documented in compositor.rs): instances keyed by
    // transaction are discarded on abort; cross-transaction instances
    // keep already-absorbed constituents (the occurrence happened, even
    // if its transaction later aborted — compensation is the global
    // history's job). This test pins the same-transaction half.
    let w = world();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let pair = w
        .sys
        .define_composite(
            "pair",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(e1)),
                count: 2,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    w.sys
        .define_rule(
            RuleBuilder::new("p")
                .on(pair)
                .coupling(CouplingMode::Deferred)
                .then(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    let db = w.sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "hit", &[Value::Int(1)]).unwrap();
    db.abort(t).unwrap();
    assert_eq!(w.sys.router().total_live_instances(), 0, "abort discards");
    assert_eq!(fired.load(Ordering::SeqCst), 0);
}

#[test]
fn signal_without_transaction_is_temporal_like() {
    let w = world();
    let sig = w.sys.define_signal("ping").unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    w.sys
        .define_rule(
            RuleBuilder::new("on-ping")
                .on(sig)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    w.sys.raise_signal(None, "ping", vec![]).unwrap();
    w.sys.wait_quiescent();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn rule_action_can_query_the_database() {
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let found = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&found);
    w.sys
        .define_rule(
            RuleBuilder::new("census")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |ctx| {
                    let hits = ctx
                        .db
                        .query(ctx.txn, "select p from Probe p where p.v > 0")?;
                    f.store(hits.len(), Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    w.hit(oid, 42);
    assert_eq!(found.load(Ordering::SeqCst), 1);
}

#[test]
fn unknown_event_type_in_rule_is_rejected() {
    let w = world();
    let err = w.sys.define_rule(
        RuleBuilder::new("ghost")
            .on(reach_common::EventTypeId::new(9999))
            .then(|_| Ok(())),
    );
    assert!(err.is_err());
}

#[test]
fn same_tx_composite_with_temporal_constituent_is_rejected() {
    let w = world();
    let temporal = w
        .sys
        .define_absolute_event("t", reach_common::TimePoint::from_secs(1))
        .unwrap();
    let e1 = w
        .sys
        .define_method_event("e1", w.class, "hit", MethodPhase::After)
        .unwrap();
    let err = w.sys.define_composite(
        "bad",
        EventExpr::Sequence(vec![
            EventExpr::Primitive(e1),
            EventExpr::Primitive(temporal),
        ]),
        CompositionScope::SameTransaction,
        Lifespan::Transaction,
        ConsumptionPolicy::Chronicle,
    );
    assert!(err.is_err());
    // Cross-transaction with interval: fine.
    assert!(w
        .sys
        .define_composite(
            "good",
            EventExpr::Sequence(vec![
                EventExpr::Primitive(e1),
                EventExpr::Primitive(temporal)
            ]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(60)),
            ConsumptionPolicy::Chronicle,
        )
        .is_ok());
}

#[test]
fn split_coupling_immediate_condition_detached_action() {
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    let sys2 = Arc::downgrade(&w.sys);
    w.sys
        .define_rule(
            RuleBuilder::new("split")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .action_coupling(CouplingMode::Detached)
                .when(|ctx| Ok(ctx.arg(0).as_int()? > 0))
                .then(move |ctx| {
                    // The action must run in a *detached* (rule) txn.
                    if let Some(sys) = sys2.upgrade() {
                        assert!(sys.engine().is_rule_txn(ctx.txn));
                    }
                    r.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.obj();
    w.hit(oid, 5); // condition true -> detached action
    w.hit(oid, -5); // condition false -> nothing
    w.sys.wait_quiescent();
    assert_eq!(ran.load(Ordering::SeqCst), 1);
    assert_eq!(w.sys.stats().conditions_false, 1);
}

#[test]
fn split_coupling_backwards_pair_is_rejected() {
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let err = w.sys.define_rule(
        RuleBuilder::new("backwards")
            .on(ev)
            .coupling(CouplingMode::Deferred)
            .action_coupling(CouplingMode::Immediate)
            .then(|_| Ok(())),
    );
    assert!(err.is_err(), "action may not precede its condition");
    // Detached condition with deferred action is likewise backwards.
    let err = w.sys.define_rule(
        RuleBuilder::new("backwards2")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .action_coupling(CouplingMode::Deferred)
            .then(|_| Ok(())),
    );
    assert!(err.is_err());
}

#[test]
fn milestones_are_cleaned_up_at_txn_end() {
    let w = world();
    let ms = w.sys.define_milestone_event("deadline").unwrap();
    let db = w.sys.db();
    let t = db.begin().unwrap();
    w.sys
        .set_milestone(t, ms, reach_common::TimePoint::from_secs(100));
    assert_eq!(w.sys.temporal().milestone_count(), 1);
    db.commit(t).unwrap();
    assert_eq!(w.sys.temporal().milestone_count(), 0);
    let _ = TxnId::NULL;
}

#[test]
fn persist_db_internal_event_fires() {
    use std::sync::atomic::AtomicUsize;
    let w = world();
    let ev = w.sys.define_persist_event("on-persist", w.class).unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    w.sys
        .define_rule(
            RuleBuilder::new("persist-audit")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |ctx| {
                    assert!(ctx.receiver().is_some());
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let db = w.sys.db();
    let t = db.begin().unwrap();
    let a = db.create(t, w.class).unwrap();
    let b = db.create(t, w.class).unwrap();
    db.persist(t, a).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 1);
    db.persist(t, b).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 2);
    // Re-persisting the same object raises the event again (it is the
    // persist *call* that is the DB-internal operation).
    db.persist(t, a).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 3);
    db.commit(t).unwrap();
}

#[test]
fn same_receiver_correlation_partitions_instances() {
    use reach_core::Correlation;
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let per_obj = w
        .sys
        .define_composite_correlated(
            "three-hits-same-obj",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
            Correlation::SameReceiver,
        )
        .unwrap();
    let fired = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    {
        let f = Arc::clone(&fired);
        w.sys
            .define_rule(
                RuleBuilder::new("per-obj")
                    .on(per_obj)
                    .coupling(CouplingMode::Detached)
                    .then(move |ctx| {
                        // All constituents concern one object.
                        let receivers: Vec<_> = ctx
                            .event
                            .constituents
                            .iter()
                            .filter_map(|c| c.data.receiver)
                            .collect();
                        assert!(receivers.windows(2).all(|w| w[0] == w[1]));
                        f.lock().push(receivers[0]);
                        Ok(())
                    }),
            )
            .unwrap();
    }
    let a = w.obj();
    let b = w.obj();
    // Interleave: a a b a b — only `a` reaches three hits.
    for oid in [a, a, b, a, b] {
        w.hit(oid, 1);
    }
    w.sys.wait_quiescent();
    assert_eq!(
        *fired.lock(),
        vec![a],
        "only object a completed the pattern"
    );
    // One more hit on b completes b's own instance.
    w.hit(b, 2);
    w.sys.wait_quiescent();
    assert_eq!(*fired.lock(), vec![a, b]);
}

#[test]
fn uncorrelated_composite_mixes_receivers() {
    let w = world();
    let ev = w
        .sys
        .define_method_event("e", w.class, "hit", MethodPhase::After)
        .unwrap();
    let any_three = w
        .sys
        .define_composite(
            "three-hits-any",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
        )
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    {
        let c = Arc::clone(&count);
        w.sys
            .define_rule(
                RuleBuilder::new("any")
                    .on(any_three)
                    .coupling(CouplingMode::Detached)
                    .then(move |_| {
                        c.fetch_add(1, Ordering::SeqCst);
                        Ok(())
                    }),
            )
            .unwrap();
    }
    let a = w.obj();
    let b = w.obj();
    for oid in [a, b, a] {
        w.hit(oid, 1);
    }
    w.sys.wait_quiescent();
    assert_eq!(
        count.load(Ordering::SeqCst),
        1,
        "without correlation, three hits on any objects complete the pattern"
    );
}
