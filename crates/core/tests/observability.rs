//! Integration test for the observability subsystem: run a scaled-down
//! E13 monitoring workload (immediate guard + deferred audit + detached
//! correlated composite) with the metrics registry enabled and assert
//! that every stage of the firing path — sentry, ECA-manager,
//! compositor, engine, subtransaction, WAL force — recorded traversals,
//! and that the counters the report is built from are all live.

use open_oodb::Database;
use reach_common::Stage;
use reach_core::event::MethodPhase;
use reach_core::{
    CompositionScope, ConsumptionPolicy, Correlation, CouplingMode, EventExpr, Lifespan,
    ReachConfig, ReachSystem, RuleBuilder,
};
use reach_object::{Value, ValueType};
use std::sync::Arc;
use std::time::Duration;

const SENSORS: usize = 4;
const EVENTS: usize = 2_000;

#[test]
fn e13_workload_touches_every_firing_path_stage() {
    let db = Database::in_memory().unwrap();
    let (b, report) = db
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .attr("alarms", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let class = b.define().unwrap();
    db.methods().register_fn(report, |ctx| {
        let v = ctx.arg(0);
        ctx.set("value", v.clone())?;
        Ok(v)
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    sys.enable_metrics();

    let db = sys.db();
    let mut sensors = Vec::with_capacity(SENSORS);
    {
        let t = db.begin().unwrap();
        for _ in 0..SENSORS {
            let oid = db.create(t, class).unwrap();
            db.persist(t, oid).unwrap();
            sensors.push(oid);
        }
        db.commit(t).unwrap();
    }

    // The E13 rule set: immediate guard, deferred audit, immediate
    // signal bridge feeding a detached correlated History composite.
    let ev = sys
        .define_method_event("report", class, "report", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("guard")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    sys.define_rule(
        RuleBuilder::new("audit")
            .on(ev)
            .coupling(CouplingMode::Deferred)
            .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
            .then(|_| Ok(())),
    )
    .unwrap();
    let anomaly = sys.define_signal("anomaly").unwrap();
    {
        let weak = Arc::downgrade(&sys);
        sys.define_rule(
            RuleBuilder::new("signal-bridge")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(ctx.arg(0).as_int()? >= 1_000))
                .then(move |ctx| {
                    if let Some(sys) = weak.upgrade() {
                        sys.raise_signal_for(Some(ctx.txn), "anomaly", ctx.receiver(), vec![])?;
                    }
                    Ok(())
                }),
        )
        .unwrap();
    }
    let storm = sys
        .define_composite_correlated(
            "sensor-storm",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(anomaly)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
            Correlation::SameReceiver,
        )
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("storm-alarm")
            .on(storm)
            .coupling(CouplingMode::Detached)
            .then(|_| Ok(())),
    )
    .unwrap();

    // Deterministic telemetry: every 10th reading is an anomaly
    // (>= 1000), spread round-robin over the sensors so the
    // SameReceiver correlation completes composites on each of them.
    for batch in (0..EVENTS).collect::<Vec<_>>().chunks(100) {
        let t = db.begin().unwrap();
        for &i in batch {
            let v = if i % 10 == 0 { 1_500 } else { i as i64 % 900 };
            db.invoke(t, sensors[i % SENSORS], "report", &[Value::Int(v)])
                .unwrap();
        }
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();

    let snap = sys.metrics_snapshot();
    assert!(snap.enabled, "snapshot should report the registry enabled");
    for st in snap.stages.iter() {
        assert!(
            st.count > 0,
            "stage {} recorded nothing — the workload missed part of the firing path",
            st.stage.name()
        );
        assert!(
            st.latency.count > 0 && st.latency.max_ns > 0,
            "stage {} has a count but no latency samples",
            st.stage.name()
        );
        assert!(
            !st.recent.is_empty(),
            "stage {} kept no recent spans",
            st.stage.name()
        );
    }

    // The sentry span ring is bounded even though far more than
    // SPAN_RING_CAPACITY invocations went through it.
    let sentry = snap
        .stages
        .iter()
        .find(|s| s.stage == Stage::Sentry)
        .unwrap();
    assert!(sentry.count as usize > reach_common::obs::SPAN_RING_CAPACITY);
    assert!(sentry.recent.len() <= reach_common::obs::SPAN_RING_CAPACITY);

    // Counters behind each section of the report.
    assert!(snap.events_detected > 0, "no events detected");
    assert!(snap.composites_completed > 0, "no composites completed");
    assert!(snap.instances_created > 0, "no compositor instances");
    assert!(snap.sentry_useful.iter().sum::<u64>() > 0, "no sentry work");
    assert!(snap.immediate_runs > 0, "immediate rules never ran");
    assert!(snap.deferred_runs > 0, "deferred rules never ran");
    assert!(snap.detached_runs > 0, "detached rules never ran");
    assert!(snap.actions_executed > 0, "no actions executed");
    assert_eq!(snap.failures, 0, "rule failures in a clean workload");
    assert!(snap.txn_begins > 0 && snap.txn_commits > 0, "no commits");
    assert_eq!(snap.txn_aborts, 0, "aborts in a clean workload");
    assert!(snap.wal_appends > 0, "no WAL appends");
    assert!(snap.wal_forces > 0, "no WAL forces");
    assert!(snap.pool_hits > 0, "no buffer pool traffic");

    // The human-readable report renders every section.
    let report = snap.render();
    for needle in [
        "firing path",
        "sentry",
        "compositor",
        "subtransaction",
        "wal-force",
        "rule engine",
        "transactions",
        "storage",
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
}

#[test]
fn disabled_registry_records_nothing() {
    let db = Database::in_memory().unwrap();
    let (b, report) = db
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let class = b.define().unwrap();
    db.methods().register_fn(report, |ctx| {
        let v = ctx.arg(0);
        ctx.set("value", v.clone())?;
        Ok(v)
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    // Registry deliberately NOT enabled.

    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, class).unwrap();
    db.persist(t, oid).unwrap();
    db.invoke(t, oid, "report", &[Value::Int(7)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();

    let snap = sys.metrics_snapshot();
    assert!(!snap.enabled);
    // Gated paths stay silent: no spans, no txn/WAL/sentry counts.
    for st in snap.stages.iter() {
        assert_eq!(
            st.count,
            0,
            "stage {} recorded while disabled",
            st.stage.name()
        );
    }
    assert_eq!(snap.txn_commits, 0);
    assert_eq!(snap.wal_forces, 0);
    assert_eq!(snap.sentry_useful.iter().sum::<u64>(), 0);
    // Ungated legacy counters (pool, engine) still work — they pre-date
    // the registry and existing tests read them without enabling it.
    assert!(snap.pool_hits > 0);
}
