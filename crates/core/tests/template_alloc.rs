//! Regression test for the compositor template deep-clone bug: every
//! automaton instantiation (and every sub-completion reset inside
//! window operators) used to deep-clone the full `EventExpr` template
//! via `(**inner).clone()`, so allocation bytes scaled with the
//! *square* of expression depth and with instantiation count times
//! depth. Templates are now shared behind `Arc`, making expression
//! clones allocation-free and instantiation linear in depth.

use reach_common::EventTypeId;
use reach_core::algebra::EventExpr;
use reach_core::compositor::Automaton;
use reach_core::ConsumptionPolicy;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// System allocator wrapper that tallies allocated bytes. Test binaries
/// get exactly one global allocator, so this file holds a single test.
struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `Closure(Closure(...(Prim)))`, `depth` levels deep.
fn nested_closure(depth: usize) -> EventExpr {
    let mut expr = EventExpr::Primitive(EventTypeId::new(1));
    for _ in 0..depth {
        expr = EventExpr::Closure(Arc::new(expr));
    }
    expr
}

fn bytes_of(f: impl FnOnce()) -> usize {
    let before = ALLOCATED.load(Ordering::Relaxed);
    f();
    ALLOCATED.load(Ordering::Relaxed) - before
}

#[test]
fn instantiation_does_not_deep_clone_templates() {
    let shallow = nested_closure(16);
    let deep = nested_closure(64);

    // Cloning an expression shares the Arc-ed operand instead of
    // copying the subtree: no allocation at all for unary chains.
    let cloned = bytes_of(|| {
        let c = deep.clone();
        std::hint::black_box(&c);
    });
    assert_eq!(
        cloned, 0,
        "EventExpr::clone must share, not copy, window-operator operands"
    );

    // Instantiating an automaton allocates the mutable node tree —
    // linear in depth. The old code additionally deep-cloned each
    // level's template (quadratic): depth 64 vs 16 would be ~16x, the
    // shared-template version is ~4x. Assert well under the quadratic
    // signature, with slack for allocator rounding.
    let b16 = bytes_of(|| {
        let a = Automaton::new(&shallow, ConsumptionPolicy::Chronicle);
        std::hint::black_box(&a);
    });
    let b64 = bytes_of(|| {
        let a = Automaton::new(&deep, ConsumptionPolicy::Chronicle);
        std::hint::black_box(&a);
    });
    assert!(b16 > 0 && b64 > 0, "automaton building allocates nodes");
    assert!(
        b64 < b16 * 8,
        "instantiation bytes must scale linearly with depth, not quadratically: depth16={b16}B depth64={b64}B"
    );
}
