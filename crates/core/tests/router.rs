//! Router-level behaviours: multiple event types per detector key,
//! inheritance-aware lookup, registration introspection.

use open_oodb::Database;
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RuleBuilder};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn animals() -> (
    Arc<ReachSystem>,
    reach_common::ClassId,
    reach_common::ClassId,
) {
    let db = Database::in_memory().unwrap();
    let (b, speak) = db
        .define_class("Animal")
        .attr("sounds", ValueType::Int, Value::Int(0))
        .virtual_method("speak");
    let animal = b.define().unwrap();
    db.methods().register_fn(speak, |ctx| {
        let n = ctx.get("sounds")?.as_int()? + 1;
        ctx.set("sounds", Value::Int(n))?;
        Ok(Value::Null)
    });
    let dog = db.define_class("Dog").base(animal).define().unwrap();
    let sys = ReachSystem::new(db, ReachConfig::default());
    (sys, animal, dog)
}

#[test]
fn two_event_types_on_one_method_both_fire() {
    let (sys, animal, _) = animals();
    let ev1 = sys
        .define_method_event("first", animal, "speak", MethodPhase::After)
        .unwrap();
    let ev2 = sys
        .define_method_event("second", animal, "speak", MethodPhase::After)
        .unwrap();
    assert_ne!(ev1, ev2);
    let hits = Arc::new(AtomicUsize::new(0));
    for ev in [ev1, ev2] {
        let h = Arc::clone(&hits);
        sys.define_rule(
            RuleBuilder::new(&format!("r-{ev}"))
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    h.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, animal).unwrap();
    db.invoke(t, oid, "speak", &[]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(
        hits.load(Ordering::SeqCst),
        2,
        "one invocation delivers to both registered event types"
    );
}

#[test]
fn base_and_subclass_event_types_both_fire_for_subclass_receiver() {
    let (sys, animal, dog) = animals();
    let base_ev = sys
        .define_method_event("animal-speak", animal, "speak", MethodPhase::After)
        .unwrap();
    let dog_ev = sys
        .define_method_event("dog-speak", dog, "speak", MethodPhase::After)
        .unwrap();
    let base_hits = Arc::new(AtomicUsize::new(0));
    let dog_hits = Arc::new(AtomicUsize::new(0));
    for (ev, counter) in [(base_ev, &base_hits), (dog_ev, &dog_hits)] {
        let c = Arc::clone(counter);
        sys.define_rule(
            RuleBuilder::new(&format!("r-{ev}"))
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let db = sys.db();
    let t = db.begin().unwrap();
    let rex = db.create(t, dog).unwrap();
    let generic = db.create(t, animal).unwrap();
    // A dog speaking raises both the dog-specific and the inherited
    // base-class event type.
    db.invoke(t, rex, "speak", &[]).unwrap();
    assert_eq!(base_hits.load(Ordering::SeqCst), 1);
    assert_eq!(dog_hits.load(Ordering::SeqCst), 1);
    // A generic animal raises only the base event.
    db.invoke(t, generic, "speak", &[]).unwrap();
    assert_eq!(base_hits.load(Ordering::SeqCst), 2);
    assert_eq!(dog_hits.load(Ordering::SeqCst), 1);
    db.commit(t).unwrap();
}

#[test]
fn event_lookup_by_name_and_manager_introspection() {
    let (sys, animal, _) = animals();
    let ev = sys
        .define_method_event("named-event", animal, "speak", MethodPhase::Before)
        .unwrap();
    assert_eq!(sys.event("named-event").unwrap(), ev);
    assert!(sys.event("ghost").is_err());
    let mgr = sys.manager(ev).unwrap();
    assert_eq!(mgr.name, "named-event");
    assert_eq!(mgr.rule_count(), 0);
    assert!(mgr.subscribers().is_empty());
}

#[test]
fn before_and_after_phases_are_distinct_event_types() {
    let (sys, animal, _) = animals();
    let before = sys
        .define_method_event("b", animal, "speak", MethodPhase::Before)
        .unwrap();
    let after = sys
        .define_method_event("a", animal, "speak", MethodPhase::After)
        .unwrap();
    let order = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    for (ev, tag) in [(before, "before"), (after, "after")] {
        let o = Arc::clone(&order);
        sys.define_rule(
            RuleBuilder::new(tag)
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    o.lock().push(tag);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, animal).unwrap();
    db.invoke(t, oid, "speak", &[]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(*order.lock(), vec!["before", "after"]);
}

#[test]
fn rule_info_reports_split_coupling() {
    let (sys, animal, _) = animals();
    let ev = sys
        .define_method_event("e", animal, "speak", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("split")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .action_coupling(CouplingMode::Detached)
            .then(|_| Ok(())),
    )
    .unwrap();
    let rules = sys.list_rules();
    assert_eq!(rules.len(), 1);
    assert_eq!(rules[0].name, "split");
    assert_eq!(rules[0].coupling, CouplingMode::Immediate);
    assert_eq!(rules[0].action_coupling, Some(CouplingMode::Detached));
    assert_eq!(rules[0].event_name, "e");
}
