//! Concurrency-sensitive behaviours: the exclusive mode's lock
//! hand-over, 2PL blocking between application transactions, deadlock
//! surfacing, and parallel detached rule storms.

use crossbeam::channel::bounded;
use open_oodb::Database;
use reach_common::{ClassId, ObjectId, TxnId};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RuleBuilder};
use reach_object::{Value, ValueType};
use reach_txn::LockMode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn world() -> (Arc<ReachSystem>, ClassId) {
    let db = Database::in_memory().unwrap();
    let (b, poke) = db
        .define_class("Res")
        .attr("v", ValueType::Int, Value::Int(0))
        .virtual_method("poke");
    let class = b.define().unwrap();
    db.methods().register_fn(poke, |ctx| {
        ctx.set("v", ctx.arg(0))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    (sys, class)
}

fn persistent_obj(sys: &ReachSystem, class: ClassId) -> ObjectId {
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, class).unwrap();
    db.persist(t, oid).unwrap();
    db.commit(t).unwrap();
    oid
}

#[test]
fn exclusive_mode_receives_the_triggers_locks_on_abort() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    // The contingency action reports its transaction id and then waits
    // until the test has aborted the trigger and inspected the locks.
    let (txn_tx, txn_rx) = bounded::<TxnId>(1);
    let (go_tx, go_rx) = bounded::<()>(1);
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("contingency")
            .on(ev)
            .coupling(CouplingMode::ExclusiveCausallyDependent)
            .then(move |ctx| {
                let _ = txn_tx.send(ctx.txn);
                let _ = go_rx.recv_timeout(Duration::from_secs(5));
                Ok(())
            }),
    )
    .unwrap();
    let db = sys.db();
    let trigger = db.begin().unwrap();
    // The invoke takes an exclusive lock on `oid` for the trigger.
    db.invoke(trigger, oid, "poke", &[Value::Int(1)]).unwrap();
    let lm = db.txn_manager().locks();
    assert_eq!(lm.held_mode(trigger, oid), Some(LockMode::Exclusive));
    let rule_txn = txn_rx.recv_timeout(Duration::from_secs(5)).unwrap();
    // Abort the trigger: §4's resource transfer — its locks move to the
    // contingency transaction *before* they would have been released.
    db.abort(trigger).unwrap();
    assert_eq!(lm.held_mode(trigger, oid), None);
    assert_eq!(
        lm.held_mode(rule_txn, oid),
        Some(LockMode::Exclusive),
        "the contingency transaction inherited the trigger's lock"
    );
    // Let the contingency finish; its IfAborted dependency is satisfied.
    go_tx.send(()).unwrap();
    sys.wait_quiescent();
    assert_eq!(lm.held_mode(rule_txn, oid), None, "released at commit");
    assert_eq!(sys.stats().skipped_dependency, 0);
}

#[test]
fn two_pl_blocks_conflicting_application_transactions() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let db = sys.db();
    let t1 = db.begin().unwrap();
    db.invoke(t1, oid, "poke", &[Value::Int(1)]).unwrap(); // X lock held
    let db2 = Arc::clone(db);
    let h = std::thread::spawn(move || {
        let t2 = db2.begin().unwrap();
        // Blocks until t1 commits, then sees t1's write.
        let v = db2.get_attr(t2, oid, "v").unwrap();
        db2.commit(t2).unwrap();
        v
    });
    std::thread::sleep(Duration::from_millis(50));
    db.invoke(t1, oid, "poke", &[Value::Int(42)]).unwrap();
    db.commit(t1).unwrap();
    assert_eq!(
        h.join().unwrap(),
        Value::Int(42),
        "strict 2PL: reader saw committed state"
    );
}

#[test]
fn deadlock_between_application_transactions_surfaces() {
    let (sys, class) = world();
    let a = persistent_obj(&sys, class);
    let b = persistent_obj(&sys, class);
    let db = sys.db();
    let t1 = db.begin().unwrap();
    db.invoke(t1, a, "poke", &[Value::Int(1)]).unwrap();
    let db2 = Arc::clone(db);
    let h = std::thread::spawn(move || {
        let t2 = db2.begin().unwrap();
        db2.invoke(t2, b, "poke", &[Value::Int(2)]).unwrap();
        // t2 now waits for a (held by t1)...
        let r = db2.invoke(t2, a, "poke", &[Value::Int(3)]);
        match r {
            Ok(_) => {
                db2.commit(t2).unwrap();
                Ok(())
            }
            Err(e) => {
                let _ = db2.abort(t2);
                Err(e)
            }
        }
    });
    std::thread::sleep(Duration::from_millis(50));
    // ... and t1 requesting b closes the cycle: one of them is a victim.
    let r1 = db.invoke(t1, b, "poke", &[Value::Int(4)]);
    let r2 = h.join().unwrap();
    let deadlocked = r1.is_err() || r2.is_err();
    assert!(
        deadlocked,
        "one transaction must be chosen as deadlock victim"
    );
    if r1.is_ok() {
        db.commit(t1).unwrap();
    } else {
        let _ = db.abort(t1);
    }
}

#[test]
fn detached_rule_storm_settles() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    for i in 0..4 {
        let c = Arc::clone(&count);
        sys.define_rule(
            RuleBuilder::new(&format!("d{i}"))
                .on(ev)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let db = sys.db();
    for round in 0..25 {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "poke", &[Value::Int(round)]).unwrap();
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();
    assert_eq!(count.load(Ordering::SeqCst), 100);
    assert_eq!(sys.stats().detached_runs, 100);
    assert_eq!(sys.stats().failures, 0);
}

#[test]
fn concurrent_transactions_feeding_one_cross_tx_composite() {
    use reach_core::{CompositionScope, ConsumptionPolicy, EventExpr, Lifespan};
    let (sys, class) = world();
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    let comp = sys
        .define_composite(
            "ten",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 10,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Cumulative,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    sys.define_rule(
        RuleBuilder::new("on-ten")
            .on(comp)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    // 4 threads × 10 events on private objects = 40 primitives = 4 firings.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let sys = Arc::clone(&sys);
        handles.push(std::thread::spawn(move || {
            let db = sys.db();
            let t = db.begin().unwrap();
            let oid = db.create(t, class).unwrap();
            db.persist(t, oid).unwrap();
            db.commit(t).unwrap();
            for i in 0..10 {
                let t = db.begin().unwrap();
                db.invoke(t, oid, "poke", &[Value::Int(i)]).unwrap();
                db.commit(t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    sys.wait_quiescent();
    assert_eq!(fired.load(Ordering::SeqCst), 4, "40 primitives = 4 tens");
}
