//! Real-time mode: the wall clock drives temporal events through the
//! background ticker thread (the deployment configuration; everything
//! else in the suite uses the deterministic virtual clock).

use open_oodb::Database;
use reach_common::TimePoint;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RuleBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn ticker_fires_periodic_events_from_the_wall_clock() {
    let db = Database::in_memory_realtime().unwrap();
    assert!(!db.clock().is_virtual());
    let sys = ReachSystem::new(db, ReachConfig::default());
    let ev = sys
        .define_periodic_event(
            "heartbeat",
            TimePoint::from_millis(20),
            Duration::from_millis(20),
        )
        .unwrap();
    let beats = Arc::new(AtomicUsize::new(0));
    let b = Arc::clone(&beats);
    sys.define_rule(
        RuleBuilder::new("beat")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                b.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    sys.start_ticker(Duration::from_millis(10));
    std::thread::sleep(Duration::from_millis(300));
    sys.stop_ticker();
    sys.wait_quiescent();
    let n = beats.load(Ordering::SeqCst);
    // 300ms / 20ms period = ~15; demand a generous lower bound so the
    // test survives slow CI machines.
    assert!(n >= 5, "expected at least 5 heartbeats, got {n}");
    // After stop_ticker, no more events accumulate.
    std::thread::sleep(Duration::from_millis(60));
    let after = beats.load(Ordering::SeqCst);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(beats.load(Ordering::SeqCst), after, "ticker stopped");
}

#[test]
fn reach_system_in_memory_convenience() {
    let sys = ReachSystem::in_memory().unwrap();
    assert_eq!(sys.rule_count(), 0);
    assert!(sys.db().clock().is_virtual());
    // Trace defaults to disabled: logging closures never run.
    sys.router().trace.log(|| panic!("must not be evaluated"));
    assert!(sys.router().trace.take().is_empty());
    sys.router().trace.enable();
    sys.router().trace.log(|| "line".to_string());
    sys.router().trace.disable();
    sys.router().trace.log(|| panic!("disabled again"));
    assert_eq!(sys.router().trace.take(), vec!["line".to_string()]);
}

#[test]
fn milestone_on_the_wall_clock() {
    let db = Database::in_memory_realtime().unwrap();
    let sys = ReachSystem::new(db, ReachConfig::default());
    let ms = sys.define_milestone_event("deadline").unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    sys.define_rule(
        RuleBuilder::new("contingency")
            .on(ms)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    let deadline = db.clock().now().plus(Duration::from_millis(50));
    sys.set_milestone(t, ms, deadline);
    sys.start_ticker(Duration::from_millis(10));
    std::thread::sleep(Duration::from_millis(200));
    sys.stop_ticker();
    sys.wait_quiescent();
    assert_eq!(
        fired.load(Ordering::SeqCst),
        1,
        "missed deadline fired once"
    );
    db.commit(t).unwrap();
}
