//! System tests of the assembled REACH active OODBMS: detection →
//! composition → rule firing across coupling modes, consumption
//! policies, lifespans and the transaction model.

use open_oodb::Database;
use reach_common::ClassId;
use reach_common::{TimePoint, TxnId};
use reach_core::eca::CompositionMode;
use reach_core::event::{FlowPoint, MethodPhase};
use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, ExecutionStrategy, Lifespan,
    ReachConfig, ReachSystem, RuleBuilder,
};
use reach_object::{Value, ValueType};
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A world with a `Sensor` class whose `report(v)` method stores the
/// value; the standard fixture for these tests.
struct World {
    sys: Arc<ReachSystem>,
    sensor: ClassId,
}

fn world() -> World {
    world_with(ReachConfig::default())
}

fn world_with(config: ReachConfig) -> World {
    let db = Database::in_memory().unwrap();
    let (b, report) = db
        .define_class("Sensor")
        .attr("value", ValueType::Int, Value::Int(0))
        .attr("alarms", ValueType::Int, Value::Int(0))
        .virtual_method("report");
    let sensor = b.define().unwrap();
    db.methods().register_fn(report, |ctx| {
        let v = ctx.arg(0);
        ctx.set("value", v.clone())?;
        Ok(v)
    });
    let sys = ReachSystem::new(db, config);
    World { sys, sensor }
}

impl World {
    /// Create a persistent sensor in its own committed transaction.
    fn sensor_obj(&self) -> reach_common::ObjectId {
        let db = self.sys.db();
        let t = db.begin().unwrap();
        let oid = db.create(t, self.sensor).unwrap();
        db.persist(t, oid).unwrap();
        db.commit(t).unwrap();
        oid
    }
}

#[test]
fn immediate_rule_fires_synchronously_within_transaction() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    sys.define_rule(
        RuleBuilder::new("count-reports")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? > 10))
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(5)]).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 0, "condition filters");
    db.invoke(t, oid, "report", &[Value::Int(50)]).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 1, "fires inline");
    db.commit(t).unwrap();
    assert_eq!(sys.stats().immediate_runs, 2);
}

#[test]
fn immediate_rule_action_can_update_objects_in_subtransaction() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    // Action: bump the alarms counter on the same sensor.
    sys.define_rule(
        RuleBuilder::new("alarm")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? > 100))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(500)]).unwrap();
    assert_eq!(db.get_attr(t, oid, "alarms").unwrap(), Value::Int(1));
    db.commit(t).unwrap();
}

#[test]
fn failing_immediate_rule_aborts_the_triggering_transaction() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("veto")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? < 0))
            .then(|_| {
                Err(reach_common::ReachError::RuleEvaluation(
                    "negative readings are forbidden".into(),
                ))
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(-1)]).unwrap();
    // The rule aborted the whole transaction.
    assert!(!db.txn_manager().is_active(t));
    assert!(db.invoke(t, oid, "report", &[Value::Int(1)]).is_err());
    assert_eq!(sys.stats().triggering_aborts, 1);
    // And the sensor's value write was rolled back.
    let t2 = db.begin().unwrap();
    assert_eq!(db.get_attr(t2, oid, "value").unwrap(), Value::Int(0));
    db.commit(t2).unwrap();
}

#[test]
fn deferred_rules_run_at_pre_commit_in_priority_order() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let order: Arc<reach_common::sync::Mutex<Vec<&'static str>>> =
        Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    for (name, prio) in [("low", 1), ("high", 9), ("mid", 5)] {
        let order = Arc::clone(&order);
        sys.define_rule(
            RuleBuilder::new(name)
                .on(ev)
                .coupling(CouplingMode::Deferred)
                .priority(prio)
                .then(move |_| {
                    order.lock().push(name);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    assert!(order.lock().is_empty(), "nothing fires before commit");
    db.commit(t).unwrap();
    assert_eq!(*order.lock(), vec!["high", "mid", "low"]);
    assert_eq!(sys.stats().deferred_runs, 3);
}

#[test]
fn deferred_rules_do_not_run_on_abort() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    sys.define_rule(
        RuleBuilder::new("deferred")
            .on(ev)
            .coupling(CouplingMode::Deferred)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.abort(t).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 0);
}

#[test]
fn detached_rule_runs_in_independent_transaction() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let seen = Arc::new(AtomicI64::new(-1));
    let s = Arc::clone(&seen);
    sys.define_rule(
        RuleBuilder::new("audit")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |ctx| {
                s.store(ctx.arg(0).as_int()?, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(7)]).unwrap();
    // The detached rule runs even though the trigger later aborts.
    db.abort(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(seen.load(Ordering::SeqCst), 7);
    assert_eq!(sys.stats().detached_runs, 1);
}

#[test]
fn detached_rule_rejects_transient_receiver() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("audit")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(|_| Ok(())),
    )
    .unwrap();
    // Transient (never persisted) sensor.
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, w.sensor).unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(sys.stats().detached_runs, 0);
    assert_eq!(sys.stats().skipped_transient, 1, "§3.2 enforcement");
}

#[test]
fn parallel_causally_dependent_commits_iff_trigger_commits() {
    let run = |abort_trigger: bool| -> u64 {
        let w = world();
        let sys = &w.sys;
        let ev = sys
            .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
            .unwrap();
        let effect = Arc::new(AtomicUsize::new(0));
        let e = Arc::clone(&effect);
        sys.define_rule(
            RuleBuilder::new("par-cd")
                .on(ev)
                .coupling(CouplingMode::ParallelCausallyDependent)
                .then(move |_| {
                    e.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
        let oid = w.sensor_obj();
        let db = sys.db();
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
        if abort_trigger {
            db.abort(t).unwrap();
        } else {
            db.commit(t).unwrap();
        }
        sys.wait_quiescent();
        // The rule ran either way (parallel), but committed only if the
        // trigger did.
        assert_eq!(sys.stats().detached_runs, 1);
        sys.stats().skipped_dependency
    };
    assert_eq!(run(false), 0, "trigger committed -> rule commits");
    assert_eq!(run(true), 1, "trigger aborted -> rule must abort");
}

#[test]
fn sequential_causally_dependent_starts_after_commit_only() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let trigger_active_during_rule = Arc::new(reach_common::sync::Mutex::new(None::<bool>));
    let flag = Arc::clone(&trigger_active_during_rule);
    let sys2: Arc<ReachSystem> = Arc::clone(sys);
    let trigger_holder: Arc<reach_common::sync::Mutex<Option<TxnId>>> =
        Arc::new(reach_common::sync::Mutex::new(None));
    let th = Arc::clone(&trigger_holder);
    sys.define_rule(
        RuleBuilder::new("seq-cd")
            .on(ev)
            .coupling(CouplingMode::SequentialCausallyDependent)
            .then(move |_| {
                let trigger = th.lock().unwrap();
                *flag.lock() = Some(sys2.db().txn_manager().is_active(trigger));
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    *trigger_holder.lock() = Some(t);
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    db.commit(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(
        *trigger_active_during_rule.lock(),
        Some(false),
        "rule may only start after the trigger finished"
    );
}

#[test]
fn sequential_causally_dependent_skips_on_abort() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let ran = Arc::new(AtomicUsize::new(0));
    let r = Arc::clone(&ran);
    sys.define_rule(
        RuleBuilder::new("seq-cd")
            .on(ev)
            .coupling(CouplingMode::SequentialCausallyDependent)
            .then(move |_| {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.abort(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(ran.load(Ordering::SeqCst), 0, "never starts");
    assert_eq!(sys.stats().skipped_dependency, 1);
}

#[test]
fn exclusive_causally_dependent_is_the_contingency_path() {
    let run = |abort_trigger: bool| -> u64 {
        let w = world();
        let sys = &w.sys;
        let ev = sys
            .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
            .unwrap();
        sys.define_rule(
            RuleBuilder::new("contingency")
                .on(ev)
                .coupling(CouplingMode::ExclusiveCausallyDependent)
                .then(|_| Ok(())),
        )
        .unwrap();
        let oid = w.sensor_obj();
        let db = sys.db();
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
        if abort_trigger {
            db.abort(t).unwrap();
        } else {
            db.commit(t).unwrap();
        }
        sys.wait_quiescent();
        sys.stats().skipped_dependency
    };
    assert_eq!(run(true), 0, "trigger aborted -> contingency commits");
    assert_eq!(run(false), 1, "trigger committed -> contingency aborts");
}

#[test]
fn table1_rejections_at_registration() {
    let w = world();
    let sys = &w.sys;
    let m = sys
        .define_method_event("m", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let temporal = sys
        .define_absolute_event("t", TimePoint::from_secs(60))
        .unwrap();
    let comp1 = sys
        .define_composite(
            "c1",
            EventExpr::Sequence(vec![EventExpr::Primitive(m), EventExpr::Primitive(m)]),
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let comp_n = sys
        .define_composite(
            "cn",
            EventExpr::Conjunction(vec![EventExpr::Primitive(m), EventExpr::Primitive(m)]),
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(60)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let try_rule =
        |ev, mode| sys.define_rule(RuleBuilder::new("r").on(ev).coupling(mode).then(|_| Ok(())));
    // Temporal: only detached allowed.
    assert!(try_rule(temporal, CouplingMode::Immediate).is_err());
    assert!(try_rule(temporal, CouplingMode::Deferred).is_err());
    assert!(try_rule(temporal, CouplingMode::ParallelCausallyDependent).is_err());
    assert!(try_rule(temporal, CouplingMode::Detached).is_ok());
    // Composite single-tx: no immediate.
    assert!(try_rule(comp1, CouplingMode::Immediate).is_err());
    assert!(try_rule(comp1, CouplingMode::Deferred).is_ok());
    // Composite multi-tx: no immediate, no deferred.
    assert!(try_rule(comp_n, CouplingMode::Immediate).is_err());
    assert!(try_rule(comp_n, CouplingMode::Deferred).is_err());
    assert!(try_rule(comp_n, CouplingMode::ExclusiveCausallyDependent).is_ok());
}

#[test]
fn composite_sequence_fires_deferred_rule_in_same_transaction() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let twice = sys
        .define_composite(
            "report-twice",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 2,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    sys.define_rule(
        RuleBuilder::new("on-twice")
            .on(twice)
            .coupling(CouplingMode::Deferred)
            .then(move |ctx| {
                assert_eq!(ctx.event.constituents.len(), 2);
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    // One report only: composite never completes, instance GC'd at EOT.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    assert_eq!(sys.router().total_live_instances(), 0, "§3.3 GC at EOT");
    // Two reports: fires once, deferred, inside the commit.
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.invoke(t, oid, "report", &[Value::Int(2)]).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0, "deferred until commit");
    db.commit(t).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn cross_transaction_composite_with_detached_rule() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let comp = sys
        .define_composite(
            "two-reports-any-tx",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 2,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    sys.define_rule(
        RuleBuilder::new("cross")
            .on(comp)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    for i in 0..2 {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(i)]).unwrap();
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
}

#[test]
fn state_change_events_fire_rules() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_state_event("value-changed", w.sensor, "value")
        .unwrap();
    let seen = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    let s = Arc::clone(&seen);
    sys.define_rule(
        RuleBuilder::new("watch-value")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(move |ctx| {
                s.lock().push((ctx.old_value(), ctx.new_value()));
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.set_attr(t, oid, "value", Value::Int(33)).unwrap();
    db.commit(t).unwrap();
    let seen = seen.lock();
    assert_eq!(*seen, vec![(Value::Int(0), Value::Int(33))]);
}

#[test]
fn lifecycle_destructor_event_fires() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_lifecycle_event("sensor-deleted", w.sensor, true)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    sys.define_rule(
        RuleBuilder::new("on-delete")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.delete_object(t, oid).unwrap();
    db.commit(t).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn flow_events_observe_transaction_lifecycle() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_flow_event("on-commit", FlowPoint::Commit)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    sys.define_rule(
        RuleBuilder::new("commit-audit")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.commit(t).unwrap();
    sys.wait_quiescent();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn temporal_events_fire_on_virtual_time() {
    let w = world();
    let sys = &w.sys;
    let at = TimePoint::from_secs(10);
    let ev = sys.define_absolute_event("at-ten", at).unwrap();
    let periodic = sys
        .define_periodic_event(
            "every-five",
            TimePoint::from_secs(5),
            Duration::from_secs(5),
        )
        .unwrap();
    let abs_count = Arc::new(AtomicUsize::new(0));
    let per_count = Arc::new(AtomicUsize::new(0));
    for (ev, count) in [(ev, &abs_count), (periodic, &per_count)] {
        let c = Arc::clone(count);
        sys.define_rule(
            RuleBuilder::new("tick")
                .on(ev)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    }
    sys.advance_time(Duration::from_secs(4)); // t=4: nothing
    sys.wait_quiescent();
    assert_eq!(abs_count.load(Ordering::SeqCst), 0);
    assert_eq!(per_count.load(Ordering::SeqCst), 0);
    sys.advance_time(Duration::from_secs(8)); // t=12: abs once, periodic at 5,10
    sys.wait_quiescent();
    assert_eq!(abs_count.load(Ordering::SeqCst), 1);
    assert_eq!(per_count.load(Ordering::SeqCst), 2);
    sys.advance_time(Duration::from_secs(10)); // t=22: abs stays 1, periodic 15,20
    sys.wait_quiescent();
    assert_eq!(abs_count.load(Ordering::SeqCst), 1);
    assert_eq!(per_count.load(Ordering::SeqCst), 4);
}

#[test]
fn relative_temporal_event_fires_after_anchor() {
    let w = world();
    let sys = &w.sys;
    let anchor = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let rel = sys
        .define_relative_event("5s-after-report", anchor, Duration::from_secs(5))
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    sys.define_rule(
        RuleBuilder::new("follow-up")
            .on(rel)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    sys.advance_time(Duration::from_secs(3));
    sys.wait_quiescent();
    assert_eq!(count.load(Ordering::SeqCst), 0, "too early");
    sys.advance_time(Duration::from_secs(3));
    sys.wait_quiescent();
    assert_eq!(count.load(Ordering::SeqCst), 1);
}

#[test]
fn milestone_contingency_fires_on_missed_deadline() {
    let w = world();
    let sys = &w.sys;
    let ms = sys.define_milestone_event("halfway").unwrap();
    let contingency = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&contingency);
    sys.define_rule(
        RuleBuilder::new("contingency-plan")
            .on(ms)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let db = sys.db();
    // Transaction A reaches its milestone in time: no contingency.
    let ta = db.begin().unwrap();
    sys.set_milestone(ta, ms, TimePoint::from_secs(10));
    sys.advance_time(Duration::from_secs(5));
    sys.reach_milestone(ta, ms);
    sys.advance_time(Duration::from_secs(10));
    sys.wait_quiescent();
    assert_eq!(contingency.load(Ordering::SeqCst), 0);
    db.commit(ta).unwrap();
    // Transaction B misses it: contingency fires.
    let tb = db.begin().unwrap();
    sys.set_milestone(tb, ms, TimePoint::from_secs(20));
    sys.advance_time(Duration::from_secs(30));
    sys.wait_quiescent();
    assert_eq!(contingency.load(Ordering::SeqCst), 1);
    db.commit(tb).unwrap();
}

#[test]
fn user_signals_fire_rules() {
    let w = world();
    let sys = &w.sys;
    let ev = sys.define_signal("operator-alert").unwrap();
    let seen = Arc::new(reach_common::sync::Mutex::new(Vec::new()));
    let s = Arc::clone(&seen);
    sys.define_rule(
        RuleBuilder::new("on-alert")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(move |ctx| {
                s.lock().push(ctx.arg(0).clone());
                Ok(())
            }),
    )
    .unwrap();
    let db = sys.db();
    let t = db.begin().unwrap();
    sys.raise_signal(Some(t), "operator-alert", vec![Value::Str("fire".into())])
        .unwrap();
    db.commit(t).unwrap();
    assert_eq!(*seen.lock(), vec![Value::Str("fire".into())]);
}

#[test]
fn rule_cascades_are_detected_like_any_other_event() {
    let w = world();
    let sys = &w.sys;
    let report_ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let alarm_ev = sys
        .define_state_event("alarms-changed", w.sensor, "alarms")
        .unwrap();
    // Rule 1: big reading bumps `alarms` (immediate).
    sys.define_rule(
        RuleBuilder::new("raise-alarm")
            .on(report_ev)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.arg(0).as_int()? > 100))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))
            }),
    )
    .unwrap();
    // Rule 2: alarms-changed (raised *by rule 1*) resets the value.
    let cascaded = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&cascaded);
    sys.define_rule(
        RuleBuilder::new("cascade")
            .on(alarm_ev)
            .coupling(CouplingMode::Immediate)
            .then(move |_| {
                c.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(500)]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(
        cascaded.load(Ordering::SeqCst),
        1,
        "rule-raised event detected"
    );
}

#[test]
fn rule_enable_disable_and_drop() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&count);
    let rid = sys
        .define_rule(
            RuleBuilder::new("toggle")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let fire = || {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
        db.commit(t).unwrap();
    };
    fire();
    assert_eq!(count.load(Ordering::SeqCst), 1);
    sys.set_rule_enabled(rid, false).unwrap();
    fire();
    assert_eq!(count.load(Ordering::SeqCst), 1);
    sys.set_rule_enabled(rid, true).unwrap();
    fire();
    assert_eq!(count.load(Ordering::SeqCst), 2);
    sys.drop_rule(rid).unwrap();
    fire();
    assert_eq!(count.load(Ordering::SeqCst), 2);
    assert!(sys.drop_rule(rid).is_err());
}

#[test]
fn parallel_composition_mode_reaches_the_same_result() {
    let w = world_with(ReachConfig {
        composition: CompositionMode::Parallel,
        strategy: ExecutionStrategy::Serial,
        ..ReachConfig::default()
    });
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let comp = sys
        .define_composite(
            "three",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 3,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = Arc::clone(&fired);
    sys.define_rule(
        RuleBuilder::new("on-three")
            .on(comp)
            .coupling(CouplingMode::Detached)
            .then(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    for round in 0..9 {
        let t = db.begin().unwrap();
        db.invoke(t, oid, "report", &[Value::Int(round)]).unwrap();
        db.commit(t).unwrap();
    }
    sys.wait_quiescent();
    assert_eq!(fired.load(Ordering::SeqCst), 3, "9 reports = 3 triples");
}

#[test]
fn parallel_immediate_strategy_executes_all_sibling_rules() {
    let w = world_with(ReachConfig {
        composition: CompositionMode::Synchronous,
        strategy: ExecutionStrategy::Parallel,
        ..ReachConfig::default()
    });
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let count = Arc::new(AtomicUsize::new(0));
    for i in 0..6 {
        let c = Arc::clone(&count);
        sys.define_rule(
            RuleBuilder::new(&format!("sib-{i}"))
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    c.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
    }
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    assert_eq!(count.load(Ordering::SeqCst), 6);
    assert_eq!(sys.stats().immediate_runs, 6);
}

#[test]
fn histories_are_local_then_collected_globally() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.invoke(t, oid, "report", &[Value::Int(2)]).unwrap();
    let mgr = sys.manager(ev).unwrap();
    assert_eq!(mgr.history.len(), 2, "local history holds the events");
    let global_before = sys.global_history().len();
    db.commit(t).unwrap();
    // After EOT the collector moved them to the global history.
    assert_eq!(mgr.history.len(), 0);
    assert!(sys.global_history().len() >= global_before + 2);
}

#[test]
fn figure2_trace_records_the_message_flow() {
    let w = world();
    let sys = &w.sys;
    let ev = sys
        .define_method_event("after-report", w.sensor, "report", MethodPhase::After)
        .unwrap();
    let _comp = sys
        .define_composite(
            "pair",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 2,
            },
            CompositionScope::SameTransaction,
            Lifespan::Transaction,
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("r")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(|_| Ok(())),
    )
    .unwrap();
    sys.router().trace.enable();
    let oid = w.sensor_obj();
    let db = sys.db();
    let t = db.begin().unwrap();
    db.invoke(t, oid, "report", &[Value::Int(1)]).unwrap();
    db.commit(t).unwrap();
    let trace = sys.router().trace.take().join("\n");
    assert!(trace.contains("method-event detected"), "{trace}");
    assert!(trace.contains("creates Event object"), "{trace}");
    assert!(trace.contains("fires 1 rule"), "{trace}");
    assert!(
        trace.contains("propagates -> composite ECA-manager"),
        "{trace}"
    );
}
