//! Differential testing of the compositor against the naive reference
//! interpreter ([`reach_core::oracle`]).
//!
//! Proptest generates random algebra expressions and random event
//! streams; both implementations consume the identical stream and must
//! produce the identical firing sequence — per arrival *and* at window
//! close — for every SNOOP consumption policy. A final multi-threaded
//! test feeds one shared compositor from four perturbed threads (one
//! transaction window each) and checks every window against the
//! single-threaded oracle.

use proptest::prelude::*;
use reach_common::sync::sched;
use reach_common::{announce_seed, seed_from_env, EventTypeId, TimePoint, Timestamp, TxnId};
use reach_core::compositor::Compositor;
use reach_core::event::{EventData, EventOccurrence};
use reach_core::oracle::OracleCompositor;
use reach_core::{CompositionScope, ConsumptionPolicy, EventExpr, Lifespan};
use std::sync::Arc;

fn occ(ty: u64, seq: u64, txn: u64) -> Arc<EventOccurrence> {
    Arc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::from_millis(seq),
        txn: Some(TxnId::new(txn)),
        top_txn: Some(TxnId::new(txn)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

/// Firings as constituent-seq lists, the comparable form.
fn as_seqs(constituents: &[Arc<EventOccurrence>]) -> Vec<u64> {
    constituents.iter().map(|o| o.seq.raw()).collect()
}

/// Random valid algebra expression over event types 1..=4: combinators
/// get 2–3 parts, history counts stay small, two levels of nesting.
fn expr_strategy() -> BoxedStrategy<EventExpr> {
    let leaf = (1u64..5).prop_map(|n| EventExpr::Primitive(EventTypeId::new(n)));
    leaf.prop_recursive(2, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Sequence),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Conjunction),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(EventExpr::Disjunction),
            inner.clone().prop_map(|e| EventExpr::Negation(Arc::new(e))),
            inner.clone().prop_map(|e| EventExpr::Closure(Arc::new(e))),
            (inner, 1u32..4).prop_map(|(e, count)| EventExpr::History {
                expr: Arc::new(e),
                count
            }),
        ]
    })
}

/// Feed `stream` through the real compositor and the oracle in
/// lock-step, panicking at the first divergence.
fn check_differential(expr: &EventExpr, policy: ConsumptionPolicy, stream: &[u64], txn: u64) {
    let real = Compositor::new(
        expr.clone(),
        CompositionScope::SameTransaction,
        Lifespan::Transaction,
        policy,
    );
    let mut oracle = OracleCompositor::new(expr.clone(), policy);
    for (i, ty) in stream.iter().enumerate() {
        let o = occ(*ty, i as u64 + 1, txn);
        let real_fired: Vec<Vec<u64>> = real
            .feed(&o)
            .iter()
            .map(|c| as_seqs(&c.constituents))
            .collect();
        let oracle_fired: Vec<Vec<u64>> = oracle.feed(&o).iter().map(|f| as_seqs(f)).collect();
        assert_eq!(
            real_fired, oracle_fired,
            "{policy:?}: divergence at arrival {i} (type {ty}) of {stream:?}\nexpr: {expr:?}"
        );
    }
    let real_close: Vec<Vec<u64>> = real
        .close_txn(TxnId::new(txn))
        .iter()
        .map(|c| as_seqs(&c.constituents))
        .collect();
    let oracle_close: Vec<Vec<u64>> = oracle.close().iter().map(|f| as_seqs(f)).collect();
    assert_eq!(
        real_close, oracle_close,
        "{policy:?}: window-close divergence for {stream:?}\nexpr: {expr:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn recent_matches_oracle(
        expr in expr_strategy(),
        stream in proptest::collection::vec(1u64..5, 0..40),
    ) {
        check_differential(&expr, ConsumptionPolicy::Recent, &stream, 1);
    }

    #[test]
    fn chronicle_matches_oracle(
        expr in expr_strategy(),
        stream in proptest::collection::vec(1u64..5, 0..40),
    ) {
        check_differential(&expr, ConsumptionPolicy::Chronicle, &stream, 1);
    }

    #[test]
    fn continuous_matches_oracle(
        expr in expr_strategy(),
        stream in proptest::collection::vec(1u64..5, 0..40),
    ) {
        check_differential(&expr, ConsumptionPolicy::Continuous, &stream, 1);
    }

    #[test]
    fn cumulative_matches_oracle(
        expr in expr_strategy(),
        stream in proptest::collection::vec(1u64..5, 0..40),
    ) {
        check_differential(&expr, ConsumptionPolicy::Cumulative, &stream, 1);
    }
}

/// Parallel delivery: four perturbed threads feed one shared compositor,
/// each inside its own transaction window. Scope partitioning means each
/// window must behave exactly as if fed alone — which is what the
/// single-threaded oracle computes.
#[test]
fn parallel_delivery_matches_single_threaded_oracle() {
    let base = seed_from_env(0xD1FF);
    let exprs = [
        EventExpr::Sequence(vec![
            EventExpr::Primitive(EventTypeId::new(1)),
            EventExpr::Primitive(EventTypeId::new(2)),
        ]),
        EventExpr::Conjunction(vec![
            EventExpr::Primitive(EventTypeId::new(1)),
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(EventTypeId::new(3))),
                count: 2,
            },
        ]),
        EventExpr::Sequence(vec![
            EventExpr::Primitive(EventTypeId::new(1)),
            EventExpr::Negation(Arc::new(EventExpr::Primitive(EventTypeId::new(2)))),
        ]),
    ];
    for (which, expr) in exprs.iter().enumerate() {
        for policy in ConsumptionPolicy::ALL {
            let seed = base
                .wrapping_add(which as u64)
                .wrapping_mul(31)
                .wrapping_add(policy as u64);
            announce_seed("differential::parallel_delivery", seed);
            // Per-thread streams, deterministic in the seed.
            let mut root = reach_common::SplitMix64::new(seed);
            let streams: Vec<Vec<u64>> = (0..4)
                .map(|t| {
                    let mut rng = root.fork(t + 1);
                    (0..30).map(|_| 1 + rng.below(4) as u64).collect()
                })
                .collect();
            let real = Arc::new(Compositor::new(
                expr.clone(),
                CompositionScope::SameTransaction,
                Lifespan::Transaction,
                policy,
            ));
            // Concurrent feeding under schedule perturbation: each
            // thread collects the firings its own window produced.
            let (per_txn_real, _trace) = sched::run_seeded(seed, || {
                let handles: Vec<_> = streams
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(t, stream)| {
                        let real = Arc::clone(&real);
                        std::thread::spawn(move || {
                            sched::register_thread(t as u64);
                            let txn = t as u64 + 1;
                            let mut fired: Vec<Vec<u64>> = Vec::new();
                            for (i, ty) in stream.iter().enumerate() {
                                let o = occ(*ty, i as u64 + 1, txn);
                                fired
                                    .extend(real.feed(&o).iter().map(|c| as_seqs(&c.constituents)));
                            }
                            fired.extend(
                                real.close_txn(TxnId::new(txn))
                                    .iter()
                                    .map(|c| as_seqs(&c.constituents)),
                            );
                            fired
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            });
            // Each window vs the oracle fed that window's stream alone.
            for (t, stream) in streams.iter().enumerate() {
                let mut oracle = OracleCompositor::new(expr.clone(), policy);
                let mut expect: Vec<Vec<u64>> = Vec::new();
                for (i, ty) in stream.iter().enumerate() {
                    let o = occ(*ty, i as u64 + 1, t as u64 + 1);
                    expect.extend(oracle.feed(&o).iter().map(|f| as_seqs(f)));
                }
                expect.extend(oracle.close().iter().map(|f| as_seqs(f)));
                assert_eq!(
                    per_txn_real[t], expect,
                    "seed {seed:#x}: window {t} diverged under parallel delivery\n\
                     expr: {expr:?} policy: {policy:?}"
                );
            }
        }
    }
}
