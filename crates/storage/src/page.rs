//! Slotted pages.
//!
//! Classic layout: a fixed header at offset 0, the slot directory growing
//! *down* from the end of the page, record payloads growing *up* from the
//! header. Slot numbers are stable across record moves (compaction), so a
//! `(PageId, slot)` pair is a durable record address.
//!
//! ```text
//! +--------+----------------- free ---------------+-------+-------+
//! | header | records ...  ->            <- ...    | slot1 | slot0 |
//! +--------+---------------------------------------+-------+------+
//! ```

use reach_common::{PageId, ReachError, Result};

/// Size of every page, in bytes. 8 KiB matches EXODUS's default.
pub const PAGE_SIZE: usize = 8192;

/// Page header: `page_id(8) | lsn(8) | slot_count(2) | free_upper(2)`.
const HEADER_SIZE: usize = 8 + 8 + 2 + 2;
/// Each slot directory entry: `offset(2) | len(2)`.
const SLOT_SIZE: usize = 4;
/// Offset value marking a dead (deleted) slot.
const DEAD: u16 = u16::MAX;

/// Largest record payload a single page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// An 8 KiB slotted page. The in-memory image is exactly the on-disk
/// image, so pages can be memcpy'd between the buffer pool and the disk.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// A fresh, formatted page.
    pub fn new(id: PageId) -> Self {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_id(id);
        p.set_free_upper(HEADER_SIZE as u16);
        p
    }

    /// Reconstruct a page from its raw on-disk image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(ReachError::Io(format!(
                "page image must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    /// The raw on-disk image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    // ---- header accessors ----

    /// The page's stable identifier, read from the header.
    pub fn id(&self) -> PageId {
        PageId::new(u64::from_le_bytes(self.data[0..8].try_into().unwrap()))
    }

    fn set_id(&mut self, id: PageId) {
        self.data[0..8].copy_from_slice(&id.raw().to_le_bytes());
    }

    /// The LSN of the last WAL record that modified this page
    /// (exactness is what makes redo idempotent).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[8..16].try_into().unwrap())
    }

    /// Stamp the page with the LSN of the record that just changed it.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[8..16].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slot directory entries (live and dead).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.data[16..18].try_into().unwrap())
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[16..18].copy_from_slice(&n.to_le_bytes());
    }

    /// First byte above the record area (records occupy `HEADER..free_upper`).
    fn free_upper(&self) -> u16 {
        u16::from_le_bytes(self.data[18..20].try_into().unwrap())
    }

    fn set_free_upper(&mut self, off: u16) {
        self.data[18..20].copy_from_slice(&off.to_le_bytes());
    }

    // ---- slot directory ----

    fn slot_pos(&self, slot: u16) -> usize {
        PAGE_SIZE - SLOT_SIZE * (slot as usize + 1)
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let pos = self.slot_pos(slot);
        let off = u16::from_le_bytes(self.data[pos..pos + 2].try_into().unwrap());
        let len = u16::from_le_bytes(self.data[pos + 2..pos + 4].try_into().unwrap());
        (off, len)
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let pos = self.slot_pos(slot);
        self.data[pos..pos + 2].copy_from_slice(&off.to_le_bytes());
        self.data[pos + 2..pos + 4].copy_from_slice(&len.to_le_bytes());
    }

    // ---- free-space accounting ----

    /// Bytes available for a *new* record (payload + one new slot entry).
    pub fn free_space(&self) -> usize {
        let dir_bottom = PAGE_SIZE - SLOT_SIZE * self.slot_count() as usize;
        dir_bottom
            .saturating_sub(self.free_upper() as usize)
            .saturating_sub(SLOT_SIZE)
    }

    /// Whether a record of `len` bytes fits (possibly after compaction).
    ///
    /// Slot numbers are **never reused**: a `(page, slot)` pair names at
    /// most one record for all time. Reusing a slot freed by an
    /// *uncommitted* delete would make physiological undo unsound (the
    /// rollback of the delete would clobber the new occupant), and the
    /// page layer cannot see transaction boundaries — so the directory
    /// only grows (4 bytes per record ever placed on the page; payload
    /// space is still reclaimed by compaction).
    pub fn fits(&self, len: usize) -> bool {
        let live: usize = self.live_bytes();
        let dir = SLOT_SIZE * self.slot_count() as usize;
        PAGE_SIZE - HEADER_SIZE >= live + len + dir + SLOT_SIZE
    }

    fn live_bytes(&self) -> usize {
        (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != DEAD).then_some(len as usize)
            })
            .sum()
    }

    // ---- record operations ----

    /// Insert a record, returning its slot. Compacts the page first when
    /// fragmentation (from deletes/updates) is what prevents a contiguous
    /// fit.
    pub fn insert(&mut self, payload: &[u8]) -> Result<u16> {
        if payload.len() > MAX_RECORD {
            return Err(ReachError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD,
            });
        }
        if !self.fits(payload.len()) {
            return Err(ReachError::RecordTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let slot = {
            let s = self.slot_count();
            self.set_slot_count(s + 1);
            // Newly claimed directory entry must read as dead until filled.
            self.set_slot_entry(s, DEAD, 0);
            s
        };
        let dir_bottom = PAGE_SIZE - SLOT_SIZE * self.slot_count() as usize;
        if self.free_upper() as usize + payload.len() > dir_bottom {
            self.compact();
        }
        let off = self.free_upper();
        let start = off as usize;
        self.data[start..start + payload.len()].copy_from_slice(payload);
        self.set_free_upper(off + payload.len() as u16);
        self.set_slot_entry(slot, off, payload.len() as u16);
        Ok(slot)
    }

    /// Read the record in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(ReachError::SlotNotFound(self.id(), slot));
        }
        let (off, len) = self.slot_entry(slot);
        if off == DEAD {
            return Err(ReachError::SlotNotFound(self.id(), slot));
        }
        Ok(&self.data[off as usize..off as usize + len as usize])
    }

    /// Delete the record in `slot`; the slot number is retired forever.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        self.get(slot)?; // validates
        self.set_slot_entry(slot, DEAD, 0);
        Ok(())
    }

    /// Replace the record in `slot`, keeping the slot number stable.
    pub fn update(&mut self, slot: u16, payload: &[u8]) -> Result<()> {
        if slot >= self.slot_count() || self.slot_entry(slot).0 == DEAD {
            return Err(ReachError::SlotNotFound(self.id(), slot));
        }
        let (off, len) = self.slot_entry(slot);
        if payload.len() <= len as usize {
            // Shrink in place.
            let start = off as usize;
            self.data[start..start + payload.len()].copy_from_slice(payload);
            self.set_slot_entry(slot, off, payload.len() as u16);
            return Ok(());
        }
        // Grow: logically delete then re-place, preserving the slot.
        self.set_slot_entry(slot, DEAD, 0);
        if !self.fits_in_slot(payload.len()) {
            // Roll back the tombstone so the caller sees an unchanged page.
            self.set_slot_entry(slot, off, len);
            return Err(ReachError::RecordTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let dir_bottom = PAGE_SIZE - SLOT_SIZE * self.slot_count() as usize;
        if self.free_upper() as usize + payload.len() > dir_bottom {
            self.compact();
        }
        let new_off = self.free_upper();
        let start = new_off as usize;
        self.data[start..start + payload.len()].copy_from_slice(payload);
        self.set_free_upper(new_off + payload.len() as u16);
        self.set_slot_entry(slot, new_off, payload.len() as u16);
        Ok(())
    }

    /// Force `payload` into a *specific* slot, growing the directory with
    /// dead entries if needed. This is the physiological redo/undo
    /// primitive used by recovery: replaying `Insert{slot}` or undoing
    /// `Delete{slot}` must restore exactly that slot.
    pub fn put_at(&mut self, slot: u16, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_RECORD {
            return Err(ReachError::RecordTooLarge {
                size: payload.len(),
                max: MAX_RECORD,
            });
        }
        while self.slot_count() <= slot {
            let s = self.slot_count();
            self.set_slot_count(s + 1);
            self.set_slot_entry(s, DEAD, 0);
        }
        if self.slot_entry(slot).0 != DEAD {
            return self.update(slot, payload);
        }
        if !self.fits_in_slot(payload.len()) {
            return Err(ReachError::RecordTooLarge {
                size: payload.len(),
                max: self.free_space(),
            });
        }
        let dir_bottom = PAGE_SIZE - SLOT_SIZE * self.slot_count() as usize;
        if self.free_upper() as usize + payload.len() > dir_bottom {
            self.compact();
        }
        let off = self.free_upper();
        let start = off as usize;
        self.data[start..start + payload.len()].copy_from_slice(payload);
        self.set_free_upper(off + payload.len() as u16);
        self.set_slot_entry(slot, off, payload.len() as u16);
        Ok(())
    }

    /// Fit check for a record that reuses an existing (dead) slot.
    fn fits_in_slot(&self, len: usize) -> bool {
        let live = self.live_bytes();
        let dir = SLOT_SIZE * self.slot_count() as usize;
        PAGE_SIZE - HEADER_SIZE >= live + len + dir
    }

    /// Live slot numbers in ascending order.
    pub fn live_slots(&self) -> impl Iterator<Item = u16> + '_ {
        (0..self.slot_count()).filter(|&s| self.slot_entry(s).0 != DEAD)
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.live_slots().count()
    }

    /// Slide all live records together to reclaim holes left by deletes.
    /// Slot numbers are preserved; only offsets change.
    fn compact(&mut self) {
        let mut records: Vec<(u16, Vec<u8>)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != DEAD).then(|| (s, self.data[off as usize..(off + len) as usize].to_vec()))
            })
            .collect();
        let mut cursor = HEADER_SIZE;
        for (slot, payload) in records.drain(..) {
            self.data[cursor..cursor + payload.len()].copy_from_slice(&payload);
            self.set_slot_entry(slot, cursor as u16, payload.len() as u16);
            cursor += payload.len();
        }
        self.set_free_upper(cursor as u16);
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            data: self.data.clone(),
        }
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id())
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("live", &self.live_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Page {
        Page::new(PageId::new(1))
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut p = page();
        let s = p.insert(b"hello").unwrap();
        assert_eq!(p.get(s).unwrap(), b"hello");
        assert_eq!(p.live_count(), 1);
    }

    #[test]
    fn multiple_records_get_distinct_slots() {
        let mut p = page();
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbbb").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap(), b"aaa");
        assert_eq!(p.get(b).unwrap(), b"bbbb");
    }

    #[test]
    fn deleted_slots_are_never_reused() {
        let mut p = page();
        let a = p.insert(b"gone soon").unwrap();
        p.delete(a).unwrap();
        assert!(p.get(a).is_err());
        let b = p.insert(b"replacement").unwrap();
        assert_ne!(a, b, "slot identity is forever (undo soundness)");
        assert_eq!(p.get(b).unwrap(), b"replacement");
        assert!(p.get(a).is_err(), "old slot stays dead");
    }

    #[test]
    fn update_in_place_when_shrinking() {
        let mut p = page();
        let s = p.insert(b"0123456789").unwrap();
        p.update(s, b"xyz").unwrap();
        assert_eq!(p.get(s).unwrap(), b"xyz");
    }

    #[test]
    fn update_grows_with_stable_slot() {
        let mut p = page();
        let s = p.insert(b"tiny").unwrap();
        let other = p.insert(b"other").unwrap();
        let big = vec![7u8; 500];
        p.update(s, &big).unwrap();
        assert_eq!(p.get(s).unwrap(), &big[..]);
        assert_eq!(p.get(other).unwrap(), b"other");
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = page();
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(ReachError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = page();
        let rec = vec![1u8; 1000];
        let mut n = 0;
        while p.fits(rec.len()) {
            p.insert(&rec).unwrap();
            n += 1;
        }
        assert!(n >= 7, "8 KiB page should hold at least 7 KiB of records");
        assert!(p.insert(&rec).is_err());
    }

    #[test]
    fn compaction_reclaims_holes() {
        let mut p = page();
        let rec = vec![2u8; 1000];
        let mut slots = Vec::new();
        while p.fits(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        // Free every other record, then a record of double size must fit
        // again even though the free space is fragmented.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*s).unwrap();
            }
        }
        let big = vec![3u8; 1800];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s).unwrap(), &big[..]);
        // Survivors intact after compaction.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.get(*s).unwrap(), &rec[..]);
            }
        }
    }

    #[test]
    fn update_failure_leaves_record_intact() {
        let mut p = page();
        let filler = vec![1u8; 3000];
        p.insert(&filler).unwrap();
        p.insert(&filler).unwrap();
        let s = p.insert(b"small").unwrap();
        let too_big = vec![9u8; 4000];
        assert!(p.update(s, &too_big).is_err());
        assert_eq!(p.get(s).unwrap(), b"small");
    }

    #[test]
    fn image_round_trips_through_bytes() {
        let mut p = page();
        p.insert(b"persist me").unwrap();
        p.set_lsn(77);
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.id(), p.id());
        assert_eq!(q.lsn(), 77);
        assert_eq!(q.get(0).unwrap(), b"persist me");
    }

    #[test]
    fn from_bytes_rejects_wrong_size() {
        assert!(Page::from_bytes(&[0u8; 16]).is_err());
    }

    #[test]
    fn get_out_of_range_slot_errors() {
        let p = page();
        assert!(matches!(p.get(3), Err(ReachError::SlotNotFound(_, 3))));
    }

    #[test]
    fn put_at_grows_directory_and_restores_slot() {
        let mut p = page();
        p.put_at(3, b"slot three").unwrap();
        assert_eq!(p.get(3).unwrap(), b"slot three");
        assert!(p.get(0).is_err(), "intermediate slots stay dead");
        assert_eq!(p.slot_count(), 4);
        // put_at over a live slot behaves like update.
        p.put_at(3, b"replaced").unwrap();
        assert_eq!(p.get(3).unwrap(), b"replaced");
        // A later insert takes a fresh slot; the dead ones stay dead.
        let s = p.insert(b"fill").unwrap();
        assert_eq!(s, 4);
    }

    #[test]
    fn empty_record_is_legal() {
        let mut p = page();
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
        p.delete(s).unwrap();
        assert!(p.get(s).is_err());
    }
}
