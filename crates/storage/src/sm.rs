//! The storage manager facade — the EXODUS stand-in.
//!
//! Everything above this layer (the Persistence PM, extents, indexes)
//! talks to [`StorageManager`]: named *segments* (heap files) holding
//! records, with every mutation logged to the WAL under the mutating
//! transaction's id. Commit forces the log; abort rolls the transaction
//! back from its before-images, writing compensation records.
//!
//! The segment catalog itself lives on page 1 of the device (created on
//! first use) and is logged under the reserved [`SYSTEM_TXN`], which
//! recovery always treats as committed. Slot 1 of the same page holds
//! the persistent-index catalog (name → B+Tree root), maintained the
//! same way.
//!
//! **Known limit**: the catalog is one record on one page, so the sum
//! of all segments' page lists must fit in ~8 KiB — roughly 1 000 heap
//! pages (≈8 MB of data) total. Exceeding it fails loudly with
//! `RecordTooLarge` at the catalog write. Fine for the reproduction's
//! scale; a production system would chain catalog pages.

use crate::btree::BTree;
use crate::buffer::BufferPool;
use crate::checkpoint::{ActiveTxns, CheckpointStats, Checkpointer};
use crate::disk::{FileDisk, MemDisk, StableStorage};
use crate::heap::{HeapFile, RecordId};
use crate::wal::{WalRecord, WriteAheadLog};
use reach_common::sync::Mutex;
use reach_common::{MetricsRegistry, PageId, ReachError, Result, TxnId};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// The transaction id used for system-internal (catalog) writes.
pub const SYSTEM_TXN: TxnId = TxnId(u64::MAX);

/// Identity of a segment within one storage manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub u64);

struct Segment {
    id: SegmentId,
    name: String,
    heap: Arc<HeapFile>,
}

struct Catalog {
    by_name: HashMap<String, usize>,
    segments: Vec<Segment>,
    next_seg: u64,
}

/// Facade over pool + WAL + segment catalog.
pub struct StorageManager {
    pool: Arc<BufferPool>,
    wal: Arc<WriteAheadLog>,
    catalog: Mutex<Catalog>,
    /// Page holding the serialized catalog (page 1, slot 0).
    catalog_page: PageId,
    /// Serializes index structural operations and index-catalog writes.
    /// The index catalog itself lives on the catalog page, slot 1, and
    /// is read on demand — the page is authoritative, so recovery-time
    /// undo (which runs before any in-memory state is rebuilt) sees
    /// exactly the post-redo tree roots.
    index_lock: Mutex<()>,
    /// Live transactions with write counts and first-write LSNs — feeds
    /// the read-only commit fast path (a txn with zero writes has
    /// nothing to force) and the checkpoint's active-writer table.
    active: Arc<ActiveTxns>,
    /// Fuzzy checkpoint / log-truncation driver.
    ckpt: Checkpointer,
}

impl StorageManager {
    /// A storage manager over in-memory disk and log (tests, benchmarks).
    pub fn new_in_memory(pool_frames: usize) -> Result<Self> {
        let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
        Self::bootstrap(disk, Arc::new(WriteAheadLog::in_memory()), pool_frames)
    }

    /// Open (or create) a database directory containing `data.db` and
    /// `wal.log`, running recovery if the files already exist.
    pub fn open(dir: &Path, pool_frames: usize) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let disk: Arc<dyn StableStorage> = Arc::new(FileDisk::open(&dir.join("data.db"))?);
        let wal = Arc::new(WriteAheadLog::open(&dir.join("wal.log"))?);
        Ok(Self::open_with(disk, wal, pool_frames)?.0)
    }

    /// Open a storage manager over explicit device and log parts,
    /// running recovery if the device already holds pages. This is the
    /// reopen path of the crash-torture harness: the surviving `MemDisk`
    /// (shared `Arc`) plus a WAL rebuilt from the surviving byte image
    /// stand in for the machine coming back up. It is also how a caller
    /// wires a fault-injecting device or log into a live system.
    pub fn open_with(
        disk: Arc<dyn StableStorage>,
        wal: Arc<WriteAheadLog>,
        pool_frames: usize,
    ) -> Result<(Self, crate::recovery::RecoveryReport)> {
        let existing = disk.page_count() > 0;
        let sm = Self::bootstrap(disk, wal, pool_frames)?;
        let report = if existing {
            // Recovery must replay the log *before* the catalog page is
            // trusted: commit forces only the WAL, so after a crash the
            // on-disk catalog may predate every committed segment.
            let report = crate::recovery::recover(&sm)?;
            sm.reload_catalog()?;
            report
        } else {
            crate::recovery::RecoveryReport::default()
        };
        Ok((sm, report))
    }

    fn bootstrap(
        disk: Arc<dyn StableStorage>,
        wal: Arc<WriteAheadLog>,
        pool_frames: usize,
    ) -> Result<Self> {
        let fresh = disk.page_count() == 0;
        // The registry is born here, at the lowest layer, and threaded
        // *up*: the database and the active layer above clone this same
        // `Arc`, so the whole stack reports into one place.
        let metrics = MetricsRegistry::new_shared();
        wal.set_metrics(Arc::clone(&metrics));
        let pool = Arc::new(BufferPool::with_metrics(disk, pool_frames, metrics));
        // WAL rule: any dirty page write-back (eviction, flush) forces
        // the log first. The group-commit fast path makes this free
        // whenever the log is already durable. The force never touches
        // pool locks, so calling it from under the directory lock is
        // deadlock-free.
        {
            let wal = Arc::clone(&wal);
            pool.set_flush_barrier(Arc::new(move || wal.force()));
        }
        // Recovery-LSN source: a page dirtied now can only be described
        // by records at or past the current tail, so the tail is a safe
        // conservative rec_lsn for the dirty-page table.
        {
            let wal = Arc::clone(&wal);
            pool.set_lsn_source(Arc::new(move || wal.tail()));
        }
        let catalog_page = if fresh {
            let pid = pool.allocate()?;
            debug_assert_eq!(pid.raw(), 1);
            pool.with_page_mut(pid, |pg| pg.put_at(0, &encode_catalog(&[], 1)))??;
            pid
        } else {
            PageId::new(1)
        };
        let active = Arc::new(ActiveTxns::default());
        let ckpt = Checkpointer::new(Arc::clone(&wal), Arc::clone(&pool), Arc::clone(&active));
        let sm = StorageManager {
            pool,
            wal,
            catalog: Mutex::new(Catalog {
                by_name: HashMap::new(),
                segments: Vec::new(),
                next_seg: 1,
            }),
            catalog_page,
            index_lock: Mutex::new(()),
            active,
            ckpt,
        };
        // For pre-existing databases the catalog is loaded by the caller
        // after recovery ran (see `open`); reading it here would see
        // pre-crash bytes.
        Ok(sm)
    }

    /// The buffer pool (indexes and recovery need direct page access).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Arc<WriteAheadLog> {
        &self.wal
    }

    /// The shared observability registry for this storage stack.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.pool.metrics()
    }

    // ---- catalog ----

    fn reload_catalog(&self) -> Result<()> {
        // A database that crashed before its first catalog write has a
        // formatted-but-empty page 1: that is a valid empty catalog.
        let raw = self
            .pool
            .with_page(self.catalog_page, |pg| pg.get(0).map(|b| b.to_vec()).ok())?;
        let (entries, next_seg) = match raw {
            Some(bytes) => decode_catalog(&bytes)?,
            None => (Vec::new(), 1),
        };
        let mut cat = self.catalog.lock();
        cat.segments.clear();
        cat.by_name.clear();
        cat.next_seg = next_seg;
        for (name, id, pages) in entries {
            let heap = Arc::new(HeapFile::with_pages(Arc::clone(&self.pool), pages));
            let idx = cat.segments.len();
            cat.by_name.insert(name.clone(), idx);
            cat.segments.push(Segment {
                id: SegmentId(id),
                name,
                heap,
            });
        }
        Ok(())
    }

    /// Persist the catalog (logged under [`SYSTEM_TXN`]).
    fn save_catalog(&self, cat: &Catalog) -> Result<()> {
        let entries: Vec<(String, u64, Vec<PageId>)> = cat
            .segments
            .iter()
            .map(|s| (s.name.clone(), s.id.0, s.heap.pages()))
            .collect();
        let after = encode_catalog(&entries, cat.next_seg);
        // A database that crashed before its first catalog update comes
        // back with a formatted-but-empty page 1 (the bootstrap write
        // was never flushed); treat that as the empty catalog.
        let before = self
            .pool
            .with_page(self.catalog_page, |pg| pg.get(0).map(|b| b.to_vec()).ok())?
            .unwrap_or_else(|| encode_catalog(&[], 1));
        self.wal.append(&WalRecord::Update {
            txn: SYSTEM_TXN,
            page: self.catalog_page,
            slot: 0,
            before,
            after: after.clone(),
        })?;
        self.pool
            .with_page_mut(self.catalog_page, |pg| pg.put_at(0, &after))??;
        Ok(())
    }

    /// Create a segment; returns the existing one if the name is taken.
    pub fn create_segment(&self, name: &str) -> Result<SegmentId> {
        let mut cat = self.catalog.lock();
        if let Some(&idx) = cat.by_name.get(name) {
            return Ok(cat.segments[idx].id);
        }
        let id = SegmentId(cat.next_seg);
        cat.next_seg += 1;
        let heap = Arc::new(HeapFile::new(Arc::clone(&self.pool)));
        let idx = cat.segments.len();
        cat.by_name.insert(name.to_string(), idx);
        cat.segments.push(Segment {
            id,
            name: name.to_string(),
            heap,
        });
        self.save_catalog(&cat)?;
        Ok(id)
    }

    /// Look up a segment by name.
    pub fn segment(&self, name: &str) -> Result<SegmentId> {
        let cat = self.catalog.lock();
        cat.by_name
            .get(name)
            .map(|&idx| cat.segments[idx].id)
            .ok_or_else(|| ReachError::NameNotFound(name.to_string()))
    }

    /// All segment names (for introspection / Figure 1 dumps).
    pub fn segment_names(&self) -> Vec<String> {
        self.catalog
            .lock()
            .segments
            .iter()
            .map(|s| s.name.clone())
            .collect()
    }

    fn heap(&self, seg: SegmentId) -> Result<Arc<HeapFile>> {
        let cat = self.catalog.lock();
        cat.segments
            .iter()
            .find(|s| s.id == seg)
            .map(|s| Arc::clone(&s.heap))
            .ok_or_else(|| ReachError::NameNotFound(format!("segment {}", seg.0)))
    }

    // ---- transactional record operations ----

    /// Log the start of a transaction.
    pub fn begin(&self, txn: TxnId) -> Result<()> {
        self.active.begin(txn);
        self.wal.append(&WalRecord::Begin { txn })?;
        Ok(())
    }

    /// Commit: append the commit record and force the log up to it —
    /// the durability point, routed through the group-commit sequencer
    /// so concurrent committers share one sync. Read-only transactions
    /// skip the force entirely: losing their unforced commit record in
    /// a crash leaves a Begin-only loser that recovery discards as a
    /// no-op. Dirty pages may trickle out later or at checkpoint.
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let (wrote, end) = self
            .active
            .finish_logged(txn, &self.wal, &WalRecord::Commit { txn })?;
        if wrote {
            self.wal.force_up_to(end)?;
        }
        // Best-effort auto-checkpoint: the commit is already durable and
        // acked, so a checkpoint failure here must not turn it into an
        // error (the torture oracle counts acks as winners, exactly).
        let _ = self.ckpt.maybe_checkpoint();
        Ok(())
    }

    /// Two-phase commit, phase one: force-log a [`WalRecord::Prepare`]
    /// binding `txn` to global transaction `gid`. After this returns,
    /// the participant can commit `txn` regardless of crashes — every
    /// record needed for redo sits below the forced Prepare — and must
    /// not unilaterally abort it: the outcome now belongs to the
    /// coordinator. The active-table entry is deliberately *kept* (the
    /// usual outcome records drop it), so a prepared transaction pins
    /// log truncation at its first write until [`Self::decide_commit`]
    /// or [`Self::decide_abort`] resolves it, possibly after a reboot.
    pub fn prepare(&self, txn: TxnId, gid: u64) -> Result<()> {
        // The Prepare record itself counts as a write: a prepared
        // read-only txn must still survive truncation until decided.
        self.active.note_write(txn, &self.wal);
        let (_, end) = self.wal.append_bounded(&WalRecord::Prepare { txn, gid })?;
        self.wal.force_up_to(end)?;
        Ok(())
    }

    /// Two-phase commit, commit decision: append and force the Commit
    /// record. Unlike [`Self::commit`] the force is unconditional — the
    /// caller may be resolving an in-doubt transaction after a reboot,
    /// where the active table no longer knows whether it wrote.
    pub fn decide_commit(&self, txn: TxnId) -> Result<()> {
        let (_, end) = self
            .active
            .finish_logged(txn, &self.wal, &WalRecord::Commit { txn })?;
        self.wal.force_up_to(end)?;
        let _ = self.ckpt.maybe_checkpoint();
        Ok(())
    }

    /// Two-phase commit, abort decision (also the presumed-abort path
    /// for an in-doubt transaction whose coordinator log has no
    /// decision). Scan-driven like [`Self::abort`], so it works equally
    /// before and after a reboot.
    pub fn decide_abort(&self, txn: TxnId) -> Result<()> {
        self.abort(txn)
    }

    /// Re-register an in-doubt (prepared, undecided) transaction after
    /// recovery so checkpoints keep its log records until a decision
    /// arrives; `first_write_lsn` is the earliest surviving record of
    /// the transaction.
    pub(crate) fn restore_prepared(&self, txn: TxnId, first_write_lsn: u64) {
        self.active.restore(txn, first_write_lsn);
    }

    /// Abort: undo this transaction's logged operations in reverse order,
    /// writing CLRs, then append the abort record.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        let mut mine: Vec<(u64, WalRecord)> = self
            .wal
            .scan()?
            .into_iter()
            .filter(|(_, r)| r.txn() == Some(txn))
            .collect();
        // Count CLRs already written (crash-restart aborts): skip the
        // operations they already undid.
        let undone: usize = mine
            .iter()
            .filter(|(_, r)| matches!(r, WalRecord::Clr { .. } | WalRecord::IndexClr { .. }))
            .count();
        let ops: Vec<(u64, WalRecord)> = mine
            .drain(..)
            .filter(|(_, r)| {
                matches!(
                    r,
                    WalRecord::Insert { .. }
                        | WalRecord::Update { .. }
                        | WalRecord::Delete { .. }
                        | WalRecord::IndexInsert { .. }
                        | WalRecord::IndexDelete { .. }
                )
            })
            .collect();
        // `ops` is scan-derived so crash-restart aborts (where the
        // active table is empty) still force correctly.
        let wrote = !ops.is_empty();
        let to_undo = ops.len().saturating_sub(undone);
        for (lsn, rec) in ops.into_iter().take(to_undo).rev() {
            self.undo_one(txn, lsn, &rec)?;
        }
        let (_, end) = self
            .active
            .finish_logged(txn, &self.wal, &WalRecord::Abort { txn })?;
        if wrote {
            self.wal.force_up_to(end)?;
        }
        // Same best-effort trigger as commit; see there for why errors
        // are swallowed.
        let _ = self.ckpt.maybe_checkpoint();
        Ok(())
    }

    /// Apply the inverse of one logged operation and write its CLR.
    pub(crate) fn undo_one(&self, txn: TxnId, lsn: u64, rec: &WalRecord) -> Result<()> {
        match rec {
            WalRecord::Insert { page, slot, .. } => {
                self.wal.append(&WalRecord::Clr {
                    txn,
                    page: *page,
                    slot: *slot,
                    restore: None,
                    undo_next: lsn,
                })?;
                self.pool.with_page_mut(*page, |pg| {
                    // Tolerate an already-dead slot (idempotent undo).
                    let _ = pg.delete(*slot);
                })?;
            }
            WalRecord::Update {
                page, slot, before, ..
            } => {
                self.wal.append(&WalRecord::Clr {
                    txn,
                    page: *page,
                    slot: *slot,
                    restore: Some(before.clone()),
                    undo_next: lsn,
                })?;
                self.pool
                    .with_page_mut(*page, |pg| pg.put_at(*slot, before))??;
            }
            WalRecord::Delete {
                page, slot, before, ..
            } => {
                self.wal.append(&WalRecord::Clr {
                    txn,
                    page: *page,
                    slot: *slot,
                    restore: Some(before.clone()),
                    undo_next: lsn,
                })?;
                self.pool
                    .with_page_mut(*page, |pg| pg.put_at(*slot, before))??;
            }
            // Logical index undo: re-descend the *current* tree and
            // apply the inverse, then write the compensation record.
            // Mutation-first makes a torn restart-undo idempotent: the
            // repeat just deletes an absent pair / re-inserts a present
            // one, both no-ops under set semantics.
            WalRecord::IndexInsert {
                index, key, oid, ..
            } => {
                self.index_undo(*index, key, *oid, false)?;
                self.wal.append(&WalRecord::IndexClr {
                    txn,
                    undo_next: lsn,
                })?;
            }
            WalRecord::IndexDelete {
                index, key, oid, ..
            } => {
                self.index_undo(*index, key, *oid, true)?;
                self.wal.append(&WalRecord::IndexClr {
                    txn,
                    undo_next: lsn,
                })?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Insert a record into `seg` under transaction `txn`.
    pub fn insert(&self, txn: TxnId, seg: SegmentId, payload: &[u8]) -> Result<RecordId> {
        let heap = self.heap(seg)?;
        let (rid, grew) = heap.insert(payload)?;
        // Registered before the append so the checkpoint cut can never
        // pass this record while the transaction is live.
        self.active.note_write(txn, &self.wal);
        self.wal.append(&WalRecord::Insert {
            txn,
            page: rid.page,
            slot: rid.slot,
            payload: payload.to_vec(),
        })?;
        if grew {
            let cat = self.catalog.lock();
            self.save_catalog(&cat)?;
        }
        Ok(rid)
    }

    /// Read a record (no logging).
    pub fn get(&self, seg: SegmentId, rid: RecordId) -> Result<Vec<u8>> {
        self.heap(seg)?.get(rid)
    }

    /// Update a record in place under `txn`.
    pub fn update(&self, txn: TxnId, seg: SegmentId, rid: RecordId, payload: &[u8]) -> Result<()> {
        let heap = self.heap(seg)?;
        let before = heap.get(rid)?;
        heap.update(rid, payload)?;
        self.active.note_write(txn, &self.wal);
        self.wal.append(&WalRecord::Update {
            txn,
            page: rid.page,
            slot: rid.slot,
            before,
            after: payload.to_vec(),
        })?;
        Ok(())
    }

    /// Delete a record under `txn`.
    pub fn delete(&self, txn: TxnId, seg: SegmentId, rid: RecordId) -> Result<()> {
        let heap = self.heap(seg)?;
        let before = heap.get(rid)?;
        heap.delete(rid)?;
        self.active.note_write(txn, &self.wal);
        self.wal.append(&WalRecord::Delete {
            txn,
            page: rid.page,
            slot: rid.slot,
            before,
        })?;
        Ok(())
    }

    /// Scan all live records of a segment.
    pub fn scan(&self, seg: SegmentId) -> Result<Vec<(RecordId, Vec<u8>)>> {
        self.heap(seg)?.scan()
    }

    /// Walk a segment's live records as borrowed slices, stopping when
    /// the visitor breaks — no payload is copied and no `Vec` is built.
    pub fn for_each_while(
        &self,
        seg: SegmentId,
        f: impl FnMut(RecordId, &[u8]) -> std::ops::ControlFlow<()>,
    ) -> Result<()> {
        self.heap(seg)?.for_each_while(f)
    }

    /// Number of live records in a segment without materializing them.
    pub fn scan_count(&self, seg: SegmentId) -> Result<usize> {
        self.heap(seg)?.len()
    }

    /// The segment's first live record, if any — stops at the first hit.
    pub fn scan_first(&self, seg: SegmentId) -> Result<Option<(RecordId, Vec<u8>)>> {
        self.heap(seg)?.first()
    }

    // ---- persistent B+Tree indexes ----
    //
    // The index catalog — (name, id, root page, fanout knob) per index —
    // lives in slot 1 of the catalog page, logged under SYSTEM_TXN like
    // the segment catalog in slot 0. User-level index mutations are
    // additionally logged *logically* (IndexInsert/IndexDelete under the
    // mutating transaction) so abort and restart-undo can reverse them
    // through the tree, while the tree's own page writes are physical
    // SYSTEM_TXN records replayed by redo.

    /// Create a persistent index; returns the existing id if the name
    /// is taken (reopen path).
    pub fn create_index(&self, name: &str) -> Result<u64> {
        self.create_index_with(name, None)
    }

    /// [`StorageManager::create_index`] with an explicit max-entries
    /// fanout knob (tests and torture force boundary fanouts with it;
    /// the knob is persisted so reopen splits identically).
    pub fn create_index_with(&self, name: &str, max_node_entries: Option<usize>) -> Result<u64> {
        let _g = self.index_lock.lock();
        let (mut entries, next) = self.load_index_entries()?;
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            return Ok(e.id);
        }
        let tree = BTree::create(
            Arc::clone(&self.pool),
            Arc::clone(&self.wal),
            max_node_entries,
        )?;
        let id = next;
        entries.push(IndexEntry {
            name: name.to_string(),
            id,
            root: tree.root(),
            max_node_entries: max_node_entries.map_or(0, |n| n as u32),
        });
        self.store_index_entries(&entries, next + 1)?;
        Ok(id)
    }

    /// All persistent indexes as `(name, id)` pairs.
    pub fn index_names(&self) -> Result<Vec<(String, u64)>> {
        let _g = self.index_lock.lock();
        let (entries, _) = self.load_index_entries()?;
        Ok(entries.into_iter().map(|e| (e.name, e.id)).collect())
    }

    /// Insert `(key, oid)` into index `index` under `txn`, logging the
    /// operation logically for undo. Returns `false` (and logs nothing)
    /// if the pair is already present.
    pub fn index_insert(&self, txn: TxnId, index: u64, key: &[u8], oid: u64) -> Result<bool> {
        let _g = self.index_lock.lock();
        let (mut entries, next) = self.load_index_entries()?;
        let tree = open_entry_tree(self, &entries, index)?;
        if tree.contains(key, oid)? {
            return Ok(false);
        }
        // Logical record first: if the tree mutation's physical records
        // are torn away by a crash, the surviving logical record still
        // drives a (no-op) undo; the reverse order could leak a
        // half-applied loser insert with nothing to undo it.
        self.active.note_write(txn, &self.wal);
        self.wal.append(&WalRecord::IndexInsert {
            txn,
            index,
            key: key.to_vec(),
            oid,
        })?;
        tree.insert(key, oid)?;
        self.persist_root_if_moved(&mut entries, next, index, &tree)?;
        let m = self.metrics();
        if m.on() {
            m.index.inserts.inc();
        }
        Ok(true)
    }

    /// Delete `(key, oid)` from index `index` under `txn`. Returns
    /// `false` (and logs nothing) if the pair is absent.
    pub fn index_delete(&self, txn: TxnId, index: u64, key: &[u8], oid: u64) -> Result<bool> {
        let _g = self.index_lock.lock();
        let (mut entries, next) = self.load_index_entries()?;
        let tree = open_entry_tree(self, &entries, index)?;
        if !tree.contains(key, oid)? {
            return Ok(false);
        }
        self.active.note_write(txn, &self.wal);
        self.wal.append(&WalRecord::IndexDelete {
            txn,
            index,
            key: key.to_vec(),
            oid,
        })?;
        tree.delete(key, oid)?;
        self.persist_root_if_moved(&mut entries, next, index, &tree)?;
        let m = self.metrics();
        if m.on() {
            m.index.deletes.inc();
        }
        Ok(true)
    }

    /// Point lookup: all oids under exactly `key`, ascending.
    pub fn index_lookup(&self, index: u64, key: &[u8]) -> Result<Vec<u64>> {
        let _g = self.index_lock.lock();
        let (entries, _) = self.load_index_entries()?;
        open_entry_tree(self, &entries, index)?.lookup(key)
    }

    /// Range scan in ascending `(key, oid)` order with planner `Bound`
    /// semantics.
    pub fn index_range(
        &self,
        index: u64,
        low: std::ops::Bound<&[u8]>,
        high: std::ops::Bound<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, u64)>> {
        let _g = self.index_lock.lock();
        let (entries, _) = self.load_index_entries()?;
        open_entry_tree(self, &entries, index)?.range(low, high)
    }

    /// Number of `(key, oid)` pairs in the index.
    pub fn index_len(&self, index: u64) -> Result<usize> {
        let _g = self.index_lock.lock();
        let (entries, _) = self.load_index_entries()?;
        open_entry_tree(self, &entries, index)?.len()
    }

    /// Apply a logical undo step: delete (`insert == false`) or
    /// re-insert (`insert == true`) a pair through the current tree.
    /// Missing indexes are tolerated (idempotence under torn catalogs).
    fn index_undo(&self, index: u64, key: &[u8], oid: u64, insert: bool) -> Result<()> {
        let _g = self.index_lock.lock();
        let (mut entries, next) = self.load_index_entries()?;
        let Ok(tree) = open_entry_tree(self, &entries, index) else {
            return Ok(());
        };
        if insert {
            tree.insert(key, oid)?;
        } else {
            tree.delete(key, oid)?;
        }
        self.persist_root_if_moved(&mut entries, next, index, &tree)?;
        let m = self.metrics();
        if m.on() {
            m.index.undone.inc();
        }
        Ok(())
    }

    fn persist_root_if_moved(
        &self,
        entries: &mut [IndexEntry],
        next: u64,
        index: u64,
        tree: &BTree,
    ) -> Result<()> {
        let entry = entries
            .iter_mut()
            .find(|e| e.id == index)
            .expect("entry existed when the tree was opened");
        if entry.root != tree.root() {
            entry.root = tree.root();
            self.store_index_entries(entries, next)?;
        }
        Ok(())
    }

    fn load_index_entries(&self) -> Result<(Vec<IndexEntry>, u64)> {
        let raw = self
            .pool
            .with_page(self.catalog_page, |pg| pg.get(1).map(|b| b.to_vec()).ok())?;
        match raw {
            Some(bytes) => decode_index_catalog(&bytes),
            None => Ok((Vec::new(), 1)),
        }
    }

    /// Persist the index catalog to slot 1 (logged under
    /// [`SYSTEM_TXN`], same idiom as the segment catalog).
    fn store_index_entries(&self, entries: &[IndexEntry], next_index: u64) -> Result<()> {
        let after = encode_index_catalog(entries, next_index);
        let before = self
            .pool
            .with_page(self.catalog_page, |pg| pg.get(1).map(|b| b.to_vec()).ok())?;
        let rec = match before {
            Some(before) => WalRecord::Update {
                txn: SYSTEM_TXN,
                page: self.catalog_page,
                slot: 1,
                before,
                after: after.clone(),
            },
            None => WalRecord::Insert {
                txn: SYSTEM_TXN,
                page: self.catalog_page,
                slot: 1,
                payload: after.clone(),
            },
        };
        self.wal.append(&rec)?;
        self.pool
            .with_page_mut(self.catalog_page, |pg| pg.put_at(1, &after))??;
        Ok(())
    }

    /// Take a fuzzy checkpoint now: `BeginCheckpoint`, pool flush,
    /// dirty-page + active-writer capture, `EndCheckpoint`, force, then
    /// truncate the log below the safe cut. See [`crate::checkpoint`]
    /// for the protocol and the truncation-safety argument.
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        self.ckpt.checkpoint()
    }

    /// Arm (or disarm with `None`) automatic checkpoints every `bytes`
    /// of log growth, checked after each commit/abort.
    pub fn set_checkpoint_threshold(&self, bytes: Option<u64>) {
        self.ckpt.set_threshold(bytes);
    }
}

impl std::fmt::Debug for StorageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageManager")
            .field("segments", &self.segment_names())
            .field("pages", &self.pool.disk().page_count())
            .finish()
    }
}

// ---- index catalog ----

/// One persistent index in the catalog (slot 1 of the catalog page).
#[derive(Debug, Clone, PartialEq, Eq)]
struct IndexEntry {
    name: String,
    id: u64,
    /// Root page as of the last persisted structure change. May lag a
    /// crash-torn root split — safe, because an old root is the
    /// leftmost node of its level and right links reach everything.
    root: PageId,
    /// Max-entries fanout knob (0 = byte-budget default), persisted so
    /// reopen splits identically.
    max_node_entries: u32,
}

fn open_entry_tree(sm: &StorageManager, entries: &[IndexEntry], index: u64) -> Result<BTree> {
    let e = entries
        .iter()
        .find(|e| e.id == index)
        .ok_or_else(|| ReachError::NameNotFound(format!("index {index}")))?;
    let cap = if e.max_node_entries == 0 {
        None
    } else {
        Some(e.max_node_entries as usize)
    };
    Ok(BTree::open(
        Arc::clone(&sm.pool),
        Arc::clone(&sm.wal),
        e.root,
        cap,
    ))
}

fn encode_index_catalog(entries: &[IndexEntry], next_index: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&next_index.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&(e.name.len() as u32).to_le_bytes());
        out.extend_from_slice(e.name.as_bytes());
        out.extend_from_slice(&e.id.to_le_bytes());
        out.extend_from_slice(&e.root.raw().to_le_bytes());
        out.extend_from_slice(&e.max_node_entries.to_le_bytes());
    }
    out
}

fn decode_index_catalog(buf: &[u8]) -> Result<(Vec<IndexEntry>, u64)> {
    let corrupt = || ReachError::WalCorrupt("index catalog corrupt".into());
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        if pos + n > buf.len() {
            return Err(corrupt());
        }
        let s = &buf[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let next_index = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(name_len)?.to_vec()).map_err(|_| corrupt())?;
        let id = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let root = PageId::new(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        let max_node_entries = u32::from_le_bytes(take(4)?.try_into().unwrap());
        entries.push(IndexEntry {
            name,
            id,
            root,
            max_node_entries,
        });
    }
    Ok((entries, next_index))
}

// ---- catalog (de)serialization ----

fn encode_catalog(entries: &[(String, u64, Vec<PageId>)], next_seg: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&next_seg.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (name, id, pages) in entries {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for p in pages {
            out.extend_from_slice(&p.raw().to_le_bytes());
        }
    }
    out
}

type CatalogEntries = Vec<(String, u64, Vec<PageId>)>;

fn decode_catalog(buf: &[u8]) -> Result<(CatalogEntries, u64)> {
    let corrupt = || ReachError::WalCorrupt("catalog page corrupt".into());
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8]> {
        if pos + n > buf.len() {
            return Err(corrupt());
        }
        let s = &buf[pos..pos + n];
        pos += n;
        Ok(s)
    };
    let next_seg = u64::from_le_bytes(take(8)?.try_into().unwrap());
    let n = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(name_len)?.to_vec()).map_err(|_| corrupt())?;
        let id = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let pages_len = u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize;
        let mut pages = Vec::with_capacity(pages_len);
        for _ in 0..pages_len {
            pages.push(PageId::new(u64::from_le_bytes(
                take(8)?.try_into().unwrap(),
            )));
        }
        entries.push((name, id, pages));
    }
    Ok((entries, next_seg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm() -> StorageManager {
        StorageManager::new_in_memory(64).unwrap()
    }

    #[test]
    fn segments_are_named_and_idempotent() {
        let s = sm();
        let a = s.create_segment("people").unwrap();
        let b = s.create_segment("people").unwrap();
        assert_eq!(a, b);
        assert_eq!(s.segment("people").unwrap(), a);
        assert!(s.segment("nope").is_err());
    }

    #[test]
    fn committed_insert_is_readable() {
        let s = sm();
        let seg = s.create_segment("t").unwrap();
        let txn = TxnId::new(1);
        s.begin(txn).unwrap();
        let rid = s.insert(txn, seg, b"row").unwrap();
        s.commit(txn).unwrap();
        assert_eq!(s.get(seg, rid).unwrap(), b"row");
    }

    #[test]
    fn abort_rolls_back_insert_update_delete() {
        let s = sm();
        let seg = s.create_segment("t").unwrap();
        // Committed baseline row.
        let t0 = TxnId::new(1);
        s.begin(t0).unwrap();
        let keep = s.insert(t0, seg, b"keep-v1").unwrap();
        let dead = s.insert(t0, seg, b"to-die").unwrap();
        s.commit(t0).unwrap();
        // A transaction that does all three kinds of damage, then aborts.
        let t1 = TxnId::new(2);
        s.begin(t1).unwrap();
        let fresh = s.insert(t1, seg, b"phantom").unwrap();
        s.update(t1, seg, keep, b"keep-v2").unwrap();
        s.delete(t1, seg, dead).unwrap();
        s.abort(t1).unwrap();
        // Everything is as before t1.
        assert!(s.get(seg, fresh).is_err(), "inserted row must vanish");
        assert_eq!(s.get(seg, keep).unwrap(), b"keep-v1");
        assert_eq!(s.get(seg, dead).unwrap(), b"to-die");
    }

    #[test]
    fn scan_reflects_transactional_state() {
        let s = sm();
        let seg = s.create_segment("t").unwrap();
        let txn = TxnId::new(1);
        s.begin(txn).unwrap();
        for i in 0..10 {
            s.insert(txn, seg, format!("row{i}").as_bytes()).unwrap();
        }
        s.commit(txn).unwrap();
        assert_eq!(s.scan(seg).unwrap().len(), 10);
    }

    #[test]
    fn read_only_commit_skips_the_force() {
        let s = sm();
        let seg = s.create_segment("t").unwrap();
        let w = TxnId::new(1);
        s.begin(w).unwrap();
        let rid = s.insert(w, seg, b"row").unwrap();
        s.commit(w).unwrap();
        s.metrics().enable();
        let forces_before = s.metrics().wal.forces.get();
        // Reads only: no bytes worth a sync.
        let r = TxnId::new(2);
        s.begin(r).unwrap();
        assert_eq!(s.get(seg, rid).unwrap(), b"row");
        s.commit(r).unwrap();
        assert_eq!(s.metrics().wal.forces.get(), forces_before);
        // A writer still pays (exactly one, via the sequencer).
        let w2 = TxnId::new(3);
        s.begin(w2).unwrap();
        s.update(w2, seg, rid, b"row2").unwrap();
        s.commit(w2).unwrap();
        assert_eq!(s.metrics().wal.forces.get(), forces_before + 1);
        // An aborted read-only txn is equally free.
        let r2 = TxnId::new(4);
        s.begin(r2).unwrap();
        s.abort(r2).unwrap();
        assert_eq!(s.metrics().wal.forces.get(), forces_before + 1);
    }

    #[test]
    fn catalog_round_trips() {
        let entries = vec![
            ("alpha".to_string(), 1, vec![PageId::new(2), PageId::new(3)]),
            ("beta".to_string(), 2, vec![]),
        ];
        let enc = encode_catalog(&entries, 7);
        let (dec, next) = decode_catalog(&enc).unwrap();
        assert_eq!(dec, entries);
        assert_eq!(next, 7);
    }

    #[test]
    fn catalog_decode_rejects_truncation() {
        let entries = vec![("alpha".to_string(), 1, vec![PageId::new(2)])];
        let enc = encode_catalog(&entries, 3);
        assert!(decode_catalog(&enc[..enc.len() - 3]).is_err());
    }

    #[test]
    fn persistent_database_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("reach-sm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rid;
        {
            let s = StorageManager::open(&dir, 32).unwrap();
            let seg = s.create_segment("docs").unwrap();
            let txn = TxnId::new(1);
            s.begin(txn).unwrap();
            rid = s.insert(txn, seg, b"durable doc").unwrap();
            s.commit(txn).unwrap();
            s.checkpoint().unwrap();
        }
        let s = StorageManager::open(&dir, 32).unwrap();
        let seg = s.segment("docs").unwrap();
        assert_eq!(s.get(seg, rid).unwrap(), b"durable doc");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_catalog_round_trips() {
        let entries = vec![
            IndexEntry {
                name: "idx.person.age".to_string(),
                id: 1,
                root: PageId::new(9),
                max_node_entries: 0,
            },
            IndexEntry {
                name: "idx.doc.title".to_string(),
                id: 2,
                root: PageId::new(12),
                max_node_entries: 4,
            },
        ];
        let enc = encode_index_catalog(&entries, 3);
        let (dec, next) = decode_index_catalog(&enc).unwrap();
        assert_eq!(dec, entries);
        assert_eq!(next, 3);
        assert!(decode_index_catalog(&enc[..enc.len() - 2]).is_err());
    }

    #[test]
    fn index_create_is_idempotent_by_name() {
        let s = sm();
        let a = s.create_index("idx.a").unwrap();
        let b = s.create_index("idx.a").unwrap();
        let c = s.create_index("idx.b").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let names = s.index_names().unwrap();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&("idx.a".to_string(), a)));
    }

    #[test]
    fn index_insert_lookup_delete_under_commit() {
        let s = sm();
        let idx = s.create_index("idx").unwrap();
        let txn = TxnId::new(1);
        s.begin(txn).unwrap();
        assert!(s.index_insert(txn, idx, b"alpha", 10).unwrap());
        assert!(s.index_insert(txn, idx, b"alpha", 11).unwrap());
        assert!(!s.index_insert(txn, idx, b"alpha", 10).unwrap());
        assert!(s.index_insert(txn, idx, b"beta", 20).unwrap());
        s.commit(txn).unwrap();
        assert_eq!(s.index_lookup(idx, b"alpha").unwrap(), vec![10, 11]);
        assert_eq!(s.index_len(idx).unwrap(), 3);
        let t2 = TxnId::new(2);
        s.begin(t2).unwrap();
        assert!(s.index_delete(t2, idx, b"alpha", 10).unwrap());
        assert!(!s.index_delete(t2, idx, b"alpha", 10).unwrap());
        s.commit(t2).unwrap();
        assert_eq!(s.index_lookup(idx, b"alpha").unwrap(), vec![11]);
        use std::ops::Bound;
        let all = s
            .index_range(idx, Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(all, vec![(b"alpha".to_vec(), 11), (b"beta".to_vec(), 20)]);
    }

    #[test]
    fn index_abort_rolls_back_inserts_and_deletes() {
        let s = sm();
        let idx = s.create_index_with("idx", Some(3)).unwrap();
        let t0 = TxnId::new(1);
        s.begin(t0).unwrap();
        for i in 0..20u64 {
            s.index_insert(t0, idx, format!("k{i:03}").as_bytes(), i)
                .unwrap();
        }
        s.commit(t0).unwrap();
        let before = s
            .index_range(idx, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            .unwrap();
        // A transaction that inserts (forcing splits at fanout 3) and
        // deletes, then aborts: logical undo must restore the exact set
        // even though the split page writes stay (they're SYSTEM_TXN).
        let t1 = TxnId::new(2);
        s.begin(t1).unwrap();
        for i in 100..140u64 {
            s.index_insert(t1, idx, format!("k{i:03}").as_bytes(), i)
                .unwrap();
        }
        for i in (0..20u64).step_by(2) {
            s.index_delete(t1, idx, format!("k{i:03}").as_bytes(), i)
                .unwrap();
        }
        s.abort(t1).unwrap();
        let after = s
            .index_range(idx, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            .unwrap();
        assert_eq!(after, before);
    }

    #[test]
    fn index_survives_crash_reopen() {
        let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
        let wal = Arc::new(WriteAheadLog::in_memory());
        let (s, _) = StorageManager::open_with(Arc::clone(&disk), Arc::clone(&wal), 64).unwrap();
        let idx = s.create_index_with("idx", Some(4)).unwrap();
        let t = TxnId::new(1);
        s.begin(t).unwrap();
        for i in 0..50u64 {
            s.index_insert(t, idx, format!("key{i:04}").as_bytes(), i)
                .unwrap();
        }
        s.commit(t).unwrap();
        // A loser in flight at the crash: must be undone on reopen.
        let loser = TxnId::new(2);
        s.begin(loser).unwrap();
        s.index_insert(loser, idx, b"phantom", 999).unwrap();
        s.index_delete(loser, idx, b"key0007", 7).unwrap();
        // Crash: reopen over the surviving device and log image. Nothing
        // was checkpointed, so redo replays every tree page write.
        let wal2 = Arc::new(WriteAheadLog::in_memory_from(wal.image().unwrap()));
        let (s2, report) = StorageManager::open_with(disk, wal2, 64).unwrap();
        assert_eq!(report.losers, vec![loser]);
        let idx2 = s2
            .index_names()
            .unwrap()
            .into_iter()
            .find(|(n, _)| n == "idx")
            .map(|(_, id)| id)
            .unwrap();
        assert_eq!(idx2, idx);
        assert_eq!(s2.index_len(idx2).unwrap(), 50);
        assert!(s2.index_lookup(idx2, b"phantom").unwrap().is_empty());
        assert_eq!(s2.index_lookup(idx2, b"key0007").unwrap(), vec![7]);
    }
}
