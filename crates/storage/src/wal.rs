//! The write-ahead log.
//!
//! Physiological logging: each record names a page and slot plus the
//! before/after payload images, so redo is `put_at(slot, after)` and undo
//! is `put_at(slot, before)` / `delete(slot)` regardless of where the
//! bytes physically sit on the page after compaction.
//!
//! Frames on the log are `len(u32) | fnv1a(u32) | payload`, so a torn
//! tail (crash mid-append) is detected and cleanly ignored by replay.
//!
//! Durability is provided by a **group-commit sequencer**: committers
//! publish their record with [`WriteAheadLog::append`], then call
//! [`WriteAheadLog::force_up_to`] with the end offset of that record.
//! One caller becomes the *leader*, optionally waits a short
//! `group_window` so concurrent committers can append into the batch,
//! and issues a single `sync_data` that covers everyone appended so
//! far; the rest are *followers* that sleep on the sequencer's condvar
//! until the forced LSN passes their record. Requests already behind
//! the forced LSN (read-only commits, back-to-back forces) return
//! without syncing at all.
//!
//! **Truncation.** The checkpointer bounds the log by calling
//! [`WriteAheadLog::truncate_prefix`] with a cut LSN below which no
//! record is needed for redo or undo. LSNs are *logical* and never
//! reused: the first 8 bytes of the log store the base LSN (the LSN of
//! the first surviving frame), so a record's physical offset is
//! `lsn - base + 8`. A fresh log has `base == FIRST_LSN` and the header
//! byte-for-byte compatible with the pre-truncation format (whose
//! reserved zero header decodes as `FIRST_LSN`). File-backed logs
//! truncate crash-atomically: the retained tail is written to a temp
//! file, synced, and renamed over the log.

use reach_common::fault::{FaultInjector, FaultPoint, WriteOutcome};
use reach_common::obs::Stage;
use reach_common::sync::{Condvar, Mutex};
use reach_common::{MetricsRegistry, PageId, ReachError, Result, TxnId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Log sequence number: byte offset of the record's frame on the log.
/// LSN 0 is reserved as "nil" (pages start with `lsn = 0`), so the first
/// real frame is written at offset [`FIRST_LSN`].
pub type Lsn = u64;

/// Offset of the first frame. Leaving byte 0 unused keeps `Lsn = 0`
/// unambiguous as "never touched by any logged operation".
pub const FIRST_LSN: Lsn = 8;

/// Everything the storage layer ever logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Transaction start.
    Begin {
        /// The starting transaction.
        txn: TxnId,
    },
    /// Transaction successfully committed (log forced first).
    Commit {
        /// The committing transaction.
        txn: TxnId,
    },
    /// Transaction rolled back (all undo already applied).
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// A record was inserted at (page, slot).
    Insert {
        /// The inserting transaction.
        txn: TxnId,
        /// Page the record landed on.
        page: PageId,
        /// Slot within the page.
        slot: u16,
        /// The inserted bytes (the redo image; undo deletes the slot).
        payload: Vec<u8>,
    },
    /// A record was updated in place.
    Update {
        /// The updating transaction.
        txn: TxnId,
        /// Page holding the record.
        page: PageId,
        /// Slot within the page.
        slot: u16,
        /// Pre-update bytes (the undo image).
        before: Vec<u8>,
        /// Post-update bytes (the redo image).
        after: Vec<u8>,
    },
    /// A record was deleted; `before` is kept for undo.
    Delete {
        /// The deleting transaction.
        txn: TxnId,
        /// Page the record lived on.
        page: PageId,
        /// Slot within the page.
        slot: u16,
        /// The deleted bytes (the undo image).
        before: Vec<u8>,
    },
    /// Compensation record: the redo image of an undo step. `undo_next`
    /// points at the next record of the same txn still to be undone.
    Clr {
        /// The transaction being rolled back.
        txn: TxnId,
        /// Page the undo step touched.
        page: PageId,
        /// Slot within the page.
        slot: u16,
        /// `Some(image)` restores the image; `None` deletes the slot.
        restore: Option<Vec<u8>>,
        /// LSN of the next record of the same txn still to be undone.
        undo_next: Lsn,
    },
    /// Logical index insertion: `(key, oid)` entered `index` on behalf
    /// of `txn`. Redo is a no-op (the B+Tree's page writes are logged
    /// physically under the system transaction and replayed there);
    /// undo re-descends the *current* tree and deletes the pair, so
    /// structure changes (splits) made on the way in never need
    /// physical undo.
    IndexInsert {
        /// The inserting transaction.
        txn: TxnId,
        /// The index the pair entered (catalog id).
        index: u64,
        /// Memcomparable key bytes.
        key: Vec<u8>,
        /// The indexed object/record id.
        oid: u64,
    },
    /// Logical index deletion: `(key, oid)` left `index` on behalf of
    /// `txn`. Undo re-inserts the pair through the current tree.
    IndexDelete {
        /// The deleting transaction.
        txn: TxnId,
        /// The index the pair left (catalog id).
        index: u64,
        /// Memcomparable key bytes.
        key: Vec<u8>,
        /// The indexed object/record id.
        oid: u64,
    },
    /// Compensation record for one undone logical index operation.
    /// Carries no image: the compensating tree mutation is logged
    /// physically under the system transaction, and re-applying a
    /// logical undo is idempotent (set semantics), so restart-undo
    /// only needs the progress count.
    IndexClr {
        /// The transaction being rolled back.
        txn: TxnId,
        /// LSN of the next record of the same txn still to be undone.
        undo_next: Lsn,
    },
    /// Start of a fuzzy checkpoint. Appended before the checkpointer
    /// gathers its tables; its LSN anchors the truncation cut so the
    /// Begin/End pair itself always survives truncation.
    BeginCheckpoint,
    /// End of a fuzzy checkpoint: the dirty-page table (page → recovery
    /// LSN: earliest record that may not be reflected on disk) and the
    /// active *writer* table (txn → first-write LSN) captured since the
    /// matching [`WalRecord::BeginCheckpoint`].
    EndCheckpoint {
        /// Dirty pages still in the buffer pool with their rec LSNs.
        dirty: Vec<(PageId, Lsn)>,
        /// Active writing transactions with their first-write LSNs.
        active: Vec<(TxnId, Lsn)>,
    },
    /// Two-phase commit: the participant has force-logged everything it
    /// needs to commit `txn` and is now *in doubt*, bound by the
    /// coordinator's decision for global transaction `gid`. Recovery
    /// treats a prepared-but-undecided txn as neither winner nor loser
    /// until the coordinator log resolves it (presumed abort: no
    /// decision record means abort).
    Prepare {
        /// The prepared local transaction.
        txn: TxnId,
        /// The global transaction id assigned by the coordinator.
        gid: u64,
    },
    /// Coordinator log only: the global transaction committed. Forced
    /// before any participant is told to commit; its absence after a
    /// crash means the global transaction aborted (presumed abort).
    CoordCommit {
        /// The committed global transaction id.
        gid: u64,
        /// Participant shard ids, for audit and resolution.
        participants: Vec<u32>,
    },
    /// Coordinator log only: the global transaction aborted. Written
    /// lazily (presumed abort makes it advisory, not required), but it
    /// lets resolution answer without waiting for doubt to expire.
    CoordAbort {
        /// The aborted global transaction id.
        gid: u64,
    },
}

impl WalRecord {
    /// The transaction a record belongs to (checkpoints belong to none).
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Begin { txn }
            | WalRecord::Commit { txn }
            | WalRecord::Abort { txn }
            | WalRecord::Insert { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::Clr { txn, .. }
            | WalRecord::IndexInsert { txn, .. }
            | WalRecord::IndexDelete { txn, .. }
            | WalRecord::IndexClr { txn, .. }
            | WalRecord::Prepare { txn, .. } => Some(*txn),
            WalRecord::BeginCheckpoint
            | WalRecord::EndCheckpoint { .. }
            | WalRecord::CoordCommit { .. }
            | WalRecord::CoordAbort { .. } => None,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        match self {
            WalRecord::Begin { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            WalRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            WalRecord::Abort { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            WalRecord::Insert {
                txn,
                page,
                slot,
                payload,
            } => {
                out.push(4);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&page.raw().to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
                put_bytes(&mut out, payload);
            }
            WalRecord::Update {
                txn,
                page,
                slot,
                before,
                after,
            } => {
                out.push(5);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&page.raw().to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
                put_bytes(&mut out, before);
                put_bytes(&mut out, after);
            }
            WalRecord::Delete {
                txn,
                page,
                slot,
                before,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&page.raw().to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
                put_bytes(&mut out, before);
            }
            WalRecord::Clr {
                txn,
                page,
                slot,
                restore,
                undo_next,
            } => {
                out.push(7);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&page.raw().to_le_bytes());
                out.extend_from_slice(&slot.to_le_bytes());
                out.extend_from_slice(&undo_next.to_le_bytes());
                match restore {
                    Some(img) => {
                        out.push(1);
                        put_bytes(&mut out, img);
                    }
                    None => out.push(0),
                }
            }
            WalRecord::IndexInsert {
                txn,
                index,
                key,
                oid,
            } => {
                out.push(10);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&oid.to_le_bytes());
                put_bytes(&mut out, key);
            }
            WalRecord::IndexDelete {
                txn,
                index,
                key,
                oid,
            } => {
                out.push(11);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&index.to_le_bytes());
                out.extend_from_slice(&oid.to_le_bytes());
                put_bytes(&mut out, key);
            }
            WalRecord::IndexClr { txn, undo_next } => {
                out.push(12);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&undo_next.to_le_bytes());
            }
            WalRecord::BeginCheckpoint => {
                out.push(8);
            }
            WalRecord::EndCheckpoint { dirty, active } => {
                out.push(9);
                out.extend_from_slice(&(dirty.len() as u32).to_le_bytes());
                for (p, rec_lsn) in dirty {
                    out.extend_from_slice(&p.raw().to_le_bytes());
                    out.extend_from_slice(&rec_lsn.to_le_bytes());
                }
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for (t, first_lsn) in active {
                    out.extend_from_slice(&t.raw().to_le_bytes());
                    out.extend_from_slice(&first_lsn.to_le_bytes());
                }
            }
            WalRecord::Prepare { txn, gid } => {
                out.push(13);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&gid.to_le_bytes());
            }
            WalRecord::CoordCommit { gid, participants } => {
                out.push(14);
                out.extend_from_slice(&gid.to_le_bytes());
                out.extend_from_slice(&(participants.len() as u32).to_le_bytes());
                for p in participants {
                    out.extend_from_slice(&p.to_le_bytes());
                }
            }
            WalRecord::CoordAbort { gid } => {
                out.push(15);
                out.extend_from_slice(&gid.to_le_bytes());
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        let mut c = Cursor { buf, pos: 0 };
        let kind = c.u8()?;
        let rec = match kind {
            1 => WalRecord::Begin {
                txn: TxnId::new(c.u64()?),
            },
            2 => WalRecord::Commit {
                txn: TxnId::new(c.u64()?),
            },
            3 => WalRecord::Abort {
                txn: TxnId::new(c.u64()?),
            },
            4 => WalRecord::Insert {
                txn: TxnId::new(c.u64()?),
                page: PageId::new(c.u64()?),
                slot: c.u16()?,
                payload: c.bytes()?,
            },
            5 => WalRecord::Update {
                txn: TxnId::new(c.u64()?),
                page: PageId::new(c.u64()?),
                slot: c.u16()?,
                before: c.bytes()?,
                after: c.bytes()?,
            },
            6 => WalRecord::Delete {
                txn: TxnId::new(c.u64()?),
                page: PageId::new(c.u64()?),
                slot: c.u16()?,
                before: c.bytes()?,
            },
            7 => {
                let txn = TxnId::new(c.u64()?);
                let page = PageId::new(c.u64()?);
                let slot = c.u16()?;
                let undo_next = c.u64()?;
                let restore = if c.u8()? == 1 { Some(c.bytes()?) } else { None };
                WalRecord::Clr {
                    txn,
                    page,
                    slot,
                    restore,
                    undo_next,
                }
            }
            10 => WalRecord::IndexInsert {
                txn: TxnId::new(c.u64()?),
                index: c.u64()?,
                oid: c.u64()?,
                key: c.bytes()?,
            },
            11 => WalRecord::IndexDelete {
                txn: TxnId::new(c.u64()?),
                index: c.u64()?,
                oid: c.u64()?,
                key: c.bytes()?,
            },
            12 => WalRecord::IndexClr {
                txn: TxnId::new(c.u64()?),
                undo_next: c.u64()?,
            },
            8 => WalRecord::BeginCheckpoint,
            9 => {
                let nd = c.u32()? as usize;
                let mut dirty = Vec::with_capacity(nd);
                for _ in 0..nd {
                    dirty.push((PageId::new(c.u64()?), c.u64()?));
                }
                let na = c.u32()? as usize;
                let mut active = Vec::with_capacity(na);
                for _ in 0..na {
                    active.push((TxnId::new(c.u64()?), c.u64()?));
                }
                WalRecord::EndCheckpoint { dirty, active }
            }
            13 => WalRecord::Prepare {
                txn: TxnId::new(c.u64()?),
                gid: c.u64()?,
            },
            14 => {
                let gid = c.u64()?;
                let n = c.u32()? as usize;
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(c.u32()?);
                }
                WalRecord::CoordCommit { gid, participants }
            }
            15 => WalRecord::CoordAbort { gid: c.u64()? },
            k => return Err(ReachError::WalCorrupt(format!("unknown record kind {k}"))),
        };
        Ok(rec)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(ReachError::WalCorrupt("truncated record".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
}

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

enum Sink {
    Mem(Vec<u8>),
    File { file: File, len: u64, path: PathBuf },
}

/// The sink plus every counter that must move atomically with it.
/// `unforced` lives under the same lock as the bytes themselves so a
/// concurrent force can never sync an append's bytes and then watch the
/// append add them to the counter afterwards.
struct SinkState {
    sink: Sink,
    /// Bytes appended but not yet forced.
    unforced: u64,
    /// LSN of the first surviving frame (== the value persisted in the
    /// 8-byte log header). Physical offset of `lsn` is
    /// `lsn - base + FIRST_LSN`.
    base: Lsn,
    /// When set (oracle runs), bytes dropped by truncation are retained
    /// here so [`WriteAheadLog::scan_all`] can reconstruct the full
    /// append history.
    archive: Option<Vec<u8>>,
}

impl SinkState {
    /// Physical length of the sink in bytes (header included).
    fn phys_len(&self) -> u64 {
        match &self.sink {
            Sink::Mem(buf) => buf.len() as u64,
            Sink::File { len, .. } => *len,
        }
    }

    /// Logical tail LSN (== next LSN to be assigned).
    fn tail(&self) -> Lsn {
        self.base + (self.phys_len() - FIRST_LSN)
    }
}

/// Decode a log header into its base LSN. The pre-truncation format
/// reserved these bytes as zero, which decodes as [`FIRST_LSN`].
fn parse_base(header: &[u8]) -> Lsn {
    let raw = u64::from_le_bytes(header[..8].try_into().unwrap());
    if raw == 0 {
        FIRST_LSN
    } else {
        raw
    }
}

/// Commit-sequencer state, guarded by its own mutex (never held across
/// the sync itself — followers park on the condvar while the leader
/// works with only the sink lock).
struct GroupState {
    /// Log tail (byte offset) covered by the last successful force:
    /// every byte below this offset is durable.
    forced_lsn: Lsn,
    /// Whether a leader is currently inside its window + sync.
    forcing: bool,
}

/// Default leader batching window for file-backed logs (~100µs): long
/// enough for concurrent committers to publish into the batch, far
/// shorter than the fsync it amortizes.
pub const DEFAULT_GROUP_WINDOW: Duration = Duration::from_micros(100);

/// What a salvage scan found on the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// Every complete, checksum-valid frame, in log order.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Trailing bytes discarded because they did not form a complete,
    /// checksum-valid frame — the torn tail of a mid-append crash.
    pub salvaged_bytes: u64,
}

/// An append-only, crash-consistent log of [`WalRecord`]s.
pub struct WriteAheadLog {
    sink: Mutex<SinkState>,
    /// Commit sequencer (see module docs).
    group: Mutex<GroupState>,
    /// Followers wait here for the leader's sync to cover their record.
    group_cv: Condvar,
    /// Group commit on/off; off = every force syncs privately (the
    /// pre-group baseline, kept for comparison benchmarks).
    group_enabled: AtomicBool,
    /// Leader batching window in nanoseconds (applied to file sinks
    /// only — an in-memory sink has no sync worth amortizing).
    group_window_ns: AtomicU64,
    /// Optional fault injector consulted on every append/force.
    injector: Mutex<Option<Arc<FaultInjector>>>,
    /// Optional shared registry; appends and forces record into it
    /// when observability is enabled.
    metrics: Mutex<Option<Arc<MetricsRegistry>>>,
}

impl WriteAheadLog {
    /// A log held entirely in memory (tests, benchmarks).
    pub fn in_memory() -> Self {
        Self::in_memory_from(FIRST_LSN.to_le_bytes().to_vec())
    }

    /// An in-memory log rebuilt from a raw byte image — the torture
    /// harness's "reboot": the image captured at crash time becomes the
    /// surviving log of the restarted system. Surviving bytes are by
    /// definition durable, so the forced LSN starts at the image tail.
    pub fn in_memory_from(mut image: Vec<u8>) -> Self {
        if image.len() < FIRST_LSN as usize {
            image.resize(FIRST_LSN as usize, 0);
        }
        let base = parse_base(&image);
        let forced = base + (image.len() as u64 - FIRST_LSN);
        WriteAheadLog {
            sink: Mutex::new(SinkState {
                sink: Sink::Mem(image),
                unforced: 0,
                base,
                archive: None,
            }),
            group: Mutex::new(GroupState {
                forced_lsn: forced,
                forcing: false,
            }),
            group_cv: Condvar::new(),
            group_enabled: AtomicBool::new(true),
            group_window_ns: AtomicU64::new(DEFAULT_GROUP_WINDOW.as_nanos() as u64),
            injector: Mutex::new(None),
            metrics: Mutex::new(None),
        }
    }

    /// A log backed by a file, appending after any existing records.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut len = file.metadata()?.len();
        if len < FIRST_LSN {
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&FIRST_LSN.to_le_bytes())?;
            len = FIRST_LSN;
        }
        let mut header = [0u8; FIRST_LSN as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        let base = parse_base(&header);
        let forced = base + (len - FIRST_LSN);
        Ok(WriteAheadLog {
            sink: Mutex::new(SinkState {
                sink: Sink::File {
                    file,
                    len,
                    path: path.to_path_buf(),
                },
                unforced: 0,
                base,
                archive: None,
            }),
            group: Mutex::new(GroupState {
                forced_lsn: forced,
                forcing: false,
            }),
            group_cv: Condvar::new(),
            group_enabled: AtomicBool::new(true),
            group_window_ns: AtomicU64::new(DEFAULT_GROUP_WINDOW.as_nanos() as u64),
            injector: Mutex::new(None),
            metrics: Mutex::new(None),
        })
    }

    /// Turn the group-commit sequencer on or off. Off restores the
    /// classic one-private-sync-per-force behaviour (the E16 baseline).
    pub fn set_group_commit(&self, enabled: bool) {
        self.group_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the group-commit sequencer is active.
    pub fn group_commit_enabled(&self) -> bool {
        self.group_enabled.load(Ordering::Relaxed)
    }

    /// Set the leader batching window (file sinks only). Zero disables
    /// the wait: the leader syncs whatever has been appended so far.
    pub fn set_group_window(&self, window: Duration) {
        self.group_window_ns
            .store(window.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Attach a fault injector: every `append` checks `WalAppend` and
    /// every `force` checks `WalForce` before touching the sink.
    pub fn set_injector(&self, injector: Arc<FaultInjector>) {
        *self.injector.lock() = Some(injector);
    }

    fn injector(&self) -> Option<Arc<FaultInjector>> {
        self.injector.lock().clone()
    }

    /// Attach the shared metrics registry (same pattern as the fault
    /// injector): appends count records/bytes and forces record a
    /// [`Stage::WalForce`] span, all gated on the registry switch.
    pub fn set_metrics(&self, metrics: Arc<MetricsRegistry>) {
        *self.metrics.lock() = Some(metrics);
    }

    fn metrics(&self) -> Option<Arc<MetricsRegistry>> {
        self.metrics.lock().clone()
    }

    /// The raw byte image of the whole log (frames plus any torn tail).
    pub fn image(&self) -> Result<Vec<u8>> {
        match &mut self.sink.lock().sink {
            Sink::Mem(buf) => Ok(buf.clone()),
            Sink::File { file, len, .. } => {
                let mut buf = vec![0u8; *len as usize];
                file.seek(SeekFrom::Start(0))?;
                file.read_exact(&mut buf)?;
                Ok(buf)
            }
        }
    }

    /// The byte image a crash would actually leave behind: the log
    /// truncated at the last successful force. `image()` on a memory
    /// sink keeps unforced bytes (the append-crash sweep models its
    /// own torn tails); this accessor models losing them, which is
    /// what the force-crash torture needs.
    pub fn durable_image(&self) -> Result<Vec<u8>> {
        // Read forced first: it only grows, and the prefix it covered
        // can never be truncated (the cut is always below it).
        let forced = self.forced_lsn();
        let mut image = self.image()?;
        let base = parse_base(&image);
        let durable = (forced.max(base) - base + FIRST_LSN) as usize;
        if image.len() > durable {
            image.truncate(durable);
        }
        Ok(image)
    }

    /// Append a record, returning its LSN. The record is buffered; call
    /// [`WriteAheadLog::force`] (or [`WriteAheadLog::force_up_to`] with
    /// the end offset from [`WriteAheadLog::append_bounded`]) to make
    /// it durable.
    pub fn append(&self, rec: &WalRecord) -> Result<Lsn> {
        self.append_bounded(rec).map(|(lsn, _)| lsn)
    }

    /// Append a record, returning `(lsn, end)`: its start offset and
    /// the offset just past its frame. `end` is the precise
    /// [`WriteAheadLog::force_up_to`] target that makes this record
    /// durable — committers publish, then wait on exactly their own
    /// record instead of whatever the tail has grown to.
    pub fn append_bounded(&self, rec: &WalRecord) -> Result<(Lsn, Lsn)> {
        let payload = rec.encode();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Fault window: a torn append persists a byte-precise prefix of
        // the frame (the crash tore the write); a failed one persists
        // nothing at all.
        if let Some(inj) = self.injector() {
            match inj.check(FaultPoint::WalAppend) {
                WriteOutcome::Proceed => {}
                WriteOutcome::Fail => {
                    return Err(ReachError::Io("injected fault at wal_append".into()))
                }
                WriteOutcome::Torn { keep } => {
                    let keep = keep.min(frame.len().saturating_sub(1));
                    Self::write_raw(&mut self.sink.lock(), &frame[..keep])?;
                    return Err(ReachError::Io(format!(
                        "injected torn wal_append: {keep} of {} bytes persisted",
                        frame.len()
                    )));
                }
                WriteOutcome::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
            }
        }
        let (lsn, end) = {
            let mut st = self.sink.lock();
            let lsn = Self::write_raw(&mut st, &frame)?;
            // Under the sink lock: a force that synced these bytes holds
            // the same lock, so it either sees the counter already
            // bumped (and resets it) or runs entirely before us.
            st.unforced += frame.len() as u64;
            (lsn, lsn + frame.len() as u64)
        };
        if let Some(m) = self.metrics() {
            if m.on() {
                m.wal.appends.inc();
                m.wal.append_bytes.add(frame.len() as u64);
            }
        }
        Ok((lsn, end))
    }

    /// Append raw bytes to the sink, returning the LSN they start at.
    fn write_raw(st: &mut SinkState, bytes: &[u8]) -> Result<Lsn> {
        let lsn = st.tail();
        match &mut st.sink {
            Sink::Mem(buf) => {
                buf.extend_from_slice(bytes);
            }
            Sink::File { file, len, .. } => {
                file.seek(SeekFrom::Start(*len))?;
                file.write_all(bytes)?;
                *len += bytes.len() as u64;
            }
        }
        Ok(lsn)
    }

    /// Force all records appended so far to stable storage (WAL rule:
    /// called before a commit is acknowledged and before a dirty page
    /// is written whose changes it describes). Routed through the group
    /// sequencer: if a concurrent force already covered the current
    /// tail this returns without syncing.
    pub fn force(&self) -> Result<()> {
        let target = self.tail();
        self.force_up_to(target)
    }

    /// Make every byte at offset `< target` durable. This is the commit
    /// sequencer: the fast path returns when the forced LSN already
    /// covers `target`; otherwise one caller leads a single sync for
    /// every record appended since the last force while the rest wait
    /// as followers.
    pub fn force_up_to(&self, target: Lsn) -> Result<()> {
        if !self.group_enabled.load(Ordering::Relaxed) {
            // Baseline mode: every caller pays a private sync.
            let tail = self.sync_sink(0)?;
            let mut g = self.group.lock();
            if tail > g.forced_lsn {
                g.forced_lsn = tail;
            }
            return Ok(());
        }
        let mut waited = false;
        loop {
            let mut g = self.group.lock();
            if g.forced_lsn >= target {
                if let Some(m) = self.metrics().filter(|m| m.on()) {
                    if waited {
                        m.wal.force_piggybacks.inc();
                    } else {
                        m.wal.force_skips.inc();
                    }
                }
                return Ok(());
            }
            if g.forcing {
                // Follower: a leader is syncing; park until it finishes,
                // then re-check (its sync may predate our record, or it
                // may have failed — in which case we take the lead).
                self.group_cv.wait(&mut g);
                waited = true;
                continue;
            }
            // Become the leader for everything appended so far.
            g.forcing = true;
            drop(g);
            let synced = self.sync_sink(self.group_window_ns.load(Ordering::Relaxed));
            let mut g = self.group.lock();
            g.forcing = false;
            if let Ok(tail) = synced {
                if tail > g.forced_lsn {
                    g.forced_lsn = tail;
                }
            }
            drop(g);
            self.group_cv.notify_all();
            // On success the captured tail necessarily covers `target`
            // (it was appended before this call). On failure the error
            // propagates to this committer; awakened followers retry
            // and surface their own errors.
            return synced.map(|_| ());
        }
    }

    /// The one real sync. Optionally waits `window_ns` so concurrent
    /// committers can append into the batch (file sinks only), then
    /// syncs the device and captures the durable tail, resetting the
    /// unforced counter under the same sink lock that serializes
    /// appends.
    fn sync_sink(&self, window_ns: u64) -> Result<Lsn> {
        if let Some(inj) = self.injector() {
            match inj.check(FaultPoint::WalForce) {
                WriteOutcome::Proceed => {}
                WriteOutcome::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                _ => return Err(ReachError::Io("injected fault at wal_force".into())),
            }
        }
        let m = self.metrics().filter(|m| m.on());
        let t0 = m.as_deref().and_then(MetricsRegistry::span_start);
        if window_ns > 0 {
            let is_file = matches!(self.sink.lock().sink, Sink::File { .. });
            if is_file {
                std::thread::sleep(Duration::from_nanos(window_ns));
            }
        }
        let mut st = self.sink.lock();
        if let Sink::File { file, .. } = &mut st.sink {
            file.sync_data()?;
        }
        let tail = st.tail();
        st.unforced = 0;
        drop(st);
        if let Some(m) = m {
            m.wal.forces.inc();
            if let Some(t0) = t0 {
                let ns = t0.elapsed().as_nanos() as u64;
                m.wal.force_latency.record(ns);
                m.record_span(Stage::WalForce, ns);
            }
        }
        Ok(tail)
    }

    /// The next LSN to be assigned (base LSN plus surviving log bytes).
    pub fn tail(&self) -> Lsn {
        self.sink.lock().tail()
    }

    /// LSN of the first surviving frame. Everything below it has been
    /// truncated away by a checkpoint. `FIRST_LSN` on a fresh log.
    pub fn base_lsn(&self) -> Lsn {
        self.sink.lock().base
    }

    /// Log tail covered by the last successful force — every byte below
    /// this offset is durable.
    pub fn forced_lsn(&self) -> Lsn {
        self.group.lock().forced_lsn
    }

    /// Scan the log from the beginning, yielding `(lsn, record)` pairs.
    /// A torn or corrupt tail ends the scan silently (crash semantics);
    /// use [`WriteAheadLog::scan_report`] when the caller needs to know
    /// how many bytes the salvage discarded.
    pub fn scan(&self) -> Result<Vec<(Lsn, WalRecord)>> {
        Ok(self.scan_report()?.records)
    }

    /// Salvage scan: every complete, checksum-valid frame from the
    /// beginning, plus a count of torn trailing bytes discarded. The
    /// scan stops at the first incomplete or checksum-failing frame —
    /// after that point no frame boundary can be trusted.
    pub fn scan_report(&self) -> Result<ScanReport> {
        Self::scan_image(&self.image()?)
    }

    /// Salvage-scan a raw log image (header + frames).
    fn scan_image(image: &[u8]) -> Result<ScanReport> {
        let base = parse_base(image);
        let mut records = Vec::new();
        let mut pos = FIRST_LSN as usize;
        while pos + 8 <= image.len() {
            let len = u32::from_le_bytes(image[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().unwrap());
            if pos + 8 + len > image.len() {
                break; // torn tail
            }
            let payload = &image[pos + 8..pos + 8 + len];
            if fnv1a(payload) != sum {
                break; // torn/corrupt tail
            }
            let lsn = base + (pos as u64 - FIRST_LSN);
            records.push((lsn, WalRecord::decode(payload)?));
            pos += 8 + len;
        }
        Ok(ScanReport {
            records,
            salvaged_bytes: (image.len() - pos) as u64,
        })
    }

    /// Retain truncated prefixes in an in-memory archive so
    /// [`WriteAheadLog::scan_all`] can reconstruct the full append
    /// history. Used by the torture oracle, which must know every frame
    /// ever appended even after checkpoints truncate the live log.
    /// Enable before the first truncation.
    pub fn set_archive(&self, enabled: bool) {
        let mut st = self.sink.lock();
        st.archive = if enabled { Some(Vec::new()) } else { None };
    }

    /// Scan the archived prefix plus the live log: every frame ever
    /// appended, in order, regardless of truncation. Requires
    /// [`WriteAheadLog::set_archive`] from birth; without it this is
    /// just [`WriteAheadLog::scan`].
    pub fn scan_all(&self) -> Result<Vec<(Lsn, WalRecord)>> {
        let mut st = self.sink.lock();
        let archive = st.archive.clone().unwrap_or_default();
        let first_base = st.base - archive.len() as u64;
        let live = match &mut st.sink {
            Sink::Mem(buf) => buf.clone(),
            Sink::File { file, len, .. } => {
                let mut buf = vec![0u8; *len as usize];
                file.seek(SeekFrom::Start(0))?;
                file.read_exact(&mut buf)?;
                buf
            }
        };
        drop(st);
        let mut full = Vec::with_capacity(FIRST_LSN as usize + archive.len() + live.len());
        full.extend_from_slice(&first_base.to_le_bytes());
        full.extend_from_slice(&archive);
        full.extend_from_slice(&live[FIRST_LSN as usize..]);
        Ok(Self::scan_image(&full)?.records)
    }

    /// Drop every frame below `cut` from the log, advancing the base
    /// LSN. Called by the checkpointer once a checkpoint guarantees no
    /// record below `cut` is needed for redo (its page effect is on
    /// stable storage) or undo (no active writer started before it).
    ///
    /// `cut` must be a frame boundary at or below the forced LSN. File
    /// sinks truncate crash-atomically (write temp + sync + rename);
    /// a crash anywhere inside leaves either the old or the new log,
    /// both of which recover correctly. Returns the bytes dropped.
    pub fn truncate_prefix(&self, cut: Lsn) -> Result<u64> {
        if let Some(inj) = self.injector() {
            match inj.check(FaultPoint::WalTruncate) {
                WriteOutcome::Proceed => {}
                WriteOutcome::Stall { millis } => {
                    std::thread::sleep(std::time::Duration::from_millis(millis));
                }
                _ => return Err(ReachError::Io("injected fault at wal_truncate".into())),
            }
        }
        // Forced only grows, so reading it before taking the sink lock
        // can only under-approximate the durable prefix — safe.
        let forced = self.forced_lsn();
        let mut st = self.sink.lock();
        if cut <= st.base {
            return Ok(0);
        }
        if cut > forced {
            return Err(ReachError::WalCorrupt(format!(
                "truncate_prefix({cut}) above forced LSN {forced}"
            )));
        }
        let drop_bytes = cut - st.base;
        let new_base = cut;
        match &mut st.sink {
            Sink::Mem(buf) => {
                let dropped: Vec<u8> = buf
                    .drain(FIRST_LSN as usize..(FIRST_LSN + drop_bytes) as usize)
                    .collect();
                buf[..FIRST_LSN as usize].copy_from_slice(&new_base.to_le_bytes());
                if let Some(arch) = &mut st.archive {
                    arch.extend_from_slice(&dropped);
                }
            }
            Sink::File { file, len, path } => {
                let keep = (*len - FIRST_LSN - drop_bytes) as usize;
                let mut dropped = vec![0u8; drop_bytes as usize];
                file.seek(SeekFrom::Start(FIRST_LSN))?;
                file.read_exact(&mut dropped)?;
                let mut rest = vec![0u8; keep];
                file.read_exact(&mut rest)?;
                let tmp = path.with_extension("truncating");
                let mut out = File::create(&tmp)?;
                out.write_all(&new_base.to_le_bytes())?;
                out.write_all(&rest)?;
                out.sync_data()?;
                std::fs::rename(&tmp, &*path)?;
                // Make the rename itself durable before any further
                // appends: without syncing the parent directory, a
                // power loss could leave the directory entry pointing
                // at the old inode while later acked commits were
                // forced into the new, now-unreachable file.
                let dir = match path.parent() {
                    Some(p) if !p.as_os_str().is_empty() => p,
                    _ => std::path::Path::new("."),
                };
                File::open(dir)?.sync_all()?;
                *file = OpenOptions::new().read(true).write(true).open(&*path)?;
                *len = FIRST_LSN + keep as u64;
                if let Some(arch) = &mut st.archive {
                    arch.extend_from_slice(&dropped);
                }
            }
        }
        st.base = new_base;
        drop(st);
        if let Some(m) = self.metrics() {
            // Ungated, like the pool counters: the torture harness and
            // E17 read these without enabling observability.
            m.ckpt.truncations.inc();
            m.ckpt.truncated_bytes.add(drop_bytes);
        }
        Ok(drop_bytes)
    }

    /// Bytes appended since the last force (0 means fully durable).
    pub fn unforced_bytes(&self) -> u64 {
        self.sink.lock().unforced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Begin { txn: TxnId::new(1) },
            WalRecord::Insert {
                txn: TxnId::new(1),
                page: PageId::new(4),
                slot: 2,
                payload: b"abc".to_vec(),
            },
            WalRecord::Update {
                txn: TxnId::new(1),
                page: PageId::new(4),
                slot: 2,
                before: b"abc".to_vec(),
                after: b"abcd".to_vec(),
            },
            WalRecord::Delete {
                txn: TxnId::new(1),
                page: PageId::new(4),
                slot: 2,
                before: b"abcd".to_vec(),
            },
            WalRecord::Clr {
                txn: TxnId::new(1),
                page: PageId::new(4),
                slot: 2,
                restore: Some(b"abcd".to_vec()),
                undo_next: 8,
            },
            WalRecord::Clr {
                txn: TxnId::new(1),
                page: PageId::new(4),
                slot: 2,
                restore: None,
                undo_next: 0,
            },
            WalRecord::IndexInsert {
                txn: TxnId::new(1),
                index: 3,
                key: b"k\x00ey".to_vec(),
                oid: 77,
            },
            WalRecord::IndexDelete {
                txn: TxnId::new(1),
                index: 3,
                key: Vec::new(),
                oid: 78,
            },
            WalRecord::IndexClr {
                txn: TxnId::new(1),
                undo_next: 40,
            },
            WalRecord::BeginCheckpoint,
            WalRecord::EndCheckpoint {
                dirty: vec![(PageId::new(4), 16), (PageId::new(7), 48)],
                active: vec![(TxnId::new(1), 24), (TxnId::new(9), 56)],
            },
            WalRecord::Prepare {
                txn: TxnId::new(1),
                gid: 900,
            },
            WalRecord::CoordCommit {
                gid: 900,
                participants: vec![0, 2, 5],
            },
            WalRecord::CoordCommit {
                gid: 901,
                participants: Vec::new(),
            },
            WalRecord::CoordAbort { gid: 902 },
            WalRecord::Commit { txn: TxnId::new(1) },
            WalRecord::Abort { txn: TxnId::new(2) },
        ]
    }

    #[test]
    fn every_record_round_trips_through_encoding() {
        for rec in sample_records() {
            let enc = rec.encode();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn memory_log_scans_in_order_with_increasing_lsns() {
        let log = WriteAheadLog::in_memory();
        let recs = sample_records();
        let lsns: Vec<_> = recs.iter().map(|r| log.append(r).unwrap()).collect();
        assert!(lsns.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(lsns[0], FIRST_LSN);
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), recs.len());
        for ((lsn, rec), (want_lsn, want)) in scanned.iter().zip(lsns.iter().zip(recs.iter())) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want);
        }
    }

    #[test]
    fn file_log_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("reach-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = WriteAheadLog::open(&path).unwrap();
            for rec in sample_records() {
                log.append(&rec).unwrap();
            }
            log.force().unwrap();
            assert_eq!(log.unforced_bytes(), 0);
        }
        let log = WriteAheadLog::open(&path).unwrap();
        let scanned = log.scan().unwrap();
        assert_eq!(
            scanned.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            sample_records()
        );
        // New appends land after the old tail.
        let lsn = log
            .append(&WalRecord::Begin { txn: TxnId::new(5) })
            .unwrap();
        assert!(lsn > FIRST_LSN);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let log = WriteAheadLog::in_memory();
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        log.append(&WalRecord::Commit { txn: TxnId::new(1) })
            .unwrap();
        // Simulate a crash that tore the last frame: corrupt its checksum.
        {
            let mut st = log.sink.lock();
            if let Sink::Mem(buf) = &mut st.sink {
                let n = buf.len();
                buf[n - 1] ^= 0xff;
            }
        }
        let scanned = log.scan().unwrap();
        assert_eq!(scanned.len(), 1);
        assert!(matches!(scanned[0].1, WalRecord::Begin { .. }));
    }

    #[test]
    fn scan_report_counts_discarded_torn_bytes() {
        let log = WriteAheadLog::in_memory();
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        let before = log.tail();
        log.append(&WalRecord::Commit { txn: TxnId::new(1) })
            .unwrap();
        let frame_len = log.tail() - before;
        // Hand-truncate the last frame: keep 3 bytes of it.
        {
            let mut st = log.sink.lock();
            if let Sink::Mem(buf) = &mut st.sink {
                buf.truncate((before + 3) as usize);
            }
        }
        let rep = log.scan_report().unwrap();
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.salvaged_bytes, 3);
        assert!(rep.salvaged_bytes < frame_len);
        // A clean log reports zero salvage.
        let clean = WriteAheadLog::in_memory();
        clean
            .append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        assert_eq!(clean.scan_report().unwrap().salvaged_bytes, 0);
    }

    #[test]
    fn image_round_trips_through_in_memory_from() {
        let log = WriteAheadLog::in_memory();
        for rec in sample_records() {
            log.append(&rec).unwrap();
        }
        let revived = WriteAheadLog::in_memory_from(log.image().unwrap());
        assert_eq!(revived.scan().unwrap(), log.scan().unwrap());
        assert_eq!(revived.tail(), log.tail());
        // And the revived log accepts new appends at the right offset.
        let lsn = revived
            .append(&WalRecord::Begin {
                txn: TxnId::new(99),
            })
            .unwrap();
        assert_eq!(lsn, log.tail());
    }

    #[test]
    fn injected_torn_append_persists_exact_prefix() {
        use reach_common::{FaultInjector, FaultPlan, FaultPoint};
        let log = WriteAheadLog::in_memory();
        log.set_injector(FaultInjector::new(FaultPlan::new().torn_at(
            FaultPoint::WalAppend,
            2,
            5,
        )));
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        let tail_before = log.tail();
        let err = log
            .append(&WalRecord::Commit { txn: TxnId::new(1) })
            .unwrap_err();
        assert!(matches!(err, ReachError::Io(_)));
        // Exactly 5 bytes of the torn frame reached the log.
        assert_eq!(log.tail(), tail_before + 5);
        // Salvage sees one good record and 5 discarded bytes.
        let rep = log.scan_report().unwrap();
        assert_eq!(rep.records.len(), 1);
        assert_eq!(rep.salvaged_bytes, 5);
        // Torn implies crash: later appends and forces are rejected.
        assert!(log
            .append(&WalRecord::Begin { txn: TxnId::new(2) })
            .is_err());
        assert!(log.force().is_err());
    }

    #[test]
    fn injected_append_failure_persists_nothing() {
        use reach_common::{FaultInjector, FaultPlan, FaultPoint};
        let log = WriteAheadLog::in_memory();
        log.set_injector(FaultInjector::new(
            FaultPlan::new().fail_at(FaultPoint::WalAppend, 1),
        ));
        let tail = log.tail();
        assert!(log
            .append(&WalRecord::Begin { txn: TxnId::new(1) })
            .is_err());
        assert_eq!(log.tail(), tail, "failed append must not persist bytes");
        // Transient: the next append goes through.
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        assert_eq!(log.scan().unwrap().len(), 1);
    }

    #[test]
    fn unforced_bytes_tracks_appends() {
        let log = WriteAheadLog::in_memory();
        assert_eq!(log.unforced_bytes(), 0);
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        assert!(log.unforced_bytes() > 0);
        log.force().unwrap();
        assert_eq!(log.unforced_bytes(), 0);
    }

    /// Regression: the unforced counter used to be updated *outside*
    /// the sink lock, so a force could sync an append's bytes and then
    /// watch the append add them to the counter — overcounting until
    /// the next reset. The invariant checked here (`unforced <= tail -
    /// forced_lsn`, reads ordered forced-first) holds exactly with the
    /// counter under the sink lock and is violated by the racy version.
    #[test]
    fn unforced_counter_consistent_under_concurrent_force() {
        let log = Arc::new(WriteAheadLog::in_memory());
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let log = Arc::clone(&log);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    log.append(&WalRecord::Begin {
                        txn: TxnId::new(t * 1_000_000 + i),
                    })
                    .unwrap();
                }
            }));
        }
        {
            let log = Arc::clone(&log);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    log.force().unwrap();
                }
            }));
        }
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(200) {
            // Read order matters: forced_lsn can only grow and tail can
            // only grow, so reading forced first and tail last makes the
            // inequality safe against concurrent progress.
            let forced = log.forced_lsn();
            let unforced = log.unforced_bytes();
            let tail = log.tail();
            assert!(
                unforced <= tail - forced.min(tail),
                "unforced counter overcounts: unforced={unforced} tail={tail} forced={forced}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        // Quiescent: one final force leaves nothing unaccounted.
        log.force().unwrap();
        assert_eq!(log.unforced_bytes(), 0);
        assert_eq!(log.forced_lsn(), log.tail());
    }

    #[test]
    fn force_up_to_skips_when_already_durable() {
        use reach_common::MetricsRegistry;
        let log = WriteAheadLog::in_memory();
        let m = MetricsRegistry::new_shared();
        m.enable();
        log.set_metrics(Arc::clone(&m));
        let (_, end_a) = log
            .append_bounded(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        log.append(&WalRecord::Commit { txn: TxnId::new(1) })
            .unwrap();
        log.force().unwrap();
        assert_eq!(m.wal.forces.get(), 1);
        // Already covered by the force above: fast path, no second sync.
        log.force_up_to(end_a).unwrap();
        log.force().unwrap();
        assert_eq!(m.wal.forces.get(), 1, "covered targets must not sync");
        assert_eq!(m.wal.force_skips.get(), 2);
        // A new append moves the tail past the forced LSN again.
        let (_, end_b) = log
            .append_bounded(&WalRecord::Begin { txn: TxnId::new(2) })
            .unwrap();
        log.force_up_to(end_b).unwrap();
        assert_eq!(m.wal.forces.get(), 2);
    }

    #[test]
    fn durable_image_drops_unforced_tail() {
        let log = WriteAheadLog::in_memory();
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        log.append(&WalRecord::Commit { txn: TxnId::new(1) })
            .unwrap();
        log.force().unwrap();
        log.append(&WalRecord::Begin { txn: TxnId::new(2) })
            .unwrap();
        // The full image keeps the unforced Begin; the durable image,
        // which is what a real crash leaves behind, does not.
        assert_eq!(log.image().unwrap().len() as u64, log.tail());
        let durable = log.durable_image().unwrap();
        assert_eq!(durable.len() as u64, log.forced_lsn());
        let revived = WriteAheadLog::in_memory_from(durable);
        let recs: Vec<_> = revived
            .scan()
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(
            recs,
            vec![
                WalRecord::Begin { txn: TxnId::new(1) },
                WalRecord::Commit { txn: TxnId::new(1) },
            ]
        );
    }

    #[test]
    fn disabled_group_commit_syncs_every_force() {
        use reach_common::MetricsRegistry;
        let log = WriteAheadLog::in_memory();
        log.set_group_commit(false);
        let m = MetricsRegistry::new_shared();
        m.enable();
        log.set_metrics(Arc::clone(&m));
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        log.force().unwrap();
        log.force().unwrap();
        log.force().unwrap();
        assert_eq!(m.wal.forces.get(), 3, "baseline mode never skips");
        assert_eq!(log.forced_lsn(), log.tail());
    }

    #[test]
    fn truncate_prefix_drops_frames_and_preserves_lsns() {
        let log = WriteAheadLog::in_memory();
        let mut starts = Vec::new();
        for rec in sample_records() {
            starts.push(log.append(&rec).unwrap());
        }
        log.force().unwrap();
        let cut = starts[3];
        let dropped = log.truncate_prefix(cut).unwrap();
        assert_eq!(dropped, cut - FIRST_LSN);
        assert_eq!(log.base_lsn(), cut);
        let recs = log.scan().unwrap();
        assert_eq!(recs.len(), sample_records().len() - 3);
        assert_eq!(recs[0].0, cut, "surviving frames keep their LSNs");
        assert_eq!(recs[0].1, sample_records()[3]);
        // Appends continue in the same logical LSN space.
        let tail_before = log.tail();
        let lsn = log
            .append(&WalRecord::Begin {
                txn: TxnId::new(77),
            })
            .unwrap();
        assert_eq!(lsn, tail_before);
        log.force().unwrap();
        // The image carries the base and round-trips through a reboot.
        let revived = WriteAheadLog::in_memory_from(log.image().unwrap());
        assert_eq!(revived.base_lsn(), cut);
        assert_eq!(revived.scan().unwrap(), log.scan().unwrap());
        assert_eq!(revived.tail(), log.tail());
        // Cuts at or below the base are no-ops.
        assert_eq!(log.truncate_prefix(cut).unwrap(), 0);
        assert_eq!(log.truncate_prefix(FIRST_LSN).unwrap(), 0);
    }

    #[test]
    fn truncate_above_forced_lsn_is_rejected() {
        let log = WriteAheadLog::in_memory();
        log.append(&WalRecord::Begin { txn: TxnId::new(1) })
            .unwrap();
        // Nothing forced yet: the unforced tail must not be cuttable.
        assert!(log.truncate_prefix(log.tail()).is_err());
        log.force().unwrap();
        assert!(log.truncate_prefix(log.tail()).is_ok());
    }

    #[test]
    fn file_log_truncation_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("reach-wal-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.log");
        let _ = std::fs::remove_file(&path);
        let cut;
        {
            let log = WriteAheadLog::open(&path).unwrap();
            let mut starts = Vec::new();
            for rec in sample_records() {
                starts.push(log.append(&rec).unwrap());
            }
            log.force().unwrap();
            cut = starts[4];
            log.truncate_prefix(cut).unwrap();
            assert_eq!(log.base_lsn(), cut);
        }
        let log = WriteAheadLog::open(&path).unwrap();
        assert_eq!(log.base_lsn(), cut);
        let recs = log.scan().unwrap();
        assert_eq!(recs.len(), sample_records().len() - 4);
        assert_eq!(recs[0].0, cut);
        assert_eq!(recs[0].1, sample_records()[4]);
        let lsn = log
            .append(&WalRecord::Begin { txn: TxnId::new(5) })
            .unwrap();
        assert_eq!(lsn, log.scan().unwrap().last().unwrap().0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn archived_scan_all_reconstructs_full_history() {
        let log = WriteAheadLog::in_memory();
        log.set_archive(true);
        let mut starts = Vec::new();
        for rec in sample_records() {
            starts.push(log.append(&rec).unwrap());
        }
        let before = log.scan().unwrap();
        log.force().unwrap();
        log.truncate_prefix(starts[5]).unwrap();
        assert!(log.scan().unwrap().len() < before.len());
        assert_eq!(log.scan_all().unwrap(), before, "archive keeps the past");
    }

    #[test]
    fn injected_truncate_fault_leaves_the_log_intact() {
        use reach_common::{FaultInjector, FaultPlan, FaultPoint};
        let log = WriteAheadLog::in_memory();
        let mut starts = Vec::new();
        for rec in sample_records() {
            starts.push(log.append(&rec).unwrap());
        }
        log.force().unwrap();
        log.set_injector(FaultInjector::new(
            FaultPlan::new().crash_at(FaultPoint::WalTruncate, 1),
        ));
        let before = log.scan().unwrap();
        assert!(log.truncate_prefix(starts[3]).is_err());
        assert_eq!(
            log.base_lsn(),
            FIRST_LSN,
            "crashed truncation drops nothing"
        );
        assert_eq!(log.scan().unwrap(), before);
        // Crash semantics: the device is dead for mutations afterwards.
        assert!(log
            .append(&WalRecord::Begin { txn: TxnId::new(9) })
            .is_err());
        assert!(log.truncate_prefix(starts[3]).is_err());
    }

    /// Concurrent committers through the sequencer: everyone's record
    /// ends up durable, and with a real (file) sink plus a batching
    /// window, far fewer syncs than commits are issued.
    #[test]
    fn group_commit_batches_concurrent_committers() {
        use reach_common::MetricsRegistry;
        let dir = std::env::temp_dir().join(format!("reach-wal-group-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("group.log");
        let _ = std::fs::remove_file(&path);
        let log = Arc::new(WriteAheadLog::open(&path).unwrap());
        log.set_group_window(Duration::from_millis(2));
        let m = MetricsRegistry::new_shared();
        m.enable();
        log.set_metrics(Arc::clone(&m));
        let threads = 8u64;
        let commits_each = 10u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..commits_each {
                    let txn = TxnId::new(t * 1000 + i + 1);
                    let (_, end) = log.append_bounded(&WalRecord::Commit { txn }).unwrap();
                    log.force_up_to(end).unwrap();
                    assert!(log.forced_lsn() >= end, "ack before durability");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let commits = threads * commits_each;
        assert_eq!(log.scan().unwrap().len() as u64, commits);
        assert_eq!(log.forced_lsn(), log.tail());
        let forces = m.wal.forces.get();
        assert!(
            forces < commits,
            "8 live committers with a 2ms window must batch: {forces} syncs for {commits} commits"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
