//! `reach-storage` — the storage manager underneath the REACH OODBMS.
//!
//! The paper builds on the EXODUS storage manager \[CDR86\]; this crate is
//! its stand-in (see DESIGN.md §2 for the substitution argument). It
//! provides exactly what the layers above need:
//!
//! * **slotted pages** ([`page`]) — variable-length records with stable
//!   slot numbers inside an 8 KiB page;
//! * **stable storage** ([`disk`]) — a file-backed and an in-memory page
//!   device behind one trait;
//! * **a buffer pool** ([`buffer`]) — fixed set of frames, pin/unpin,
//!   clock eviction, dirty-page write-back;
//! * **a write-ahead log** ([`wal`]) — physiological before/after-image
//!   records, flushed on commit;
//! * **fuzzy checkpoints** ([`checkpoint`]) — Begin/End checkpoint pairs
//!   carrying the dirty-page and active-writer tables, with log
//!   truncation below the safe cut;
//! * **recovery** ([`recovery`]) — ARIES-style analysis / redo / undo,
//!   bounded by the last complete checkpoint;
//! * **heap files** ([`heap`]) — record collections with stable
//!   [`heap::RecordId`]s and scans;
//! * **the storage manager facade** ([`sm`]) — named segments, object
//!   allocation, and the transactional hooks the Transaction PM drives.

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod checkpoint;
pub mod disk;
pub mod heap;
pub mod page;
pub mod recovery;
pub mod sm;
pub mod torture;
pub mod wal;

pub use btree::BTree;
pub use buffer::BufferPool;
pub use checkpoint::CheckpointStats;
pub use disk::{FaultDisk, FileDisk, MemDisk, StableStorage};
pub use heap::{HeapFile, RecordId};
pub use page::{Page, PAGE_SIZE};
pub use recovery::{recover, RecoveryReport};
pub use sm::{SegmentId, StorageManager};
pub use wal::{Lsn, ScanReport, WalRecord, WriteAheadLog};
