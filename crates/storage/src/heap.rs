//! Heap files: unordered collections of variable-length records.
//!
//! A heap file is a list of pages; records are addressed by a stable
//! [`RecordId`] (page + slot). The heap layer is deliberately *unlogged* —
//! the [`StorageManager`](crate::sm::StorageManager) wraps every mutation
//! in the corresponding WAL record, and recovery replays those records
//! directly against pages.

use crate::buffer::BufferPool;
use reach_common::sync::Mutex;
use reach_common::{PageId, Result};
use std::sync::Arc;

/// Durable address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId {
    /// Page the record lives on.
    pub page: PageId,
    /// Slot within the page's directory.
    pub slot: u16,
}

impl RecordId {
    /// Address the record at `(page, slot)`.
    pub fn new(page: PageId, slot: u16) -> Self {
        RecordId { page, slot }
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.page, self.slot)
    }
}

/// An unordered record collection over the buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Mutex<Vec<PageId>>,
}

impl HeapFile {
    /// An empty heap file.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: Mutex::new(Vec::new()),
        }
    }

    /// Rebuild a heap file over a known page list (catalog load).
    pub fn with_pages(pool: Arc<BufferPool>, pages: Vec<PageId>) -> Self {
        HeapFile {
            pool,
            pages: Mutex::new(pages),
        }
    }

    /// The pages belonging to this file, in allocation order.
    pub fn pages(&self) -> Vec<PageId> {
        self.pages.lock().clone()
    }

    /// Insert a record. Tries the most recently used pages first, then
    /// grows the file by one page. Returns `(rid, grew)` where `grew`
    /// tells the caller (the storage manager) that the page list — and
    /// hence the catalog — changed.
    pub fn insert(&self, payload: &[u8]) -> Result<(RecordId, bool)> {
        // Probe the last few pages; old pages regain space via deletes
        // but scanning all of them on every insert would be O(n²).
        const PROBE: usize = 4;
        let candidates: Vec<PageId> = {
            let pages = self.pages.lock();
            pages.iter().rev().take(PROBE).copied().collect()
        };
        for pid in candidates {
            let inserted = self.pool.with_page_mut(pid, |pg| {
                if pg.fits(payload.len()) {
                    pg.insert(payload).map(Some)
                } else {
                    Ok(None)
                }
            })??;
            if let Some(slot) = inserted {
                return Ok((RecordId::new(pid, slot), false));
            }
        }
        // No fit: grow the file.
        let pid = self.pool.allocate()?;
        let slot = self.pool.with_page_mut(pid, |pg| pg.insert(payload))??;
        self.pages.lock().push(pid);
        Ok((RecordId::new(pid, slot), true))
    }

    /// Read a record.
    pub fn get(&self, rid: RecordId) -> Result<Vec<u8>> {
        self.pool
            .with_page(rid.page, |pg| pg.get(rid.slot).map(|b| b.to_vec()))?
    }

    /// Update a record in place. Fails with `RecordTooLarge` if the new
    /// payload cannot fit on the record's page; callers that allow record
    /// movement should delete + re-insert instead.
    pub fn update(&self, rid: RecordId, payload: &[u8]) -> Result<()> {
        self.pool
            .with_page_mut(rid.page, |pg| pg.update(rid.slot, payload))?
    }

    /// Delete a record.
    pub fn delete(&self, rid: RecordId) -> Result<()> {
        self.pool
            .with_page_mut(rid.page, |pg| pg.delete(rid.slot))?
    }

    /// Visit live records until the visitor breaks. Payloads are handed
    /// out as borrowed slices — nothing is cloned unless the visitor
    /// copies — and `ControlFlow::Break` stops the walk without pinning
    /// the remaining pages. The callback may not mutate the file.
    pub fn for_each_while(
        &self,
        mut f: impl FnMut(RecordId, &[u8]) -> std::ops::ControlFlow<()>,
    ) -> Result<()> {
        let pages = self.pages();
        for pid in pages {
            let flow = self.pool.with_page(pid, |pg| {
                for slot in pg.live_slots() {
                    let flow = f(RecordId::new(pid, slot), pg.get(slot).expect("live slot"));
                    if flow.is_break() {
                        return flow;
                    }
                }
                std::ops::ControlFlow::Continue(())
            })?;
            if flow.is_break() {
                break;
            }
        }
        Ok(())
    }

    /// Visit every live record. The callback may not mutate the file.
    pub fn for_each(&self, mut f: impl FnMut(RecordId, &[u8])) -> Result<()> {
        self.for_each_while(|rid, data| {
            f(rid, data);
            std::ops::ControlFlow::Continue(())
        })
    }

    /// Materialized scan (convenience over [`HeapFile::for_each`]).
    pub fn scan(&self) -> Result<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each(|rid, data| out.push((rid, data.to_vec())))?;
        Ok(out)
    }

    /// The first live record, if any — stops at the first hit instead
    /// of materializing the whole file.
    pub fn first(&self) -> Result<Option<(RecordId, Vec<u8>)>> {
        let mut out = None;
        self.for_each_while(|rid, data| {
            out = Some((rid, data.to_vec()));
            std::ops::ControlFlow::Break(())
        })?;
        Ok(out)
    }

    /// Number of live records (full walk, but no payload copies).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        self.for_each(|_, _| n += 1)?;
        Ok(n)
    }

    /// Whether the file holds no live records (stops at the first one).
    pub fn is_empty(&self) -> Result<bool> {
        let mut empty = true;
        self.for_each_while(|_, _| {
            empty = false;
            std::ops::ControlFlow::Break(())
        })?;
        Ok(empty)
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("pages", &self.pages.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn heap() -> HeapFile {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16));
        HeapFile::new(pool)
    }

    #[test]
    fn insert_get_round_trip() {
        let h = heap();
        let (rid, grew) = h.insert(b"first").unwrap();
        assert!(grew, "first insert allocates the first page");
        assert_eq!(h.get(rid).unwrap(), b"first");
    }

    #[test]
    fn file_grows_over_multiple_pages() {
        let h = heap();
        let rec = vec![7u8; 2000];
        let mut rids = Vec::new();
        for _ in 0..20 {
            rids.push(h.insert(&rec).unwrap().0);
        }
        assert!(h.pages().len() >= 5, "20 × 2 KiB needs ≥ 5 pages");
        for rid in rids {
            assert_eq!(h.get(rid).unwrap(), rec);
        }
    }

    #[test]
    fn update_and_delete() {
        let h = heap();
        let (rid, _) = h.insert(b"original").unwrap();
        h.update(rid, b"patched").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"patched");
        h.delete(rid).unwrap();
        assert!(h.get(rid).is_err());
    }

    #[test]
    fn scan_sees_only_live_records() {
        let h = heap();
        let (a, _) = h.insert(b"a").unwrap();
        let (_b, _) = h.insert(b"b").unwrap();
        let (c, _) = h.insert(b"c").unwrap();
        h.delete(a).unwrap();
        let scan = h.scan().unwrap();
        let values: Vec<_> = scan.iter().map(|(_, v)| v.clone()).collect();
        assert_eq!(values, vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(h.len().unwrap(), 2);
        assert!(scan.iter().any(|(rid, _)| *rid == c));
    }

    #[test]
    fn for_each_while_stops_at_break() {
        let h = heap();
        for i in 0..10u8 {
            h.insert(&[i]).unwrap();
        }
        let mut seen = 0;
        h.for_each_while(|_, data| {
            seen += 1;
            if data[0] == 3 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        })
        .unwrap();
        assert_eq!(seen, 4, "walk must stop at the break, not finish");
        let (rid, bytes) = h.first().unwrap().unwrap();
        assert_eq!(bytes, vec![0]);
        assert!(!h.is_empty().unwrap());
        h.delete(rid).unwrap();
        assert_eq!(h.first().unwrap().unwrap().1, vec![1]);
        for (rid, _) in h.scan().unwrap() {
            h.delete(rid).unwrap();
        }
        assert!(h.is_empty().unwrap());
        assert!(h.first().unwrap().is_none());
    }

    #[test]
    fn probing_reuses_space_freed_on_last_pages() {
        let h = heap();
        let rec = vec![1u8; 3000];
        let mut rids = Vec::new();
        for _ in 0..8 {
            rids.push(h.insert(&rec).unwrap().0);
        }
        let pages_before = h.pages().len();
        // Free two records on the tail pages, re-insert two: no growth.
        h.delete(rids[6]).unwrap();
        h.delete(rids[7]).unwrap();
        let (_, grew1) = h.insert(&rec).unwrap();
        let (_, grew2) = h.insert(&rec).unwrap();
        assert!(!grew1 && !grew2);
        assert_eq!(h.pages().len(), pages_before);
    }

    #[test]
    fn with_pages_reattaches_existing_data() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 16));
        let h = HeapFile::new(Arc::clone(&pool));
        let (rid, _) = h.insert(b"survivor").unwrap();
        let pages = h.pages();
        drop(h);
        let h2 = HeapFile::with_pages(pool, pages);
        assert_eq!(h2.get(rid).unwrap(), b"survivor");
    }
}
