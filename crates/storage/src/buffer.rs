//! The buffer pool.
//!
//! A fixed set of frames caches page images between the heap-file layer
//! and [`crate::disk::StableStorage`]. Pages are pinned for
//! the duration of a closure (`with_page` / `with_page_mut`), which keeps
//! pin/unpin pairing impossible to get wrong at the call sites. Eviction
//! is the classic clock (second-chance) algorithm over unpinned frames;
//! dirty victims are written back before reuse.

use crate::disk::StableStorage;
use crate::page::Page;
use reach_common::sync::{Mutex, RwLock};
use reach_common::{MetricsRegistry, PageId, ReachError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// `rec_lsn` value of a clean frame ("no unflushed change").
const NO_REC_LSN: u64 = u64::MAX;

struct Frame {
    page: RwLock<Page>,
    pins: AtomicU32,
    dirty: AtomicBool,
    referenced: AtomicBool,
    /// Recovery LSN: a conservative lower bound on the LSN of the first
    /// log record whose effect on this page is not yet on disk.
    /// [`NO_REC_LSN`] while clean. Maintained with `fetch_min` inside
    /// the page write critical section (see `with_page_mut`), written
    /// *before* the dirty bit so a dirty-page-table capture that sees
    /// `dirty` also sees a valid bound.
    rec_lsn: AtomicU64,
}

/// Called before any dirty page is written back to the device — the
/// WAL rule's enforcement point. The storage manager installs a
/// closure that forces the log, so a page image never reaches disk
/// ahead of the log records describing its changes. Must not call
/// back into the pool (it runs under the directory lock).
pub type FlushBarrier = Arc<dyn Fn() -> Result<()> + Send + Sync>;

/// Supplies the current WAL tail LSN when a clean frame turns dirty.
/// The tail is captured *before* the mutation's log record is appended,
/// so it is a conservative (≤ actual first-record) recovery LSN. Must
/// not call back into the pool.
pub type LsnSource = Arc<dyn Fn() -> u64 + Send + Sync>;

struct Directory {
    /// page id -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> page id currently held (None = free)
    resident: Vec<Option<PageId>>,
    hand: usize,
}

/// Statistics the benchmark harness reads (a plain copy of the
/// pool's counters in the shared [`MetricsRegistry`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fetches served from a resident frame.
    pub hits: u64,
    /// Fetches that had to read from the device.
    pub misses: u64,
    /// Frames whose occupant was evicted by the clock hand.
    pub evictions: u64,
    /// Dirty pages written back (eviction or flush).
    pub writebacks: u64,
}

/// A fixed-capacity page cache over a stable-storage device.
pub struct BufferPool {
    disk: Arc<dyn StableStorage>,
    frames: Vec<Arc<Frame>>,
    dir: Mutex<Directory>,
    metrics: Arc<MetricsRegistry>,
    barrier: Mutex<Option<FlushBarrier>>,
    lsn_source: Mutex<Option<LsnSource>>,
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk` with a private registry.
    pub fn new(disk: Arc<dyn StableStorage>, capacity: usize) -> Self {
        Self::with_metrics(disk, capacity, MetricsRegistry::new_shared())
    }

    /// A pool recording hit/miss/eviction counters into a shared
    /// registry. The pool counters are ungated: they are plain relaxed
    /// adds and are read by tests and benches without enabling
    /// observability.
    pub fn with_metrics(
        disk: Arc<dyn StableStorage>,
        capacity: usize,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| {
                Arc::new(Frame {
                    page: RwLock::new(Page::new(PageId::NULL)),
                    pins: AtomicU32::new(0),
                    dirty: AtomicBool::new(false),
                    referenced: AtomicBool::new(false),
                    rec_lsn: AtomicU64::new(NO_REC_LSN),
                })
            })
            .collect();
        BufferPool {
            disk,
            frames,
            dir: Mutex::new(Directory {
                table: HashMap::new(),
                resident: vec![None; capacity],
                hand: 0,
            }),
            metrics,
            barrier: Mutex::new(None),
            lsn_source: Mutex::new(None),
        }
    }

    /// The registry this pool records into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Install the write-back barrier (see [`FlushBarrier`]). The
    /// group-commit fast path makes the common already-forced case a
    /// single lock acquisition, so calling it per write-back is cheap.
    pub fn set_flush_barrier(&self, barrier: FlushBarrier) {
        *self.barrier.lock() = Some(barrier);
    }

    /// Install the recovery-LSN source (see [`LsnSource`]). Without one
    /// the pool records `0` — "oldest possible" — which keeps every
    /// downstream bound conservative.
    pub fn set_lsn_source(&self, source: LsnSource) {
        *self.lsn_source.lock() = Some(source);
    }

    fn current_lsn(&self) -> u64 {
        let source = self.lsn_source.lock().clone();
        match source {
            Some(s) => s(),
            None => 0,
        }
    }

    fn flush_barrier(&self) -> Result<()> {
        let barrier = self.barrier.lock().clone();
        match barrier {
            Some(b) => b(),
            None => Ok(()),
        }
    }

    /// Allocate a fresh page on the device.
    pub fn allocate(&self) -> Result<PageId> {
        self.disk.allocate()
    }

    /// The underlying device.
    pub fn disk(&self) -> &Arc<dyn StableStorage> {
        &self.disk
    }

    /// Run `f` with shared access to the page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let guard = frame.page.read();
            f(&guard)
        };
        self.unpin(&frame);
        Ok(out)
    }

    /// Run `f` with exclusive access to the page; the frame is marked
    /// dirty unconditionally (callers only take `_mut` when mutating).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let frame = self.pin(id)?;
        let out = {
            let mut guard = frame.page.write();
            // Marking must happen inside the write critical section: a
            // concurrent flush swaps `dirty` to false and then takes the
            // page read lock, so with the marks outside the lock it
            // could clear a dirty bit set *before* the mutation, persist
            // the pre-mutation image, and leave the mutated page flagged
            // clean — a later eviction would silently drop the change.
            // Under the lock, the flush's read acquisition is granted
            // either before ours (it writes the old image and we
            // re-dirty afterwards) or after `f` (the image it writes
            // already includes the mutation).
            //
            // rec_lsn before the dirty bit: a dirty-page-table capture
            // that observes `dirty` must also observe a bound ≤ the
            // first log record of this mutation (which is appended after
            // `f` runs). fetch_min keeps the oldest bound if the frame
            // is already dirty.
            frame
                .rec_lsn
                .fetch_min(self.current_lsn(), Ordering::AcqRel);
            frame.dirty.store(true, Ordering::Release);
            f(&mut guard)
        };
        self.unpin(&frame);
        Ok(out)
    }

    fn pin(&self, id: PageId) -> Result<Arc<Frame>> {
        if id.is_null() {
            return Err(ReachError::PageNotFound(id));
        }
        let mut dir = self.dir.lock();
        if let Some(&idx) = dir.table.get(&id) {
            let frame = Arc::clone(&self.frames[idx]);
            frame.pins.fetch_add(1, Ordering::AcqRel);
            frame.referenced.store(true, Ordering::Release);
            self.metrics.pool.hits.inc();
            return Ok(frame);
        }
        self.metrics.pool.misses.inc();
        // Miss: choose a victim frame with the clock algorithm.
        let idx = self.find_victim(&mut dir)?;
        // Evict the old occupant (write back while still under the
        // directory lock — the frame has zero pins so no one can race us).
        if let Some(old) = dir.resident[idx] {
            let frame = &self.frames[idx];
            if frame.dirty.swap(false, Ordering::AcqRel) {
                // WAL rule: the log records describing this page's
                // changes must be durable before its image is. On
                // failure the dirty bit (and rec_lsn) must come back:
                // a clean-flagged page that never reached disk would
                // let a later checkpoint truncate its redo records.
                let wrote = self
                    .flush_barrier()
                    .and_then(|_| self.disk.write(&frame.page.read()));
                if let Err(e) = wrote {
                    frame.dirty.store(true, Ordering::Release);
                    return Err(e);
                }
                frame.rec_lsn.store(NO_REC_LSN, Ordering::Release);
                self.metrics.pool.writebacks.inc();
            }
            dir.table.remove(&old);
            self.metrics.pool.evictions.inc();
        }
        let page = self.disk.read(id)?;
        let frame = Arc::clone(&self.frames[idx]);
        *frame.page.write() = page;
        frame.pins.store(1, Ordering::Release);
        frame.dirty.store(false, Ordering::Release);
        frame.rec_lsn.store(NO_REC_LSN, Ordering::Release);
        frame.referenced.store(true, Ordering::Release);
        dir.resident[idx] = Some(id);
        dir.table.insert(id, idx);
        Ok(frame)
    }

    fn unpin(&self, frame: &Frame) {
        frame.pins.fetch_sub(1, Ordering::AcqRel);
    }

    /// Clock scan: free frame first, then an unpinned frame whose
    /// reference bit has already been cleared once.
    fn find_victim(&self, dir: &mut Directory) -> Result<usize> {
        let n = self.frames.len();
        // Two full sweeps are enough: the first clears reference bits,
        // the second must find any unpinned frame.
        for _ in 0..2 * n {
            let idx = dir.hand;
            dir.hand = (dir.hand + 1) % n;
            if dir.resident[idx].is_none() {
                return Ok(idx);
            }
            let frame = &self.frames[idx];
            if frame.pins.load(Ordering::Acquire) != 0 {
                continue;
            }
            if frame.referenced.swap(false, Ordering::AcqRel) {
                continue; // second chance
            }
            return Ok(idx);
        }
        Err(ReachError::BufferPoolExhausted)
    }

    /// Write every dirty resident page back to the device and sync it.
    pub fn flush_all(&self) -> Result<()> {
        // One barrier call covers the whole sweep: the log is forced
        // up to its current tail, which bounds every dirty page here.
        self.flush_barrier()?;
        let dir = self.dir.lock();
        for (idx, occupant) in dir.resident.iter().enumerate() {
            if occupant.is_none() {
                continue;
            }
            let frame = &self.frames[idx];
            if frame.dirty.swap(false, Ordering::AcqRel) {
                let guard = frame.page.read();
                // As in eviction: a failed write must not leave the
                // page clean-flagged (truncation safety).
                if let Err(e) = self.disk.write(&guard) {
                    frame.dirty.store(true, Ordering::Release);
                    return Err(e);
                }
                // Reset rec_lsn while still holding the read lock. A
                // writer updates rec_lsn only inside its write critical
                // section, so its update is ordered either before this
                // flush (its effect is in the image just written) or
                // after this reset (it re-arms rec_lsn afresh) — the
                // reset can never clobber a bound for a mutation the
                // image does not contain.
                frame.rec_lsn.store(NO_REC_LSN, Ordering::Release);
                drop(guard);
                self.metrics.pool.writebacks.inc();
            }
        }
        drop(dir);
        self.disk.sync()
    }

    /// The dirty-page table: every resident dirty page with its
    /// recovery LSN, as carried by a fuzzy checkpoint's
    /// `EndCheckpoint` record. A frame caught mid-clean (dirty bit
    /// still set, rec_lsn already reset) is skipped — safe because
    /// rec_lsn is only reset under the page read lock after a
    /// successful write-back, so a reset frame's on-disk image
    /// contains every mutation marked before the reset.
    pub fn dirty_page_table(&self) -> Vec<(PageId, u64)> {
        let dir = self.dir.lock();
        let mut out = Vec::new();
        for (idx, occupant) in dir.resident.iter().enumerate() {
            let Some(id) = occupant else { continue };
            let frame = &self.frames[idx];
            if !frame.dirty.load(Ordering::Acquire) {
                continue;
            }
            let rec_lsn = frame.rec_lsn.load(Ordering::Acquire);
            if rec_lsn != NO_REC_LSN {
                out.push((*id, rec_lsn));
            }
        }
        out
    }

    /// Current hit/miss/eviction counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.metrics.pool.hits.get(),
            misses: self.metrics.pool.misses.get(),
            evictions: self.metrics.pool.evictions.get(),
            writebacks: self.metrics.pool.writebacks.get(),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemDisk::new()), frames)
    }

    #[test]
    fn read_your_writes_through_the_pool() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        let slot = p
            .with_page_mut(id, |pg| pg.insert(b"cached").unwrap())
            .unwrap();
        let data = p
            .with_page(id, |pg| pg.get(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"cached");
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().hits, 1);
    }

    #[test]
    fn eviction_writes_dirty_pages_back() {
        let p = pool(2);
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        let mut slots = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let s = p
                .with_page_mut(*id, |pg| pg.insert(format!("rec{i}").as_bytes()).unwrap())
                .unwrap();
            slots.push(s);
        }
        // With 2 frames and 4 pages, at least two evictions happened and
        // every record must still be readable (via write-back + re-read).
        assert!(p.stats().evictions >= 2);
        for (i, id) in ids.iter().enumerate() {
            let data = p
                .with_page(*id, |pg| pg.get(slots[i]).unwrap().to_vec())
                .unwrap();
            assert_eq!(data, format!("rec{i}").as_bytes());
        }
    }

    #[test]
    fn flush_all_persists_to_device() {
        let disk = Arc::new(MemDisk::new());
        let p = BufferPool::new(Arc::clone(&disk) as Arc<dyn StableStorage>, 4);
        let id = p.allocate().unwrap();
        let slot = p
            .with_page_mut(id, |pg| pg.insert(b"durable").unwrap())
            .unwrap();
        p.flush_all().unwrap();
        // Read directly from the device, bypassing the pool.
        let raw = disk.read(id).unwrap();
        assert_eq!(raw.get(slot).unwrap(), b"durable");
    }

    #[test]
    fn clock_gives_referenced_frames_a_second_chance() {
        let p = pool(3);
        // Fill the three frames with A, B, C.
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let c = p.allocate().unwrap();
        for id in [a, b, c] {
            p.with_page(id, |_| ()).unwrap();
        }
        // Fault D: one sweep clears all reference bits and evicts A.
        let d = p.allocate().unwrap();
        p.with_page(d, |_| ()).unwrap();
        // Re-reference B, then fault E: the hand should skip B (bit set)
        // and evict C instead, so a later touch of B is still a hit.
        p.with_page(b, |_| ()).unwrap();
        let e = p.allocate().unwrap();
        p.with_page(e, |_| ()).unwrap();
        let before = p.stats().hits;
        p.with_page(b, |_| ()).unwrap();
        assert_eq!(
            p.stats().hits,
            before + 1,
            "B should have survived via second chance"
        );
    }

    #[test]
    fn flush_barrier_runs_before_dirty_writebacks() {
        use std::sync::atomic::AtomicU64;
        let p = pool(2);
        let calls = Arc::new(AtomicU64::new(0));
        {
            let calls = Arc::clone(&calls);
            p.set_flush_barrier(Arc::new(move || {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }));
        }
        // Dirty both frames, then fault a third page: the eviction's
        // write-back must have been preceded by a barrier call.
        let ids: Vec<_> = (0..3).map(|_| p.allocate().unwrap()).collect();
        for id in &ids[..2] {
            p.with_page_mut(*id, |pg| {
                pg.insert(b"dirty").unwrap();
            })
            .unwrap();
        }
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        p.with_page(ids[2], |_| ()).unwrap();
        assert_eq!(p.stats().writebacks, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        // flush_all calls it once for the whole sweep.
        p.flush_all().unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn dirty_page_table_tracks_first_dirtying_lsn() {
        let p = pool(4);
        let lsn = Arc::new(AtomicU64::new(100));
        {
            let lsn = Arc::clone(&lsn);
            p.set_lsn_source(Arc::new(move || lsn.load(Ordering::SeqCst)));
        }
        assert!(p.dirty_page_table().is_empty());
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pg| pg.insert(b"x").unwrap()).unwrap();
        lsn.store(200, Ordering::SeqCst);
        p.with_page_mut(b, |pg| pg.insert(b"y").unwrap()).unwrap();
        // Re-dirtying A keeps its *first* rec LSN (fetch_min).
        p.with_page_mut(a, |pg| pg.insert(b"z").unwrap()).unwrap();
        let mut dpt = p.dirty_page_table();
        dpt.sort();
        assert_eq!(dpt, vec![(a, 100), (b, 200)]);
        // Flushing cleans the table; a later dirty re-enters at the new LSN.
        p.flush_all().unwrap();
        assert!(p.dirty_page_table().is_empty());
        lsn.store(300, Ordering::SeqCst);
        p.with_page_mut(a, |pg| pg.insert(b"w").unwrap()).unwrap();
        assert_eq!(p.dirty_page_table(), vec![(a, 300)]);
    }

    #[test]
    fn concurrent_flush_never_loses_mutations() {
        // Regression: with_page_mut once set the dirty bit *before*
        // taking the page write lock, so a concurrent flush_all could
        // swap it back to false, persist the pre-mutation image, and
        // leave the mutated page flagged clean — a later flush (or
        // eviction) would then silently drop the change.
        let disk = Arc::new(MemDisk::new());
        let p = Arc::new(BufferPool::new(
            Arc::clone(&disk) as Arc<dyn StableStorage>,
            8,
        ));
        let ids: Vec<_> = (0..4).map(|_| p.allocate().unwrap()).collect();
        for id in &ids {
            p.with_page_mut(*id, |pg| pg.insert(&0u64.to_le_bytes()).unwrap())
                .unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flusher = {
            let p = Arc::clone(&p);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    p.flush_all().unwrap();
                }
            })
        };
        let mut writers = Vec::new();
        for (t, id) in ids.iter().enumerate() {
            let p = Arc::clone(&p);
            let id = *id;
            writers.push(std::thread::spawn(move || {
                for i in 1..=500u64 {
                    p.with_page_mut(id, |pg| {
                        pg.put_at(0, &(i * (t as u64 + 1)).to_le_bytes()).unwrap();
                    })
                    .unwrap();
                }
            }));
        }
        for h in writers {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        flusher.join().unwrap();
        p.flush_all().unwrap();
        // Every page's final value must have reached the device.
        for (t, id) in ids.iter().enumerate() {
            let raw = disk.read(*id).unwrap();
            assert_eq!(raw.get(0).unwrap(), (500 * (t as u64 + 1)).to_le_bytes());
        }
    }

    #[test]
    fn null_page_is_rejected() {
        let p = pool(1);
        assert!(p.with_page(PageId::NULL, |_| ()).is_err());
    }

    #[test]
    fn many_threads_share_the_pool() {
        let p = Arc::new(pool(8));
        let ids: Vec<_> = (0..16).map(|_| p.allocate().unwrap()).collect();
        for id in &ids {
            p.with_page_mut(*id, |pg| {
                pg.insert(&id.raw().to_le_bytes()).unwrap();
            })
            .unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = Arc::clone(&p);
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..50 {
                    let id = ids[(t * 7 + round) % ids.len()];
                    let v = p.with_page(id, |pg| pg.get(0).unwrap().to_vec()).unwrap();
                    assert_eq!(v, id.raw().to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
