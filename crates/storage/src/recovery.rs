//! Crash recovery: ARIES-style analysis / redo / undo.
//!
//! * **Analysis** finds the last *complete* `BeginCheckpoint` /
//!   `EndCheckpoint` pair and computes the winner set — every
//!   transaction with a `Commit` record, plus the reserved catalog
//!   transaction [`SYSTEM_TXN`]. The end record's active-writer table
//!   joins the loser candidates; its dirty-page table bounds redo.
//! * **Redo** repeats history from `min(checkpoint begin LSN, min dirty
//!   rec_lsn)` forward — not from the start of the log. Records below
//!   that point have their effects on disk (that is the checkpoint's
//!   truncation invariant, which holds whether or not the prefix was
//!   actually truncated). Every replayed operation (including losers'
//!   and CLRs) is reapplied; the physiological `put_at`/`delete`
//!   primitives are idempotent, so redo needs no page-LSN comparison.
//! * **Undo** rolls back every loser in reverse log order, writing CLRs,
//!   and finishes each with an `Abort` record — restart after a crash
//!   *during* recovery is therefore also safe.

use crate::sm::{StorageManager, SYSTEM_TXN};
use crate::wal::{Lsn, WalRecord};
use reach_common::{Result, TxnId};
use std::collections::{HashMap, HashSet};

/// Outcome summary, useful for tests and operational logging.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log records the salvage scan yielded.
    pub records_scanned: usize,
    /// Page operations reapplied by the redo pass.
    pub redone: usize,
    /// Transactions found unfinished and rolled back.
    pub losers: Vec<TxnId>,
    /// Operations undone (CLRs written) by the undo pass.
    pub undone: usize,
    /// Torn trailing bytes the WAL salvage scan discarded (a non-zero
    /// value means the crash tore a frame mid-append).
    pub salvaged_bytes: u64,
    /// Bytes of surviving log the analysis pass had to read. With
    /// checkpoint-driven truncation this stays bounded instead of
    /// growing with database uptime.
    pub scanned_bytes: u64,
    /// LSN the redo pass started at (0 = no usable checkpoint, replay
    /// the whole surviving log).
    pub redo_start: Lsn,
    /// Prepared-but-undecided transactions with their global txn ids:
    /// neither winner nor loser until the coordinator log resolves them
    /// (`decide_commit` if it holds a `CoordCommit{gid}`, otherwise
    /// presumed abort → `decide_abort`). Their effects were redone and
    /// their records re-pin log truncation.
    pub in_doubt: Vec<(TxnId, u64)>,
}

/// Run crash recovery against `sm`'s WAL and pages.
pub fn recover(sm: &StorageManager) -> Result<RecoveryReport> {
    let scan = sm.wal().scan_report()?;
    let log = scan.records;
    let mut report = RecoveryReport {
        records_scanned: log.len(),
        salvaged_bytes: scan.salvaged_bytes,
        scanned_bytes: sm.wal().tail().saturating_sub(sm.wal().base_lsn()),
        ..Default::default()
    };

    // ---- analysis ----
    // Last complete checkpoint pair. `pending` pairs each End with the
    // most recent unconsumed Begin; an End whose Begin fell below an
    // even later checkpoint's truncation cut is simply skipped.
    type CheckpointTables = (Lsn, Vec<(reach_common::PageId, Lsn)>, Vec<(TxnId, Lsn)>);
    let mut pending_begin: Option<Lsn> = None;
    let mut checkpoint: Option<CheckpointTables> = None;
    for (lsn, rec) in &log {
        match rec {
            WalRecord::BeginCheckpoint => pending_begin = Some(*lsn),
            WalRecord::EndCheckpoint { dirty, active } => {
                if let Some(begin) = pending_begin.take() {
                    checkpoint = Some((begin, dirty.clone(), active.clone()));
                }
            }
            _ => {}
        }
    }
    let mut winners: HashSet<TxnId> = HashSet::new();
    let mut finished: HashSet<TxnId> = HashSet::new();
    winners.insert(SYSTEM_TXN);
    finished.insert(SYSTEM_TXN);
    let mut seen: HashSet<TxnId> = HashSet::new();
    let mut prepared: HashMap<TxnId, u64> = HashMap::new();
    let mut first_lsn: HashMap<TxnId, Lsn> = HashMap::new();
    for (lsn, rec) in &log {
        match rec {
            WalRecord::Commit { txn } => {
                winners.insert(*txn);
                finished.insert(*txn);
            }
            WalRecord::Abort { txn } => {
                // Undo fully applied and logged before the crash.
                finished.insert(*txn);
            }
            _ => {
                if let Some(t) = rec.txn() {
                    seen.insert(t);
                    first_lsn.entry(t).or_insert(*lsn);
                    if let WalRecord::Prepare { gid, .. } = rec {
                        prepared.insert(t, *gid);
                    }
                }
            }
        }
    }
    // The checkpoint's active-writer table joins the loser candidates.
    // With truncation bounded by every writer's first-write LSN their
    // records survive and are in `seen` already; this keeps analysis
    // correct even for a log truncated by some future, bolder policy.
    if let Some((_, _, active)) = &checkpoint {
        for (txn, _) in active {
            seen.insert(*txn);
        }
    }
    // Prepared-but-undecided transactions are *in doubt*: the forced
    // Prepare promised the coordinator a commit is still possible, so
    // they are excluded from undo and left pinning the log until the
    // coordinator log (or its presumed-abort silence) decides them.
    let mut in_doubt: Vec<(TxnId, u64)> = prepared
        .iter()
        .filter(|(t, _)| !finished.contains(t))
        .map(|(t, g)| (*t, *g))
        .collect();
    in_doubt.sort();
    report.in_doubt = in_doubt.clone();
    let doubt_set: HashSet<TxnId> = in_doubt.iter().map(|(t, _)| *t).collect();
    let mut losers: Vec<TxnId> = seen
        .difference(&finished)
        .filter(|t| !doubt_set.contains(t))
        .copied()
        .collect();
    losers.sort();
    report.losers = losers.clone();

    // ---- redo: repeat history from the checkpoint forward ----
    // Start at min(begin LSN, min dirty-page rec_lsn): pages still dirty
    // at the checkpoint may carry effects of records before its Begin.
    let redo_start = checkpoint
        .as_ref()
        .map(|(begin, dirty, _)| dirty.iter().fold(*begin, |s, (_, r)| s.min(*r)))
        .unwrap_or(0);
    report.redo_start = redo_start;
    for (lsn, rec) in &log {
        if *lsn < redo_start {
            continue;
        }
        match rec {
            WalRecord::Insert {
                page,
                slot,
                payload,
                ..
            } => {
                sm.pool()
                    .with_page_mut(*page, |pg| pg.put_at(*slot, payload))??;
                report.redone += 1;
            }
            WalRecord::Update {
                page, slot, after, ..
            } => {
                sm.pool()
                    .with_page_mut(*page, |pg| pg.put_at(*slot, after))??;
                report.redone += 1;
            }
            WalRecord::Delete { page, slot, .. } => {
                sm.pool().with_page_mut(*page, |pg| {
                    let _ = pg.delete(*slot); // idempotent
                })?;
                report.redone += 1;
            }
            WalRecord::Clr {
                page,
                slot,
                restore,
                ..
            } => {
                match restore {
                    Some(img) => sm
                        .pool()
                        .with_page_mut(*page, |pg| pg.put_at(*slot, img))??,
                    None => sm.pool().with_page_mut(*page, |pg| {
                        let _ = pg.delete(*slot);
                    })?,
                }
                report.redone += 1;
            }
            _ => {}
        }
    }

    // ---- undo losers (skipping operations already compensated) ----
    let mut clr_count: HashMap<TxnId, usize> = HashMap::new();
    let mut ops: HashMap<TxnId, Vec<(Lsn, WalRecord)>> = HashMap::new();
    for (lsn, rec) in &log {
        match rec {
            WalRecord::Clr { txn, .. } | WalRecord::IndexClr { txn, .. } => {
                *clr_count.entry(*txn).or_default() += 1
            }
            // Logical index records joined the redo pass as no-ops (the
            // tree's physical SYSTEM_TXN writes carried all redo); here
            // they join undo, where `undo_one` re-descends the tree.
            WalRecord::Insert { txn, .. }
            | WalRecord::Update { txn, .. }
            | WalRecord::Delete { txn, .. }
            | WalRecord::IndexInsert { txn, .. }
            | WalRecord::IndexDelete { txn, .. } => {
                ops.entry(*txn).or_default().push((*lsn, rec.clone()));
            }
            _ => {}
        }
    }
    for loser in &losers {
        let my_ops = ops.remove(loser).unwrap_or_default();
        let already = clr_count.get(loser).copied().unwrap_or(0);
        let to_undo = my_ops.len().saturating_sub(already);
        for (lsn, rec) in my_ops.into_iter().take(to_undo).rev() {
            sm.undo_one(*loser, lsn, &rec)?;
            report.undone += 1;
        }
        sm.wal().append(&WalRecord::Abort { txn: *loser })?;
    }
    // In-doubt transactions re-enter the active table with their first
    // surviving LSN so post-recovery checkpoints cannot truncate the
    // records an eventual abort decision still needs.
    for (txn, _) in &in_doubt {
        let pin = first_lsn.get(txn).copied().unwrap_or(report.redo_start);
        sm.restore_prepared(*txn, pin);
    }
    sm.wal().force()?;
    sm.pool().flush_all()?;
    // Publish the figures into the shared registry so exp_torture and
    // exp_observe report recovery from this single source (ungated: a
    // reboot is rare and the write happens once).
    let m = sm.metrics();
    m.recovery
        .records_scanned
        .set(report.records_scanned as u64);
    m.recovery.scan_bytes.set(report.scanned_bytes);
    m.recovery.redone.set(report.redone as u64);
    m.recovery.losers.set(report.losers.len() as u64);
    m.recovery.undone.set(report.undone as u64);
    m.recovery.salvaged_bytes.set(report.salvaged_bytes);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sm::StorageManager;
    use reach_common::TxnId;

    /// Build an SM, run `work`, then simulate a crash by rebuilding the
    /// pool from the same disk+wal... since MemDisk state lives in the
    /// shared Arc, we emulate crash recovery simply by running `recover`
    /// over the surviving log against the same storage manager whose
    /// buffer pool we flushed selectively. File-based crash tests live in
    /// the integration suite.
    #[test]
    fn loser_transactions_are_rolled_back_on_recovery() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t1 = TxnId::new(1);
        sm.begin(t1).unwrap();
        let committed = sm.insert(t1, seg, b"committed").unwrap();
        sm.commit(t1).unwrap();
        // t2 never commits: its effects are visible in the buffer pool
        // (as they would be on disk after a page steal), then we "crash".
        let t2 = TxnId::new(2);
        sm.begin(t2).unwrap();
        let phantom = sm.insert(t2, seg, b"phantom").unwrap();
        sm.update(t2, seg, committed, b"dirty").unwrap();

        let report = recover(&sm).unwrap();
        assert_eq!(report.losers, vec![t2]);
        assert_eq!(report.undone, 2);
        assert!(sm.get(seg, phantom).is_err());
        assert_eq!(sm.get(seg, committed).unwrap(), b"committed");
    }

    #[test]
    fn recovery_is_idempotent() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t = TxnId::new(1);
        sm.begin(t).unwrap();
        sm.insert(t, seg, b"x").unwrap();
        // crash before commit
        let r1 = recover(&sm).unwrap();
        assert_eq!(r1.losers, vec![t]);
        // crash again during/after recovery: second run undoes nothing.
        let r2 = recover(&sm).unwrap();
        assert!(r2.losers.is_empty());
        assert_eq!(r2.undone, 0);
        assert_eq!(sm.scan(seg).unwrap().len(), 0);
    }

    #[test]
    fn checkpoint_bounds_redo_work() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t1 = TxnId::new(1);
        sm.begin(t1).unwrap();
        for i in 0..20 {
            sm.insert(t1, seg, format!("pre{i}").as_bytes()).unwrap();
        }
        sm.commit(t1).unwrap();
        sm.checkpoint().unwrap();
        let t2 = TxnId::new(2);
        sm.begin(t2).unwrap();
        sm.insert(t2, seg, b"post").unwrap();
        sm.commit(t2).unwrap();
        let report = recover(&sm).unwrap();
        // Only the post-checkpoint insert is redone.
        assert_eq!(report.redone, 1);
        assert!(report.losers.is_empty());
        assert_eq!(sm.scan(seg).unwrap().len(), 21);
    }

    #[test]
    fn prepared_transactions_are_in_doubt_not_losers() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t = TxnId::new(7);
        sm.begin(t).unwrap();
        let rid = sm.insert(t, seg, b"doubtful").unwrap();
        sm.prepare(t, 42).unwrap();

        let r1 = recover(&sm).unwrap();
        assert!(r1.losers.is_empty());
        assert_eq!(r1.undone, 0);
        assert_eq!(r1.in_doubt, vec![(t, 42)]);
        // Effects were redone (repeat history), awaiting the decision.
        assert_eq!(sm.get(seg, rid).unwrap(), b"doubtful");
        // Re-recovery before resolution reports the same doubt.
        let r2 = recover(&sm).unwrap();
        assert_eq!(r2.in_doubt, vec![(t, 42)]);

        // Presumed abort: no coordinator decision → roll it back.
        sm.decide_abort(t).unwrap();
        assert!(sm.get(seg, rid).is_err());
        let r3 = recover(&sm).unwrap();
        assert!(r3.in_doubt.is_empty());
        assert!(r3.losers.is_empty());
    }

    #[test]
    fn prepared_transaction_commits_across_reboot() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t = TxnId::new(9);
        sm.begin(t).unwrap();
        let rid = sm.insert(t, seg, b"kept").unwrap();
        sm.prepare(t, 43).unwrap();
        let r = recover(&sm).unwrap();
        assert_eq!(r.in_doubt, vec![(t, 43)]);
        sm.decide_commit(t).unwrap();
        assert_eq!(sm.get(seg, rid).unwrap(), b"kept");
        let r2 = recover(&sm).unwrap();
        assert!(r2.in_doubt.is_empty());
        assert_eq!(sm.get(seg, rid).unwrap(), b"kept");
    }

    #[test]
    fn aborted_transactions_are_not_losers() {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        let t = TxnId::new(1);
        sm.begin(t).unwrap();
        sm.insert(t, seg, b"gone").unwrap();
        sm.abort(t).unwrap();
        let report = recover(&sm).unwrap();
        assert!(report.losers.is_empty());
        assert_eq!(sm.scan(seg).unwrap().len(), 0);
    }
}
