//! Fuzzy checkpointing and log truncation.
//!
//! A checkpoint bounds two things that otherwise grow with uptime: the
//! redo scan of the next recovery and the log itself. The protocol is
//! ARIES-shaped and *fuzzy* — it never quiesces the commit pipeline:
//!
//! 1. Append `BeginCheckpoint` (its LSN anchors everything below).
//! 2. Flush the buffer pool (the integrated background-writer pass:
//!    dirty pages written back and the device synced, commits keep
//!    flowing through the group-commit sequencer the whole time).
//! 3. Capture the **dirty-page table** — pages dirtied during/after the
//!    flush, each with its conservative recovery LSN — and the **active
//!    writer table** — transactions with a first-write LSN and no
//!    Commit/Abort yet. Read-only transactions are never in it, so they
//!    neither block the checkpointer nor pin truncation.
//! 4. Append `EndCheckpoint{dpt, att}` and force through it.
//! 5. Truncate the log below `cut = min(begin_lsn, min rec_lsn, min
//!    first-write LSN)`.
//!
//! **Why the cut is safe.** Take any record with `lsn < cut`. Its page
//! was clean at step 3 (else its rec_lsn bounds the cut), so the page
//! image containing its effect was written back and covered by a device
//! sync before truncation. And its transaction is not an active writer
//! (else its first-write LSN bounds the cut), so it needs no undo:
//! finished transactions never roll back, and a read-only transaction's
//! lost `Begin` frame recovers as an empty no-op loser. Hence the
//! record is needed for neither redo nor undo.
//!
//! Recovery starts redo at `min(begin_lsn, min rec_lsn)` of the last
//! *complete* Begin/End pair; a crash between Begin and End simply
//! falls back to the previous pair (or the log base), which the
//! truncation invariant keeps correct.

use crate::buffer::BufferPool;
use crate::sm::SYSTEM_TXN;
use crate::wal::{Lsn, WalRecord, WriteAheadLog};
use reach_common::sync::Mutex;
use reach_common::{Result, TxnId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one checkpoint did (returned by `StorageManager::checkpoint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointStats {
    /// LSN of the `BeginCheckpoint` record.
    pub begin_lsn: Lsn,
    /// LSN just past the `EndCheckpoint` record (forced through).
    pub end_lsn: Lsn,
    /// Dirty pages carried in the end record (post-flush residue).
    pub dirty_pages: usize,
    /// Active writing transactions carried in the end record.
    pub active_writers: usize,
    /// The truncation cut: every frame below it was dropped.
    pub cutoff: Lsn,
    /// Log bytes the truncation actually dropped.
    pub truncated_bytes: u64,
}

#[derive(Default)]
struct TxnEntry {
    /// Conservative LSN bound of the txn's first logged write (the WAL
    /// tail captured just before the write's record was appended).
    first_write_lsn: Option<Lsn>,
    writes: u64,
}

/// The storage manager's active-transaction table: every live txn with
/// its write count and first-write LSN. Writers pin log truncation at
/// their first-write LSN; read-only transactions never do.
#[derive(Default)]
pub(crate) struct ActiveTxns {
    map: Mutex<HashMap<TxnId, TxnEntry>>,
}

impl ActiveTxns {
    /// Register a freshly begun transaction.
    pub fn begin(&self, txn: TxnId) {
        if txn == SYSTEM_TXN {
            return;
        }
        self.map.lock().entry(txn).or_default();
    }

    /// Record one logged write. Must be called *before* the write's WAL
    /// record is appended: the tail captured here under the table lock
    /// is then ≤ the record's LSN, and a checkpoint snapshot (same
    /// lock) either sees this entry or runs before the append — either
    /// way the cut it derives stays below the record.
    pub fn note_write(&self, txn: TxnId, wal: &WriteAheadLog) {
        if txn == SYSTEM_TXN {
            return;
        }
        let mut map = self.map.lock();
        let e = map.entry(txn).or_default();
        if e.first_write_lsn.is_none() {
            e.first_write_lsn = Some(wal.tail());
        }
        e.writes += 1;
    }

    /// Append a transaction's outcome record (Commit/Abort) and drop its
    /// table entry as one step under the table lock; returns whether it
    /// had logged writes and the record's end LSN. The atomicity matters
    /// for truncation: a checkpoint snapshot either still sees the
    /// writer (pinning the cut at its first-write LSN) or runs after
    /// this append — and then the outcome record sits below the
    /// checkpoint's `EndCheckpoint`, so the pre-truncation force makes
    /// it durable and the transaction can never come back as a loser
    /// whose undo records were dropped.
    ///
    /// If the outcome append itself fails, the entry is deliberately
    /// **kept**: the transaction's write records are in the log with no
    /// outcome record, so if it ever crashed in this state recovery
    /// would need them for undo — the first-write LSN must keep pinning
    /// truncation. The caller must then re-drive the outcome (retry the
    /// commit, or abort) to release the pin; `sm::commit`/`sm::abort`
    /// surface the error to the client for exactly that reason. A
    /// read-only transaction has no first-write LSN and never pins the
    /// cut, so a stuck entry for one is harmless.
    pub fn finish_logged(
        &self,
        txn: TxnId,
        wal: &WriteAheadLog,
        rec: &WalRecord,
    ) -> Result<(bool, Lsn)> {
        let mut map = self.map.lock();
        let (_, end) = wal.append_bounded(rec)?;
        let wrote = map.remove(&txn).map(|e| e.writes > 0).unwrap_or(false);
        Ok((wrote, end))
    }

    /// Re-register an in-doubt transaction after recovery with the
    /// first-write LSN its surviving records start at. The entry pins
    /// log truncation exactly like a live writer's would, so a
    /// checkpoint taken while the coordinator's decision is outstanding
    /// can never drop the records an eventual abort still needs.
    /// Idempotent: restoring twice (crash during resolution, recover
    /// again) just overwrites the same entry.
    pub fn restore(&self, txn: TxnId, first_write_lsn: Lsn) {
        if txn == SYSTEM_TXN {
            return;
        }
        let mut map = self.map.lock();
        let e = map.entry(txn).or_default();
        e.first_write_lsn = Some(first_write_lsn);
        e.writes = e.writes.max(1);
    }

    /// The active *writer* table for an `EndCheckpoint` record.
    pub fn snapshot(&self) -> Vec<(TxnId, Lsn)> {
        let mut out: Vec<(TxnId, Lsn)> = self
            .map
            .lock()
            .iter()
            .filter_map(|(t, e)| e.first_write_lsn.map(|l| (*t, l)))
            .collect();
        out.sort();
        out
    }
}

/// Runs fuzzy checkpoints over one storage manager's WAL and pool.
pub(crate) struct Checkpointer {
    wal: Arc<WriteAheadLog>,
    pool: Arc<BufferPool>,
    active: Arc<ActiveTxns>,
    /// Serializes checkpoints (Begin/End pairs must not interleave).
    guard: Mutex<()>,
    /// Log bytes between checkpoints that arm the automatic trigger
    /// (0 = explicit checkpoints only).
    threshold: AtomicU64,
    /// WAL tail right after the last checkpoint completed.
    last_ckpt_tail: AtomicU64,
}

impl Checkpointer {
    pub fn new(wal: Arc<WriteAheadLog>, pool: Arc<BufferPool>, active: Arc<ActiveTxns>) -> Self {
        let tail = wal.tail();
        Checkpointer {
            wal,
            pool,
            active,
            guard: Mutex::new(()),
            threshold: AtomicU64::new(0),
            last_ckpt_tail: AtomicU64::new(tail),
        }
    }

    /// Arm (or disarm with `None`) the bytes-since-last-checkpoint
    /// trigger consulted at the end of every commit/abort.
    pub fn set_threshold(&self, bytes: Option<u64>) {
        self.threshold.store(bytes.unwrap_or(0), Ordering::Relaxed);
    }

    /// Take a checkpoint now (blocks if one is already running).
    pub fn checkpoint(&self) -> Result<CheckpointStats> {
        let g = self.guard.lock();
        self.run(g)
    }

    /// Take a checkpoint if the byte threshold is armed and exceeded
    /// and no checkpoint is already running. Called inline after
    /// commit/abort; deliberately cheap when disarmed.
    pub fn maybe_checkpoint(&self) -> Result<Option<CheckpointStats>> {
        let threshold = self.threshold.load(Ordering::Relaxed);
        if threshold == 0 {
            return Ok(None);
        }
        let since = self
            .wal
            .tail()
            .saturating_sub(self.last_ckpt_tail.load(Ordering::Relaxed));
        if since < threshold {
            return Ok(None);
        }
        match self.guard.try_lock() {
            Some(g) => self.run(g).map(Some),
            None => Ok(None),
        }
    }

    fn run(&self, _guard: reach_common::sync::MutexGuard<'_, ()>) -> Result<CheckpointStats> {
        let (begin_lsn, _) = self.wal.append_bounded(&WalRecord::BeginCheckpoint)?;
        // Background-writer pass: most pages come back clean, so the
        // post-flush DPT is small and the cut lands near begin_lsn.
        self.pool.flush_all()?;
        let dirty = self.pool.dirty_page_table();
        let active = self.active.snapshot();
        let (_, end_lsn) = self.wal.append_bounded(&WalRecord::EndCheckpoint {
            dirty: dirty.clone(),
            active: active.clone(),
        })?;
        self.wal.force_up_to(end_lsn)?;
        let mut cut = begin_lsn;
        for (_, rec_lsn) in &dirty {
            cut = cut.min(*rec_lsn);
        }
        for (_, first_lsn) in &active {
            cut = cut.min(*first_lsn);
        }
        // Cover evictions that wrote pages back between flush_all's sync
        // and the DPT capture: one more device sync before any frame
        // below the cut is dropped.
        self.pool.disk().sync()?;
        let truncated_bytes = self.wal.truncate_prefix(cut)?;
        self.last_ckpt_tail
            .store(self.wal.tail(), Ordering::Relaxed);
        let m = self.pool.metrics();
        m.ckpt.taken.inc();
        Ok(CheckpointStats {
            begin_lsn,
            end_lsn,
            dirty_pages: dirty.len(),
            active_writers: active.len(),
            cutoff: cut,
            truncated_bytes,
        })
    }
}
