//! A WAL-logged, buffer-pool-resident B+Tree — the persistent half of
//! the Indexing PM's sentry-maintained extent indexes.
//!
//! The tree is a *multimap* from memcomparable byte keys to `u64`
//! object ids: entries are `(key, oid)` pairs ordered pairwise
//! (byte-lexicographic key, then oid), so duplicate keys are natural
//! and deletion is exact. Each node occupies slot 0 of one pooled page,
//! so index pages ride the existing buffer-pool machinery for free:
//! they appear in the dirty-page table, fuzzy checkpoints capture their
//! rec-LSNs, eviction honors the WAL flush barrier, and log truncation
//! bounds apply unchanged.
//!
//! # Crash safety: right links instead of physical undo
//!
//! Every page image the tree writes is logged *physically* under
//! [`SYSTEM_TXN`](crate::sm::StorageManager) (an `Update`/`Insert` of
//! slot 0 with before/after images). System records are always redo
//! winners and never undone, so recovery replays tree structure exactly
//! as it was built — but a crash can still land *between* the page
//! writes of one split. The tree therefore keeps Lehman–Yao style
//! right-sibling links with exclusive high keys and writes splits
//! right-node-first: after any prefix of a split's page writes the tree
//! is searchable (a reader that overshoots a node's high key moves
//! right), at worst leaving an orphan page or a separator the parent
//! has not absorbed yet. That is why *logical* user-level operations
//! ([`WalRecord::IndexInsert`]/[`WalRecord::IndexDelete`]) never need
//! physical undo: undoing one simply re-descends the current (always
//! consistent) tree and applies the inverse, generating fresh system
//! page writes.
//!
//! Deletion is lazy, PostgreSQL-style: entries are removed in place and
//! structurally empty nodes stay linked (scans skip them, and a later
//! insert into their key range reuses them). "Merges" therefore cannot
//! tear either — there are no multi-page delete-side structure changes
//! to tear.

use crate::buffer::BufferPool;
use crate::page::MAX_RECORD;
use crate::wal::{WalRecord, WriteAheadLog};
use reach_common::sync::Mutex;
use reach_common::{PageId, ReachError, Result};
use std::ops::Bound;
use std::sync::Arc;

/// Largest key the tree accepts. Keeps every node's worst-case
/// transient size (split threshold plus one oversized entry) well under
/// [`MAX_RECORD`], so a node image always fits in slot 0 of a page.
pub const MAX_KEY: usize = 1024;

/// Split a node once its serialized image exceeds this. Half the page
/// budget: even a node one `MAX_KEY` entry past the threshold still
/// fits a page with room to spare.
const SPLIT_BYTES: usize = MAX_RECORD / 2;

/// One `(key, oid)` pair — the unit the multimap stores and orders.
type Entry = (Vec<u8>, u64);

/// A search position in `(key, oid)` pair order. Mutations descend to
/// an exact pair; range bounds descend to "just before the first entry
/// with `key`" or "just after the last". Encodes `Bound` semantics
/// without inventing sentinel oids.
#[derive(Clone, Copy)]
enum Pos<'a> {
    /// Just before `(key, 0)`.
    Before(&'a [u8]),
    /// Exactly at `(key, oid)`.
    Pair(&'a [u8], u64),
    /// Just after `(key, u64::MAX)`.
    AfterAll(&'a [u8]),
}

impl<'a> Pos<'a> {
    /// Does this position fall strictly before separator `sep`? A
    /// position equal to a separator belongs to the *right* child: the
    /// separator is always the first pair of the right node.
    fn lt_pair(&self, sep: &Entry) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Pos::Before(k) => matches!(k.cmp(&sep.0.as_slice()), Less | Equal),
            Pos::Pair(k, oid) => match k.cmp(&sep.0.as_slice()) {
                Less => true,
                Equal => *oid < sep.1,
                Greater => false,
            },
            Pos::AfterAll(k) => matches!(k.cmp(&sep.0.as_slice()), Less),
        }
    }
}

/// An in-memory node image, (de)serialized to slot 0 of its page.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        /// Right sibling in the leaf chain (range scans follow this).
        right: Option<PageId>,
        /// Exclusive upper bound of this node's key range; `None` on
        /// the rightmost node of the level (+infinity).
        high: Option<Entry>,
        /// Sorted `(key, oid)` pairs.
        entries: Vec<Entry>,
    },
    Internal {
        /// Right sibling at this level (move-right target).
        right: Option<PageId>,
        /// Exclusive upper bound, as for leaves.
        high: Option<Entry>,
        /// `children.len() == seps.len() + 1`; child `i` covers
        /// positions in `[seps[i-1], seps[i])` within the node range.
        children: Vec<PageId>,
        /// Separator pairs between consecutive children.
        seps: Vec<Entry>,
    },
}

impl Node {
    fn right(&self) -> Option<PageId> {
        match self {
            Node::Leaf { right, .. } | Node::Internal { right, .. } => *right,
        }
    }

    fn high(&self) -> Option<&Entry> {
        match self {
            Node::Leaf { high, .. } | Node::Internal { high, .. } => high.as_ref(),
        }
    }

    /// Number of entries (leaf) or separators (internal) — the split
    /// knob counts these.
    fn load(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { seps, .. } => seps.len(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        fn put_opt_page(out: &mut Vec<u8>, p: &Option<PageId>) {
            match p {
                Some(p) => {
                    out.push(1);
                    out.extend_from_slice(&p.raw().to_le_bytes());
                }
                None => out.push(0),
            }
        }
        fn put_pair(out: &mut Vec<u8>, e: &Entry) {
            out.extend_from_slice(&(e.0.len() as u32).to_le_bytes());
            out.extend_from_slice(&e.0);
            out.extend_from_slice(&e.1.to_le_bytes());
        }
        fn put_opt_pair(out: &mut Vec<u8>, e: &Option<Entry>) {
            match e {
                Some(e) => {
                    out.push(1);
                    put_pair(out, e);
                }
                None => out.push(0),
            }
        }
        let mut out = Vec::with_capacity(64);
        match self {
            Node::Leaf {
                right,
                high,
                entries,
            } => {
                out.push(1);
                put_opt_page(&mut out, right);
                put_opt_pair(&mut out, high);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for e in entries {
                    put_pair(&mut out, e);
                }
            }
            Node::Internal {
                right,
                high,
                children,
                seps,
            } => {
                out.push(0);
                put_opt_page(&mut out, right);
                put_opt_pair(&mut out, high);
                out.extend_from_slice(&(children.len() as u32).to_le_bytes());
                out.extend_from_slice(&children[0].raw().to_le_bytes());
                for (s, c) in seps.iter().zip(children[1..].iter()) {
                    put_pair(&mut out, s);
                    out.extend_from_slice(&c.raw().to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(buf: &[u8]) -> Result<Node> {
        let corrupt = || ReachError::Io("corrupt index node".into());
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            if pos + n > buf.len() {
                return Err(corrupt());
            }
            let s = &buf[pos..pos + n];
            pos += n;
            Ok(s)
        };
        macro_rules! u8v {
            () => {
                take(1)?[0]
            };
        }
        macro_rules! u32v {
            () => {
                u32::from_le_bytes(take(4)?.try_into().unwrap()) as usize
            };
        }
        macro_rules! u64v {
            () => {
                u64::from_le_bytes(take(8)?.try_into().unwrap())
            };
        }
        macro_rules! pair {
            () => {{
                let n = u32v!();
                let key = take(n)?.to_vec();
                let oid = u64v!();
                (key, oid)
            }};
        }
        let tag = u8v!();
        let right = if u8v!() == 1 {
            Some(PageId::new(u64v!()))
        } else {
            None
        };
        let high = if u8v!() == 1 { Some(pair!()) } else { None };
        match tag {
            1 => {
                let n = u32v!();
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(pair!());
                }
                Ok(Node::Leaf {
                    right,
                    high,
                    entries,
                })
            }
            0 => {
                let n = u32v!();
                if n == 0 {
                    return Err(corrupt());
                }
                let mut children = Vec::with_capacity(n);
                let mut seps = Vec::with_capacity(n.saturating_sub(1));
                children.push(PageId::new(u64v!()));
                for _ in 1..n {
                    seps.push(pair!());
                    children.push(PageId::new(u64v!()));
                }
                Ok(Node::Internal {
                    right,
                    high,
                    children,
                    seps,
                })
            }
            _ => Err(corrupt()),
        }
    }
}

/// The persistent B+Tree. Stateless apart from the root page id; all
/// node state lives in the buffer pool. Callers must serialize
/// *mutating* operations per tree (the storage manager holds a lock
/// around its index catalog ops); concurrent readers of an otherwise
/// quiescent tree are fine.
pub struct BTree {
    pool: Arc<BufferPool>,
    wal: Arc<WriteAheadLog>,
    root: Mutex<PageId>,
    /// Test knob: split once a node holds this many entries/separators,
    /// regardless of byte size — forces boundary fanouts cheaply.
    max_node_entries: Option<usize>,
}

impl BTree {
    /// Create an empty tree: one leaf root.
    pub fn create(
        pool: Arc<BufferPool>,
        wal: Arc<WriteAheadLog>,
        max_node_entries: Option<usize>,
    ) -> Result<BTree> {
        let root = pool.allocate()?;
        let tree = BTree {
            pool,
            wal,
            root: Mutex::new(root),
            max_node_entries,
        };
        tree.write_node(
            root,
            &Node::Leaf {
                right: None,
                high: None,
                entries: Vec::new(),
            },
        )?;
        Ok(tree)
    }

    /// Open an existing tree at `root` (as persisted in the index
    /// catalog). A stale root — one superseded by a root split whose
    /// catalog update was lost in a crash — is safe: the old root is
    /// the leftmost node of its level and right links reach everything.
    pub fn open(
        pool: Arc<BufferPool>,
        wal: Arc<WriteAheadLog>,
        root: PageId,
        max_node_entries: Option<usize>,
    ) -> BTree {
        BTree {
            pool,
            wal,
            root: Mutex::new(root),
            max_node_entries,
        }
    }

    /// Current root page id — callers persist this in their catalog
    /// after mutations (root splits move it).
    pub fn root(&self) -> PageId {
        *self.root.lock()
    }

    fn read_node(&self, id: PageId) -> Result<Node> {
        let bytes = self
            .pool
            .with_page(id, |pg| pg.get(0).map(|b| b.to_vec()))??;
        Node::decode(&bytes)
    }

    /// Write a node image to slot 0 of its page, logging the write
    /// physically under the system transaction *after* the page
    /// mutation (same order as the heap paths, keeping the frame's
    /// rec-LSN conservative).
    fn write_node(&self, id: PageId, node: &Node) -> Result<()> {
        let after = node.encode();
        let before = self
            .pool
            .with_page_mut(id, |pg| -> Result<Option<Vec<u8>>> {
                let before = pg.get(0).ok().map(|b| b.to_vec());
                pg.put_at(0, &after)?;
                Ok(before)
            })??;
        let rec = match before {
            Some(before) => WalRecord::Update {
                txn: crate::sm::SYSTEM_TXN,
                page: id,
                slot: 0,
                before,
                after,
            },
            None => WalRecord::Insert {
                txn: crate::sm::SYSTEM_TXN,
                page: id,
                slot: 0,
                payload: after,
            },
        };
        self.wal.append(&rec)?;
        let m = self.pool.metrics();
        if m.on() {
            m.index.node_writes.inc();
        }
        Ok(())
    }

    fn overflows(&self, node: &Node) -> bool {
        if let Some(cap) = self.max_node_entries {
            if node.load() > cap {
                return true;
            }
        }
        node.encode().len() > SPLIT_BYTES
    }

    /// Descend from the root toward `pos`, moving right past split
    /// siblings, returning the leaf page id and the stack of internal
    /// pages traversed (deepest last).
    fn descend(&self, pos: Pos<'_>) -> Result<(PageId, Vec<PageId>)> {
        let mut path = Vec::new();
        let mut id = self.root();
        loop {
            let node = self.read_node(id)?;
            if let Some(h) = node.high() {
                if !pos.lt_pair(h) {
                    // Overshot: a split moved our range to the right
                    // sibling before the parent absorbed the separator.
                    id = node.right().expect("bounded node without right link");
                    continue;
                }
            }
            match node {
                Node::Leaf { .. } => return Ok((id, path)),
                Node::Internal { children, seps, .. } => {
                    path.push(id);
                    let mut child = children[0];
                    for (i, s) in seps.iter().enumerate() {
                        if pos.lt_pair(s) {
                            break;
                        }
                        child = children[i + 1];
                    }
                    id = child;
                }
            }
        }
    }

    /// Split `id` (already oversized, image in `node`) into itself and
    /// a fresh right sibling; returns the separator pair and the new
    /// sibling id. Writes right node first so every crash prefix is
    /// searchable via right links.
    fn split(&self, id: PageId, node: Node) -> Result<(Entry, PageId)> {
        let new_id = self.pool.allocate()?;
        let (left, right_node, sep) = match node {
            Node::Leaf {
                right,
                high,
                mut entries,
            } => {
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].clone();
                (
                    Node::Leaf {
                        right: Some(new_id),
                        high: Some(sep.clone()),
                        entries,
                    },
                    Node::Leaf {
                        right,
                        high,
                        entries: right_entries,
                    },
                    sep,
                )
            }
            Node::Internal {
                right,
                high,
                mut children,
                mut seps,
            } => {
                // Push up the middle separator: left keeps children
                // [..=mid], right takes [mid+1..].
                let mid = seps.len() / 2;
                let right_seps = seps.split_off(mid + 1);
                let sep = seps.pop().expect("internal split needs >= 2 seps");
                let right_children = children.split_off(mid + 1);
                (
                    Node::Internal {
                        right: Some(new_id),
                        high: Some(sep.clone()),
                        children,
                        seps,
                    },
                    Node::Internal {
                        right,
                        high,
                        children: right_children,
                        seps: right_seps,
                    },
                    sep,
                )
            }
        };
        self.write_node(new_id, &right_node)?;
        self.write_node(id, &left)?;
        let m = self.pool.metrics();
        if m.on() {
            m.index.node_splits.inc();
        }
        Ok((sep, new_id))
    }

    /// Insert separator `sep` (pointing at `child`) into the parent
    /// level, walking right from the remembered `parent` if splits
    /// moved the range, splitting upward as needed. An empty remaining
    /// `path` means the split reached the old root: grow a new one.
    fn insert_sep(&self, mut path: Vec<PageId>, mut sep: Entry, mut child: PageId) -> Result<()> {
        loop {
            let Some(mut id) = path.pop() else {
                // Root split: the old root keeps its page (it is the
                // leftmost node of its level); a fresh page becomes the
                // new root above it.
                let old_root = self.root();
                let new_root = self.pool.allocate()?;
                self.write_node(
                    new_root,
                    &Node::Internal {
                        right: None,
                        high: None,
                        children: vec![old_root, child],
                        seps: vec![sep],
                    },
                )?;
                *self.root.lock() = new_root;
                let m = self.pool.metrics();
                if m.on() {
                    m.index.root_splits.inc();
                }
                return Ok(());
            };
            // Move right to the node whose range covers the separator.
            let mut node = loop {
                let node = self.read_node(id)?;
                match node.high() {
                    Some(h) if !Pos::Pair(&sep.0, sep.1).lt_pair(h) => {
                        id = node.right().expect("bounded node without right link");
                    }
                    _ => break node,
                }
            };
            let Node::Internal {
                ref mut children,
                ref mut seps,
                ..
            } = node
            else {
                return Err(ReachError::Io("separator landed on a leaf".into()));
            };
            let at = seps.binary_search_by(|s| s.cmp(&sep)).unwrap_or_else(|i| i);
            seps.insert(at, sep);
            children.insert(at + 1, child);
            if !self.overflows(&node) {
                return self.write_node(id, &node);
            }
            let (up_sep, up_child) = self.split(id, node)?;
            sep = up_sep;
            child = up_child;
        }
    }

    /// Insert `(key, oid)`. Returns `false` (and writes nothing) if the
    /// pair is already present.
    pub fn insert(&self, key: &[u8], oid: u64) -> Result<bool> {
        if key.len() > MAX_KEY {
            return Err(ReachError::RecordTooLarge {
                size: key.len(),
                max: MAX_KEY,
            });
        }
        let (leaf_id, path) = self.descend(Pos::Pair(key, oid))?;
        let mut node = self.read_node(leaf_id)?;
        let Node::Leaf {
            ref mut entries, ..
        } = node
        else {
            return Err(ReachError::Io("descend ended on internal node".into()));
        };
        let pair = (key.to_vec(), oid);
        let at = match entries.binary_search(&pair) {
            Ok(_) => return Ok(false),
            Err(i) => i,
        };
        entries.insert(at, pair);
        if !self.overflows(&node) {
            self.write_node(leaf_id, &node)?;
            return Ok(true);
        }
        let (sep, new_right) = self.split(leaf_id, node)?;
        self.insert_sep(path, sep, new_right)?;
        Ok(true)
    }

    /// Delete `(key, oid)`. Returns `false` if absent. Lazy: the node
    /// keeps its place in the tree even when it empties.
    pub fn delete(&self, key: &[u8], oid: u64) -> Result<bool> {
        let (leaf_id, _path) = self.descend(Pos::Pair(key, oid))?;
        let mut node = self.read_node(leaf_id)?;
        let Node::Leaf {
            ref mut entries, ..
        } = node
        else {
            return Err(ReachError::Io("descend ended on internal node".into()));
        };
        let pair = (key.to_vec(), oid);
        match entries.binary_search(&pair) {
            Ok(i) => {
                entries.remove(i);
                self.write_node(leaf_id, &node)?;
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Is `(key, oid)` present?
    pub fn contains(&self, key: &[u8], oid: u64) -> Result<bool> {
        Ok(self.lookup(key)?.contains(&oid))
    }

    /// All oids stored under exactly `key`, ascending.
    pub fn lookup(&self, key: &[u8]) -> Result<Vec<u64>> {
        let m = self.pool.metrics();
        if m.on() {
            m.index.lookups.inc();
        }
        Ok(self
            .range(Bound::Included(key), Bound::Included(key))?
            .into_iter()
            .map(|(_, oid)| oid)
            .collect())
    }

    /// Range scan in ascending `(key, oid)` order, with `Bound`
    /// semantics matching the query planner's (`Excluded` skips every
    /// oid under that key).
    pub fn range(&self, low: Bound<&[u8]>, high: Bound<&[u8]>) -> Result<Vec<Entry>> {
        let m = self.pool.metrics();
        if m.on() {
            m.index.range_scans.inc();
        }
        let mut out = Vec::new();
        let mut id = match low {
            Bound::Included(k) => self.descend(Pos::Before(k))?.0,
            Bound::Excluded(k) => self.descend(Pos::AfterAll(k))?.0,
            Bound::Unbounded => self.leftmost_leaf()?,
        };
        loop {
            let node = self.read_node(id)?;
            let Node::Leaf { right, entries, .. } = node else {
                return Err(ReachError::Io("leaf chain hit internal node".into()));
            };
            for (k, oid) in entries {
                let past_low = match low {
                    Bound::Included(l) => k.as_slice() >= l,
                    Bound::Excluded(l) => k.as_slice() > l,
                    Bound::Unbounded => true,
                };
                if !past_low {
                    continue;
                }
                let within_high = match high {
                    Bound::Included(h) => k.as_slice() <= h,
                    Bound::Excluded(h) => k.as_slice() < h,
                    Bound::Unbounded => true,
                };
                if !within_high {
                    return Ok(out);
                }
                out.push((k, oid));
            }
            match right {
                Some(r) => id = r,
                None => return Ok(out),
            }
        }
    }

    /// Total number of `(key, oid)` pairs (walks the leaf chain).
    pub fn len(&self) -> Result<usize> {
        let mut n = 0usize;
        let mut id = self.leftmost_leaf()?;
        loop {
            let node = self.read_node(id)?;
            let Node::Leaf { right, entries, .. } = node else {
                return Err(ReachError::Io("leaf chain hit internal node".into()));
            };
            n += entries.len();
            match right {
                Some(r) => id = r,
                None => return Ok(n),
            }
        }
    }

    /// Whether the tree holds no pairs.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Tree height (levels from root to leaf), for tests and stats.
    pub fn depth(&self) -> Result<usize> {
        let mut d = 1usize;
        let mut id = self.root();
        loop {
            match self.read_node(id)? {
                Node::Leaf { .. } => return Ok(d),
                Node::Internal { children, .. } => {
                    d += 1;
                    id = children[0];
                }
            }
        }
    }

    fn leftmost_leaf(&self) -> Result<PageId> {
        let mut id = self.root();
        loop {
            match self.read_node(id)? {
                Node::Leaf { .. } => return Ok(id),
                Node::Internal { children, .. } => id = children[0],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::collections::BTreeSet;

    fn fixture() -> (Arc<BufferPool>, Arc<WriteAheadLog>) {
        let disk: Arc<dyn crate::disk::StableStorage> = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::new(disk, 64));
        let wal = Arc::new(WriteAheadLog::in_memory());
        (pool, wal)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:08}").into_bytes()
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let (pool, wal) = fixture();
        let t = BTree::create(pool, wal, Some(4)).unwrap();
        for i in 0..50u32 {
            assert!(t.insert(&key(i), u64::from(i)).unwrap());
        }
        assert!(t.depth().unwrap() > 1, "fanout 4 must grow the tree");
        for i in 0..50u32 {
            assert_eq!(t.lookup(&key(i)).unwrap(), vec![u64::from(i)]);
        }
        assert!(!t.insert(&key(7), 7).unwrap(), "duplicate pair rejected");
        assert!(t.delete(&key(7), 7).unwrap());
        assert!(!t.delete(&key(7), 7).unwrap());
        assert!(t.lookup(&key(7)).unwrap().is_empty());
        assert_eq!(t.len().unwrap(), 49);
    }

    #[test]
    fn duplicate_keys_collect_all_oids() {
        let (pool, wal) = fixture();
        let t = BTree::create(pool, wal, Some(4)).unwrap();
        for oid in 0..20u64 {
            assert!(t.insert(b"dup", oid).unwrap());
        }
        assert_eq!(t.lookup(b"dup").unwrap(), (0..20).collect::<Vec<_>>());
        assert!(t.delete(b"dup", 11).unwrap());
        let oids = t.lookup(b"dup").unwrap();
        assert_eq!(oids.len(), 19);
        assert!(!oids.contains(&11));
    }

    #[test]
    fn boundary_fanouts_split_correctly() {
        // The smallest legal fanouts stress every split path: a leaf
        // split with 2 entries, an internal split with 2 separators.
        for cap in [2usize, 3, 4, 5] {
            let (pool, wal) = fixture();
            let t = BTree::create(pool, wal, Some(cap)).unwrap();
            let mut expect = BTreeSet::new();
            for i in 0..120u32 {
                // Interleave the key space so splits hit non-rightmost
                // nodes too.
                let k = key(i.wrapping_mul(7919) % 256);
                t.insert(&k, u64::from(i)).unwrap();
                expect.insert((k, u64::from(i)));
            }
            let got: BTreeSet<_> = t
                .range(Bound::Unbounded, Bound::Unbounded)
                .unwrap()
                .into_iter()
                .collect();
            assert_eq!(got, expect, "fanout {cap}");
        }
    }

    #[test]
    fn underflow_mass_delete_then_reuse() {
        let (pool, wal) = fixture();
        let t = BTree::create(pool, wal, Some(3)).unwrap();
        for i in 0..60u32 {
            t.insert(&key(i), 1).unwrap();
        }
        for i in 0..60u32 {
            assert!(t.delete(&key(i), 1).unwrap());
        }
        assert!(t.is_empty().unwrap());
        assert!(t
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .is_empty());
        // Emptied nodes still own their ranges: reinsertion reuses them.
        for i in 0..60u32 {
            assert!(t.insert(&key(i), 2).unwrap());
        }
        assert_eq!(t.len().unwrap(), 60);
        assert_eq!(t.lookup(&key(30)).unwrap(), vec![2]);
    }

    #[test]
    fn range_bounds_match_planner_semantics() {
        let (pool, wal) = fixture();
        let t = BTree::create(pool, wal, Some(4)).unwrap();
        for i in 0..30u32 {
            t.insert(&key(i), u64::from(i)).unwrap();
        }
        let keys = |lo: Bound<&[u8]>, hi: Bound<&[u8]>| -> Vec<u64> {
            t.range(lo, hi)
                .unwrap()
                .into_iter()
                .map(|(_, o)| o)
                .collect()
        };
        let k5 = key(5);
        let k9 = key(9);
        assert_eq!(
            keys(Bound::Included(&k5), Bound::Included(&k9)),
            vec![5, 6, 7, 8, 9]
        );
        assert_eq!(
            keys(Bound::Excluded(&k5), Bound::Excluded(&k9)),
            vec![6, 7, 8]
        );
        assert_eq!(
            keys(Bound::Unbounded, Bound::Excluded(&k5)),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(
            keys(Bound::Included(&key(28)), Bound::Unbounded),
            vec![28, 29]
        );
        // Empty and inverted ranges yield nothing.
        assert!(keys(Bound::Excluded(&k5), Bound::Included(&k5)).is_empty());
        assert!(keys(Bound::Included(&k9), Bound::Excluded(&k5)).is_empty());
        // Reverse iteration of an ascending scan is exact.
        let rev: Vec<u64> = keys(Bound::Included(&k5), Bound::Included(&k9))
            .into_iter()
            .rev()
            .collect();
        assert_eq!(rev, vec![9, 8, 7, 6, 5]);
    }

    #[test]
    fn byte_size_split_without_entry_cap() {
        let (pool, wal) = fixture();
        let t = BTree::create(pool, wal, None).unwrap();
        // ~600-byte keys overflow the byte budget after a handful of
        // inserts, forcing size-driven splits.
        for i in 0..64u32 {
            let mut k = vec![b'x'; 600];
            k.extend_from_slice(&key(i));
            assert!(t.insert(&k, u64::from(i)).unwrap());
        }
        assert!(t.depth().unwrap() > 1);
        assert_eq!(t.len().unwrap(), 64);
        let err = t.insert(&vec![0u8; MAX_KEY + 1], 1).unwrap_err();
        assert!(matches!(err, ReachError::RecordTooLarge { .. }));
    }

    #[test]
    fn stale_root_reopen_still_reaches_everything() {
        let (pool, wal) = fixture();
        let t = BTree::create(Arc::clone(&pool), Arc::clone(&wal), Some(2)).unwrap();
        let stale_root = t.root();
        for i in 0..40u32 {
            t.insert(&key(i), u64::from(i)).unwrap();
        }
        assert_ne!(t.root(), stale_root, "fanout 2 must split the root");
        // Reopen at the pre-split root, as if the catalog update was
        // lost in a crash: right links still reach every entry.
        let reopened = BTree::open(pool, wal, stale_root, Some(2));
        for i in 0..40u32 {
            assert_eq!(reopened.lookup(&key(i)).unwrap(), vec![u64::from(i)]);
        }
        assert!(reopened.insert(&key(99), 99).unwrap());
        assert_eq!(reopened.lookup(&key(99)).unwrap(), vec![99]);
    }
}
