//! Stable page storage.
//!
//! Open OODB calls this a *passive address-space manager*: a dumb
//! repository of pages. Two implementations share the [`StableStorage`]
//! trait — a real file ([`FileDisk`]) and an in-memory device
//! ([`MemDisk`]) used by tests and by benchmarks that must not measure
//! the host filesystem.

use crate::page::{Page, PAGE_SIZE};
use reach_common::fault::{FaultInjector, FaultPoint, WriteOutcome};
use reach_common::sync::Mutex;
use reach_common::{PageId, ReachError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A device that can durably store fixed-size pages.
pub trait StableStorage: Send + Sync {
    /// Allocate a fresh page id (the page is all-zero until written).
    fn allocate(&self) -> Result<PageId>;
    /// Read a page image.
    fn read(&self, id: PageId) -> Result<Page>;
    /// Write a page image.
    fn write(&self, page: &Page) -> Result<()>;
    /// Force all writes to stable storage.
    fn sync(&self) -> Result<()>;
    /// Number of pages ever allocated.
    fn page_count(&self) -> u64;
}

/// In-memory page device. Pages live in a `Vec<Option<Box<image>>>`.
pub struct MemDisk {
    pages: Mutex<Vec<Option<Box<[u8; PAGE_SIZE]>>>>,
    next: AtomicU64,
}

impl MemDisk {
    /// An empty in-memory device; page ids start at 1.
    pub fn new() -> Self {
        MemDisk {
            pages: Mutex::new(Vec::new()),
            // Page ids start at 1; index = id - 1.
            next: AtomicU64::new(1),
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl StableStorage for MemDisk {
    fn allocate(&self) -> Result<PageId> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let mut pages = self.pages.lock();
        pages.push(None);
        debug_assert_eq!(pages.len() as u64, id);
        Ok(PageId::new(id))
    }

    fn read(&self, id: PageId) -> Result<Page> {
        let pages = self.pages.lock();
        let idx = (id.raw() as usize)
            .checked_sub(1)
            .ok_or(ReachError::PageNotFound(id))?;
        match pages.get(idx) {
            Some(Some(img)) => Page::from_bytes(img.as_slice()),
            // Allocated but never written: a fresh formatted page.
            Some(None) => Ok(Page::new(id)),
            None => Err(ReachError::PageNotFound(id)),
        }
    }

    fn write(&self, page: &Page) -> Result<()> {
        let id = page.id();
        let mut pages = self.pages.lock();
        let idx = (id.raw() as usize)
            .checked_sub(1)
            .ok_or(ReachError::PageNotFound(id))?;
        let slot = pages.get_mut(idx).ok_or(ReachError::PageNotFound(id))?;
        let mut img = Box::new([0u8; PAGE_SIZE]);
        img.copy_from_slice(page.as_bytes());
        *slot = Some(img);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

/// File-backed page device: page `n` lives at byte offset `(n-1) * 8192`.
pub struct FileDisk {
    file: Mutex<File>,
    next: AtomicU64,
}

impl FileDisk {
    /// Open (or create) the database file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let existing_pages = len / PAGE_SIZE as u64;
        Ok(FileDisk {
            file: Mutex::new(file),
            next: AtomicU64::new(existing_pages + 1),
        })
    }

    fn offset(id: PageId) -> u64 {
        (id.raw() - 1) * PAGE_SIZE as u64
    }
}

impl StableStorage for FileDisk {
    fn allocate(&self) -> Result<PageId> {
        let id = PageId::new(self.next.fetch_add(1, Ordering::Relaxed));
        // Extend the file so reads of a never-written page succeed.
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(Self::offset(id)))?;
        f.write_all(Page::new(id).as_bytes())?;
        Ok(id)
    }

    fn read(&self, id: PageId) -> Result<Page> {
        if id.is_null() || id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(ReachError::PageNotFound(id));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(Self::offset(id)))?;
        f.read_exact(&mut buf)?;
        Page::from_bytes(&buf)
    }

    fn write(&self, page: &Page) -> Result<()> {
        let id = page.id();
        if id.is_null() || id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(ReachError::PageNotFound(id));
        }
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(Self::offset(id)))?;
        f.write_all(page.as_bytes())?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - 1
    }
}

/// A fault-injecting wrapper around any [`StableStorage`] device.
///
/// Every operation consults the shared [`FaultInjector`] before touching
/// the inner device, so a test (or the torture harness) can make the
/// "disk" fail a specific read, tear a specific page write, or die
/// entirely at a chosen operation — deterministically.
pub struct FaultDisk {
    inner: Arc<dyn StableStorage>,
    injector: Arc<FaultInjector>,
}

impl FaultDisk {
    /// Wrap `inner` so every page read/write consults `injector` first.
    pub fn new(inner: Arc<dyn StableStorage>, injector: Arc<FaultInjector>) -> Self {
        FaultDisk { inner, injector }
    }

    /// The shared injector (for reading hit counters after a run).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The wrapped device (the torture harness reopens over it after a
    /// simulated crash, bypassing the dead fault layer).
    pub fn into_inner(self) -> Arc<dyn StableStorage> {
        self.inner
    }

    fn injected(point: FaultPoint) -> ReachError {
        ReachError::Io(format!("injected fault at {}", point.name()))
    }
}

impl StableStorage for FaultDisk {
    fn allocate(&self) -> Result<PageId> {
        // Allocation extends the device, so a dead device rejects it;
        // it is not an independently schedulable fault point.
        if self.injector.is_crashed() {
            return Err(ReachError::Io("injected fault: device crashed".into()));
        }
        self.inner.allocate()
    }

    fn read(&self, id: PageId) -> Result<Page> {
        match self.injector.check(FaultPoint::PageRead) {
            WriteOutcome::Proceed => self.inner.read(id),
            WriteOutcome::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.read(id)
            }
            _ => Err(Self::injected(FaultPoint::PageRead)),
        }
    }

    fn write(&self, page: &Page) -> Result<()> {
        match self.injector.check(FaultPoint::PageWrite) {
            WriteOutcome::Proceed => self.inner.write(page),
            WriteOutcome::Fail => Err(Self::injected(FaultPoint::PageWrite)),
            WriteOutcome::Torn { keep } => {
                // Power loss mid-write: the first `keep` bytes of the new
                // image land on the device, the rest keeps the old bytes.
                // The header's page-id field is preserved so the torn
                // image still sits at the right address.
                let old = self.inner.read(page.id())?;
                let keep = keep.min(PAGE_SIZE);
                let mut img = [0u8; PAGE_SIZE];
                img[..keep].copy_from_slice(&page.as_bytes()[..keep]);
                img[keep..].copy_from_slice(&old.as_bytes()[keep..]);
                img[0..8].copy_from_slice(&page.id().raw().to_le_bytes());
                self.inner.write(&Page::from_bytes(&img)?)?;
                Err(Self::injected(FaultPoint::PageWrite))
            }
            WriteOutcome::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.write(page)
            }
        }
    }

    fn sync(&self) -> Result<()> {
        match self.injector.check(FaultPoint::Sync) {
            WriteOutcome::Proceed => self.inner.sync(),
            WriteOutcome::Stall { millis } => {
                std::thread::sleep(std::time::Duration::from_millis(millis));
                self.inner.sync()
            }
            _ => Err(Self::injected(FaultPoint::Sync)),
        }
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn StableStorage) {
        let id = disk.allocate().unwrap();
        let mut p = disk.read(id).unwrap();
        let slot = p.insert(b"payload").unwrap();
        disk.write(&p).unwrap();
        let q = disk.read(id).unwrap();
        assert_eq!(q.get(slot).unwrap(), b"payload");
        disk.sync().unwrap();
    }

    #[test]
    fn memdisk_round_trip() {
        let d = MemDisk::new();
        exercise(&d);
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn memdisk_unwritten_page_reads_fresh() {
        let d = MemDisk::new();
        let id = d.allocate().unwrap();
        let p = d.read(id).unwrap();
        assert_eq!(p.id(), id);
        assert_eq!(p.live_count(), 0);
    }

    #[test]
    fn memdisk_unknown_page_errors() {
        let d = MemDisk::new();
        assert!(d.read(PageId::new(9)).is_err());
        assert!(d.read(PageId::NULL).is_err());
    }

    #[test]
    fn filedisk_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("reach-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.db");
        let _ = std::fs::remove_file(&path);
        let slot;
        let id;
        {
            let d = FileDisk::open(&path).unwrap();
            exercise(&d);
            id = d.allocate().unwrap();
            let mut p = d.read(id).unwrap();
            slot = p.insert(b"durable").unwrap();
            d.write(&p).unwrap();
            d.sync().unwrap();
        }
        // Reopen: allocation cursor resumes past the existing pages and
        // the data is still there.
        let d = FileDisk::open(&path).unwrap();
        assert_eq!(d.page_count(), 2);
        let p = d.read(id).unwrap();
        assert_eq!(p.get(slot).unwrap(), b"durable");
        let fresh = d.allocate().unwrap();
        assert_eq!(fresh.raw(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faultdisk_passes_through_without_faults() {
        let d = FaultDisk::new(Arc::new(MemDisk::new()), FaultInjector::disabled());
        exercise(&d);
        assert_eq!(d.page_count(), 1);
        assert_eq!(d.injector().injected(), 0);
    }

    #[test]
    fn faultdisk_fails_the_scheduled_read() {
        use reach_common::FaultPlan;
        let d = FaultDisk::new(
            Arc::new(MemDisk::new()),
            FaultInjector::new(FaultPlan::new().fail_at(FaultPoint::PageRead, 2)),
        );
        let id = d.allocate().unwrap();
        assert!(d.read(id).is_ok());
        assert!(matches!(d.read(id), Err(ReachError::Io(_))));
        assert!(d.read(id).is_ok(), "Fail is transient");
    }

    #[test]
    fn faultdisk_torn_write_persists_a_prefix() {
        use reach_common::FaultPlan;
        let mem: Arc<MemDisk> = Arc::new(MemDisk::new());
        let d = FaultDisk::new(
            Arc::clone(&mem) as Arc<dyn StableStorage>,
            FaultInjector::new(FaultPlan::new().torn_at(FaultPoint::PageWrite, 2, 100)),
        );
        let id = d.allocate().unwrap();
        let mut p = d.read(id).unwrap();
        p.insert(b"first").unwrap();
        d.write(&p).unwrap(); // occurrence 1: clean
        let mut q = d.read(id).unwrap();
        q.insert(b"second").unwrap();
        assert!(d.write(&q).is_err()); // occurrence 2: torn
                                       // The device now holds a frankenstein image: first 100 bytes of
                                       // the new write, old bytes after. It is NOT the clean old image.
        let on_disk = mem.read(id).unwrap();
        assert_ne!(on_disk.as_bytes(), p.as_bytes());
        assert_ne!(on_disk.as_bytes(), q.as_bytes());
        assert_eq!(&on_disk.as_bytes()[..100], &q.as_bytes()[..100]);
        assert_eq!(&on_disk.as_bytes()[100..], &p.as_bytes()[100..]);
        // Torn implies crash: all later mutations are rejected.
        assert!(d.write(&p).is_err());
        assert!(d.allocate().is_err());
        assert!(d.sync().is_err());
    }

    #[test]
    fn filedisk_unknown_page_errors() {
        let dir = std::env::temp_dir().join(format!("reach-disk2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.db");
        let _ = std::fs::remove_file(&path);
        let d = FileDisk::open(&path).unwrap();
        assert!(d.read(PageId::new(1)).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
