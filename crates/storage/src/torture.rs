//! The crash-point torture harness.
//!
//! A deterministic, seeded workload of inserts/updates/deletes grouped
//! into transactions (some of which abort, with occasional checkpoints)
//! is run twice per crash point:
//!
//! 1. an **oracle run** with no faults records the exact WAL frame
//!    sequence the workload produces;
//! 2. for every frame index `N`, a **crash run** over a fresh device
//!    schedules a clean crash at the Nth `wal_append`, reruns the same
//!    workload (identical up to the crash — determinism is the whole
//!    point), then "reboots": the surviving WAL bytes and the surviving
//!    device are reopened, recovery runs, and the visible state must
//!    equal the effects of exactly the transactions whose `Commit`
//!    record survived — nothing of any loser, nothing missing.
//!
//! The expected state for a crash at `N` is computed from the oracle's
//! frame prefix alone ([`committed_state`]), so the harness never trusts
//! the code under test to define correctness.

use crate::disk::{MemDisk, StableStorage};
use crate::heap::RecordId;
use crate::recovery::{recover, RecoveryReport};
use crate::sm::{StorageManager, SYSTEM_TXN};
use crate::wal::{Lsn, WalRecord, WriteAheadLog};
use reach_common::fault::{FaultInjector, FaultPlan, FaultPoint};
use reach_common::{Result, SplitMix64, TxnId};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Tuning knobs for the deterministic workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// PRNG seed; one seed determines the whole operation stream.
    pub seed: u64,
    /// Minimum number of record operations (insert/update/delete).
    pub ops: usize,
    /// Buffer-pool frames for the machine under test.
    pub pool_frames: usize,
    /// Sprinkle explicit checkpoints through the workload (the crash
    /// sweeps keep this on so checkpoint and truncation frames are
    /// themselves crash points). E17 turns it off to compare pure
    /// threshold-driven checkpointing against none at all — the rng
    /// stream is consumed identically either way, so the operation
    /// sequence does not depend on this flag.
    pub manual_checkpoints: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 0xC0FFEE,
            ops: 200,
            pool_frames: 16,
            manual_checkpoints: true,
        }
    }
}

/// Record state keyed by stable address: `(page, slot) -> payload`.
pub type State = BTreeMap<(u64, u16), Vec<u8>>;

/// Run the seeded workload against `sm`. Returns `Err` as soon as any
/// operation hits an (injected) I/O failure — the simulated machine has
/// lost power, so the driver stops exactly there, mimicking a real
/// client that never gets to issue another call.
pub fn run_workload(sm: &StorageManager, spec: &WorkloadSpec) -> Result<()> {
    run_workload_inner(sm, spec, &mut Vec::new())
}

/// Like [`run_workload`], additionally returning the transactions whose
/// `commit` call returned `Ok` — the *acknowledged* set. These are the
/// commits a client was told succeeded, so a crash may never lose them;
/// conversely a commit the client never saw acknowledged must not
/// resurface after recovery (the force-crash sweep checks both).
pub fn run_workload_acked(sm: &StorageManager, spec: &WorkloadSpec) -> (Result<()>, Vec<TxnId>) {
    let mut acked = Vec::new();
    let run = run_workload_inner(sm, spec, &mut acked);
    (run, acked)
}

fn run_workload_inner(
    sm: &StorageManager,
    spec: &WorkloadSpec,
    acked: &mut Vec<TxnId>,
) -> Result<()> {
    let mut rng = SplitMix64::new(spec.seed);
    let seg = sm.create_segment("torture")?;
    let mut live: Vec<RecordId> = Vec::new();
    let mut next_txn = 1u64;
    let mut done = 0usize;
    while done < spec.ops {
        let txn = TxnId::new(next_txn);
        next_txn += 1;
        sm.begin(txn)?;
        let n_ops = 2 + rng.below(4); // 2..=5 ops per transaction
        let mut inserted: Vec<RecordId> = Vec::new();
        let mut deleted: Vec<RecordId> = Vec::new();
        for i in 0..n_ops {
            let roll = rng.below(10);
            if live.is_empty() || roll < 5 {
                let payload = format!("t{}-op{}-{:08x}", txn.raw(), i, rng.next_u64() as u32);
                let rid = sm.insert(txn, seg, payload.as_bytes())?;
                live.push(rid);
                inserted.push(rid);
            } else if roll < 8 {
                let rid = live[rng.below(live.len())];
                let payload = format!("t{}-up{}-{:08x}", txn.raw(), i, rng.next_u64() as u32);
                sm.update(txn, seg, rid, payload.as_bytes())?;
            } else {
                let rid = live.swap_remove(rng.below(live.len()));
                sm.delete(txn, seg, rid)?;
                deleted.push(rid);
            }
        }
        done += n_ops;
        if rng.chance(1, 6) {
            sm.abort(txn)?;
            // Roll the driver's bookkeeping back with the transaction:
            // this txn's inserts are gone (even ones it deleted again),
            // records it deleted from older transactions are back.
            live.retain(|r| !inserted.contains(r));
            live.extend(deleted.into_iter().filter(|r| !inserted.contains(r)));
        } else {
            sm.commit(txn)?;
            acked.push(txn);
        }
        // 1-in-4 so every seed actually exercises checkpoint +
        // truncation frames as crash points (1-in-12 never fired for
        // the default seed's draw sequence). The draw is consumed even
        // with checkpoints off, keeping the op stream flag-independent.
        if rng.chance(1, 4) && spec.manual_checkpoints {
            sm.checkpoint()?;
        }
    }
    Ok(())
}

/// Run the workload fault-free over fresh in-memory parts and return the
/// full WAL frame sequence it produces — the oracle for every crash run.
///
/// Checkpoints truncate the log as they go, exactly as in the crash
/// runs; the oracle log runs in archive mode so the truncated prefix is
/// kept aside and the *complete* frame history is returned.
pub fn oracle_frames(spec: &WorkloadSpec) -> Result<Vec<(Lsn, WalRecord)>> {
    let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_archive(true);
    let (sm, _) = StorageManager::open_with(disk, Arc::clone(&wal), spec.pool_frames)?;
    run_workload(&sm, spec)?;
    wal.scan_all()
}

/// The record state exactly the committed transactions in `prefix`
/// produced: winners are transactions whose `Commit` frame is inside the
/// prefix; their Insert/Update/Delete records are applied in log order.
/// Losers and system (catalog) records contribute nothing.
pub fn committed_state(prefix: &[(Lsn, WalRecord)]) -> State {
    let winners: HashSet<TxnId> = prefix
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state = State::new();
    for (_, rec) in prefix {
        let Some(txn) = rec.txn() else { continue };
        if txn == SYSTEM_TXN || !winners.contains(&txn) {
            continue;
        }
        match rec {
            WalRecord::Insert {
                page,
                slot,
                payload,
                ..
            } => {
                state.insert((page.raw(), *slot), payload.clone());
            }
            WalRecord::Update {
                page, slot, after, ..
            } => {
                state.insert((page.raw(), *slot), after.clone());
            }
            WalRecord::Delete { page, slot, .. } => {
                state.remove(&(page.raw(), *slot));
            }
            _ => {}
        }
    }
    state
}

/// The record state actually visible through `sm` after recovery.
pub fn visible_state(sm: &StorageManager) -> Result<State> {
    let Ok(seg) = sm.segment("torture") else {
        // The crash predates the (committed) catalog entry: an empty
        // database is the only correct answer.
        return Ok(State::new());
    };
    Ok(sm
        .scan(seg)?
        .into_iter()
        .map(|(rid, bytes)| ((rid.page.raw(), rid.slot), bytes))
        .collect())
}

/// Outcome of one crash-point run, for reporting.
#[derive(Debug, Clone)]
pub struct CrashPointResult {
    /// The WAL frame index the machine was crashed at.
    pub crash_at_frame: usize,
    /// What recovery did on reboot.
    pub report: RecoveryReport,
    /// Torn-tail bytes discarded, read back from the rebooted storage
    /// manager's metrics registry (the single source `exp_torture` and
    /// `exp_observe` report from) rather than from the report struct.
    pub salvaged_bytes: u64,
}

/// Simulate a clean crash at WAL frame `n` (1-based): run the workload
/// until the injected crash stops it, reboot over the surviving bytes,
/// recover, and verify the visible state against the oracle prefix.
/// Panics (with the crash point in the message) on any divergence.
pub fn torture_at(spec: &WorkloadSpec, oracle: &[(Lsn, WalRecord)], n: usize) -> CrashPointResult {
    assert!(n >= 1 && n <= oracle.len());
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalAppend, n as u64),
    ));
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .expect("fresh open cannot fault before the first append");
    let run = run_workload(&sm, spec);
    assert!(
        run.is_err(),
        "crash at frame {n} of {} must stop the workload",
        oracle.len()
    );
    drop(sm); // the buffer pool dies with the machine — no flush

    // ---- reboot ----
    let image = wal.image().expect("in-memory image");
    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    let (sm2, report) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .unwrap_or_else(|e| panic!("recovery after crash at frame {n} failed: {e}"));

    // Capture the registry's per-reboot recovery figures now — the
    // idempotence re-run below publishes its own (empty) pass over them.
    let salvaged_bytes = sm2.metrics().recovery.salvaged_bytes.get();

    let expected = committed_state(&oracle[..n - 1]);
    let got = visible_state(&sm2).unwrap();
    assert_eq!(
        got, expected,
        "state divergence after crash at frame {n}: committed data lost or loser effects leaked"
    );

    // Recovery must be idempotent: running it again changes nothing.
    let second = recover(&sm2).unwrap();
    assert!(
        second.losers.is_empty() && second.undone == 0,
        "second recovery after crash at frame {n} was not a no-op: {second:?}"
    );
    assert_eq!(visible_state(&sm2).unwrap(), expected);

    CrashPointResult {
        crash_at_frame: n,
        report,
        salvaged_bytes,
    }
}

/// Like [`torture_at`], but the *recovery* run itself is crashed at its
/// `m`-th WAL append (recovery appends CLRs and Aborts while undoing
/// losers), and the machine reboots a second time. The final state must
/// still converge to the oracle prefix. If recovery appends fewer than
/// `m` records no fault fires — that degenerate case is still verified.
pub fn torture_crash_during_recovery(
    spec: &WorkloadSpec,
    oracle: &[(Lsn, WalRecord)],
    n: usize,
    m: u64,
) {
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalAppend, n as u64),
    ));
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .unwrap();
    assert!(run_workload(&sm, spec).is_err());
    drop(sm);

    // First reboot: recovery runs against a log that dies at append m.
    let revived = Arc::new(WriteAheadLog::in_memory_from(wal.image().unwrap()));
    revived.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalAppend, m),
    ));
    let first_attempt = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&revived),
        spec.pool_frames,
    );
    drop(first_attempt); // crashed mid-recovery (or finished, if < m appends)

    // Second reboot: no faults. Whatever the first attempt left behind
    // (partial CLRs included), recovery must converge.
    let final_wal = Arc::new(WriteAheadLog::in_memory_from(revived.image().unwrap()));
    let (sm3, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        final_wal,
        spec.pool_frames,
    )
    .unwrap_or_else(|e| {
        panic!("re-recovery (crash at frame {n}, recovery append {m}) failed: {e}")
    });
    let expected = committed_state(&oracle[..n - 1]);
    assert_eq!(
        visible_state(&sm3).unwrap(),
        expected,
        "crash-during-recovery (frame {n}, recovery append {m}) did not converge"
    );
}

/// Number of real log syncs the fault-free workload performs — the size
/// of the force-crash sweep's crash-point space. Counted by the same
/// implementation the crash runs go through ([`FaultPoint::WalForce`]
/// fires once per actual sync; fast-path skips don't reach it), so
/// crash point `k` in `1..=count` lines up exactly.
pub fn oracle_force_count(spec: &WorkloadSpec) -> Result<u64> {
    let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    let (sm, _) = StorageManager::open_with(disk, wal, spec.pool_frames)?;
    sm.metrics().enable();
    run_workload(&sm, spec)?;
    Ok(sm.metrics().wal.forces.get())
}

/// Crash the machine at its `k`-th log sync (1-based) — *inside* the
/// group-commit sequencer, after the leader was elected but before the
/// device sync happened — then reboot over only the **forced prefix**
/// of the log ([`WriteAheadLog::durable_image`]): a force-crash loses
/// the whole buffered tail, which is exactly the window group commit
/// widens. After recovery:
///
/// * every *acknowledged* commit (its `commit` call returned `Ok`) is
///   fully visible — the group force covering it completed first;
/// * no unacknowledged commit surfaces — its record was still in the
///   lost tail;
/// * recovery is idempotent.
///
/// Checkpoints may have truncated the log before the crash, so the full
/// frame history is the oracle's truncated prefix (identical by
/// determinism, and forced — the cut never passes the forced LSN)
/// stitched to the surviving durable records.
pub fn torture_force_crash(spec: &WorkloadSpec, oracle: &[(Lsn, WalRecord)], k: u64) {
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalForce, k),
    ));
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .expect("fresh open cannot fault before the first force");
    let (run, acked) = run_workload_acked(&sm, spec);
    assert!(run.is_err(), "crash at force {k} must stop the workload");
    drop(sm); // pool dies with the machine

    // ---- reboot over the forced prefix only ----
    let image = wal.durable_image().expect("in-memory image");
    let durable_wal = WriteAheadLog::in_memory_from(image.clone());
    let base = durable_wal.base_lsn();
    let durable_records = durable_wal.scan().expect("durable prefix scans cleanly");
    let full_history: Vec<(Lsn, WalRecord)> = oracle
        .iter()
        .filter(|(lsn, _)| *lsn < base)
        .cloned()
        .chain(durable_records.iter().cloned())
        .collect();

    // The acked set and the durable winners must be the same set: a
    // commit is acknowledged exactly when the sync covering its record
    // returned, so the crashed force's own commit (if any) is in
    // neither, and every earlier one is in both. Winners come from the
    // full history — a commit whose record fell below a truncation cut
    // was forced (and acked) before that cut was taken.
    let winners: HashSet<TxnId> = full_history
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let acked_set: HashSet<TxnId> = acked.iter().copied().collect();
    let lost: Vec<_> = acked_set.difference(&winners).collect();
    assert!(
        lost.is_empty(),
        "crash at force {k}: acked commits lost from the durable log: {lost:?}"
    );
    let phantom: Vec<_> = winners.difference(&acked_set).collect();
    assert!(
        phantom.is_empty(),
        "crash at force {k}: unacked commits durable: {phantom:?}"
    );

    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    let (sm2, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .unwrap_or_else(|e| panic!("recovery after crash at force {k} failed: {e}"));
    let expected = committed_state(&full_history);
    assert_eq!(
        visible_state(&sm2).unwrap(),
        expected,
        "state divergence after crash at force {k}"
    );

    // Idempotence, as in the frame sweep.
    let second = recover(&sm2).unwrap();
    assert!(
        second.losers.is_empty() && second.undone == 0,
        "second recovery after crash at force {k} was not a no-op: {second:?}"
    );
    assert_eq!(visible_state(&sm2).unwrap(), expected);
}

/// Number of log-truncation attempts the fault-free workload performs —
/// one per completed checkpoint, counted by the ungated
/// `ckpt.taken` metric, so crash point `k` in `1..=count` of the
/// truncate-crash sweep lines up exactly with the `k`-th checkpoint.
pub fn oracle_truncate_count(spec: &WorkloadSpec) -> Result<u64> {
    let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    let (sm, _) = StorageManager::open_with(disk, wal, spec.pool_frames)?;
    run_workload(&sm, spec)?;
    Ok(sm.metrics().ckpt.taken.get())
}

/// Crash the machine at its `k`-th log truncation (1-based) — after the
/// checkpoint's `EndCheckpoint` was appended and forced, before any log
/// byte is dropped. This is the riskiest instant of the checkpoint
/// protocol: the new checkpoint is already the one analysis will pick,
/// and the prefix it promises not to need is still present. After
/// reboot the visible state must equal the full-history committed
/// prefix, and recovery must be idempotent.
pub fn torture_truncate_crash(spec: &WorkloadSpec, oracle: &[(Lsn, WalRecord)], k: u64) {
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalTruncate, k),
    ));
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .expect("fresh open cannot fault before the first truncation");
    let run = run_workload(&sm, spec);
    assert!(
        run.is_err(),
        "crash at truncation {k} must stop the workload"
    );
    drop(sm); // pool dies with the machine

    // ---- reboot over the surviving bytes ----
    let image = wal.image().expect("in-memory image");
    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    let tail = revived.tail();
    // The crash run is the oracle run up to the crash moment, and the
    // k-th truncation dropped nothing, so the full history is simply
    // every oracle frame below the surviving tail (frames below the
    // revived base were dropped by *earlier*, completed truncations).
    let full_history: Vec<(Lsn, WalRecord)> = oracle
        .iter()
        .filter(|(lsn, _)| *lsn < tail)
        .cloned()
        .collect();
    let (sm2, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .unwrap_or_else(|e| panic!("recovery after crash at truncation {k} failed: {e}"));
    let expected = committed_state(&full_history);
    assert_eq!(
        visible_state(&sm2).unwrap(),
        expected,
        "state divergence after crash at truncation {k}"
    );

    let second = recover(&sm2).unwrap();
    assert!(
        second.losers.is_empty() && second.undone == 0,
        "second recovery after crash at truncation {k} was not a no-op: {second:?}"
    );
    assert_eq!(visible_state(&sm2).unwrap(), expected);
}

// ---- index torture ----
//
// The same oracle discipline, applied to the persistent B+Tree: the
// index workload's correctness is defined by the *logical*
// IndexInsert/IndexDelete records of committed transactions alone, so
// the harness never trusts the tree's physical page writes (splits,
// catalog updates, CLR-driven repairs) to define what "correct" means.

/// Name under which the index torture workload creates its tree.
pub const TORTURE_INDEX: &str = "torture-idx";

/// The exact `(key, oid)` pair set an index should hold.
pub type IndexState = std::collections::BTreeSet<(Vec<u8>, u64)>;

/// Run the seeded index workload against `sm`: transactions of
/// inserts/deletes against one tree built with fanout 4 (so even a
/// small run splits leaves, splits internals, and grows the root),
/// 1-in-6 aborts exercising logical undo through the tree, and
/// checkpoints putting tree pages into the dirty-page table.
pub fn run_index_workload(sm: &StorageManager, spec: &WorkloadSpec) -> Result<()> {
    let mut rng = SplitMix64::new(spec.seed ^ 0x1D0C5);
    let idx = sm.create_index_with(TORTURE_INDEX, Some(4))?;
    let mut live: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut next_oid = 1u64;
    let mut next_txn = 1u64;
    let mut done = 0usize;
    while done < spec.ops {
        let txn = TxnId::new(next_txn);
        next_txn += 1;
        sm.begin(txn)?;
        let n_ops = 2 + rng.below(4); // 2..=5 ops per transaction
        let mut inserted: Vec<(Vec<u8>, u64)> = Vec::new();
        let mut deleted: Vec<(Vec<u8>, u64)> = Vec::new();
        for _ in 0..n_ops {
            let roll = rng.below(10);
            if live.is_empty() || roll < 6 {
                // Fresh oids keep pairs unique; a small key domain keeps
                // duplicate keys (multiple oids per key) common.
                let key = format!("k{:04}", rng.below(300)).into_bytes();
                let oid = next_oid;
                next_oid += 1;
                sm.index_insert(txn, idx, &key, oid)?;
                live.push((key.clone(), oid));
                inserted.push((key, oid));
            } else {
                let (key, oid) = live.swap_remove(rng.below(live.len()));
                sm.index_delete(txn, idx, &key, oid)?;
                deleted.push((key, oid));
            }
        }
        done += n_ops;
        if rng.chance(1, 6) {
            sm.abort(txn)?;
            live.retain(|p| !inserted.contains(p));
            live.extend(deleted.into_iter().filter(|p| !inserted.contains(p)));
        } else {
            sm.commit(txn)?;
        }
        if rng.chance(1, 4) && spec.manual_checkpoints {
            sm.checkpoint()?;
        }
    }
    Ok(())
}

/// Fault-free oracle run of the index workload (archive mode, complete
/// frame history) — see [`oracle_frames`].
pub fn index_oracle_frames(spec: &WorkloadSpec) -> Result<Vec<(Lsn, WalRecord)>> {
    let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_archive(true);
    let (sm, _) = StorageManager::open_with(disk, Arc::clone(&wal), spec.pool_frames)?;
    run_index_workload(&sm, spec)?;
    wal.scan_all()
}

/// The pair set exactly the committed transactions in `prefix` built,
/// from their logical records applied in log order. The tree's physical
/// SYSTEM_TXN page writes contribute nothing — they are mechanism, not
/// meaning.
pub fn committed_index_state(prefix: &[(Lsn, WalRecord)]) -> IndexState {
    let winners: HashSet<TxnId> = prefix
        .iter()
        .filter_map(|(_, r)| match r {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state = IndexState::new();
    for (_, rec) in prefix {
        match rec {
            WalRecord::IndexInsert { txn, key, oid, .. } if winners.contains(txn) => {
                state.insert((key.clone(), *oid));
            }
            WalRecord::IndexDelete { txn, key, oid, .. } if winners.contains(txn) => {
                state.remove(&(key.clone(), *oid));
            }
            _ => {}
        }
    }
    state
}

/// The pair set actually visible through the recovered index (a full
/// ascending range scan). A crash that predates the committed catalog
/// entry means no index exists — the empty set is then the only correct
/// answer.
pub fn visible_index_state(sm: &StorageManager) -> Result<IndexState> {
    let Some((_, id)) = sm
        .index_names()?
        .into_iter()
        .find(|(n, _)| n == TORTURE_INDEX)
    else {
        return Ok(IndexState::new());
    };
    Ok(sm
        .index_range(id, std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)?
        .into_iter()
        .collect())
}

/// Index-workload analogue of [`torture_at`]: crash at WAL frame `n`
/// (1-based), reboot over the surviving bytes, recover, and verify the
/// recovered tree equals the committed pair set — then verify recovery
/// is idempotent. Crash points land inside leaf splits, internal
/// splits, root growth, catalog updates, and restart-undo of loser
/// inserts/deletes; the B-link invariant (right links + exclusive high
/// keys) is what makes every such prefix searchable.
pub fn index_torture_at(
    spec: &WorkloadSpec,
    oracle: &[(Lsn, WalRecord)],
    n: usize,
) -> CrashPointResult {
    assert!(n >= 1 && n <= oracle.len());
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    wal.set_injector(FaultInjector::new(
        FaultPlan::new().crash_at(FaultPoint::WalAppend, n as u64),
    ));
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        spec.pool_frames,
    )
    .expect("fresh open cannot fault before the first append");
    let run = run_index_workload(&sm, spec);
    assert!(
        run.is_err(),
        "index crash at frame {n} of {} must stop the workload",
        oracle.len()
    );
    drop(sm); // the buffer pool dies with the machine — no flush

    // ---- reboot ----
    let image = wal.image().expect("in-memory image");
    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    let (sm2, report) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .unwrap_or_else(|e| panic!("index recovery after crash at frame {n} failed: {e}"));
    let salvaged_bytes = sm2.metrics().recovery.salvaged_bytes.get();

    let expected = committed_index_state(&oracle[..n - 1]);
    let got = visible_index_state(&sm2).unwrap();
    assert_eq!(
        got, expected,
        "index divergence after crash at frame {n}: committed pairs lost or loser pairs leaked"
    );

    // Recovery must be idempotent: running it again changes nothing.
    let second = recover(&sm2).unwrap();
    assert!(
        second.losers.is_empty() && second.undone == 0,
        "second recovery after index crash at frame {n} was not a no-op: {second:?}"
    );
    assert_eq!(visible_index_state(&sm2).unwrap(), expected);

    CrashPointResult {
        crash_at_frame: n,
        report,
        salvaged_bytes,
    }
}
