//! Property-based crash-recovery testing: arbitrary transactional
//! scripts, a crash at an arbitrary point, then recovery — committed
//! effects must all survive, uncommitted effects must all vanish.

use proptest::prelude::*;
use reach_common::TxnId;
use reach_storage::recovery::recover;
use reach_storage::{RecordId, StorageManager};
use std::collections::HashMap;

/// One scripted transaction: a list of operations, then commit or not.
#[derive(Debug, Clone)]
struct Script {
    ops: Vec<Op>,
    commits: bool,
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    /// Update the n-th record this script inserted (if any).
    Update(usize, Vec<u8>),
    /// Delete the n-th record of the *previous committed* state.
    DeleteCommitted(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..80).prop_map(Op::Insert),
        ((0usize..4), proptest::collection::vec(any::<u8>(), 1..80))
            .prop_map(|(i, d)| Op::Update(i, d)),
        (0usize..4).prop_map(Op::DeleteCommitted),
    ]
}

fn script_strategy() -> impl Strategy<Value = Script> {
    (
        proptest::collection::vec(op_strategy(), 1..6),
        any::<bool>(),
    )
        .prop_map(|(ops, commits)| Script { ops, commits })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn committed_state_survives_any_crash_point(
        scripts in proptest::collection::vec(script_strategy(), 1..6)
    ) {
        let sm = StorageManager::new_in_memory(64).unwrap();
        let seg = sm.create_segment("t").unwrap();
        // The model of committed state.
        let mut committed: HashMap<RecordId, Vec<u8>> = HashMap::new();
        let mut txn_raw = 0u64;
        for script in &scripts {
            txn_raw += 1;
            let txn = TxnId::new(txn_raw);
            sm.begin(txn).unwrap();
            let mut my_inserts: Vec<RecordId> = Vec::new();
            let mut staged = committed.clone();
            for op in &script.ops {
                match op {
                    Op::Insert(data) => {
                        let rid = sm.insert(txn, seg, data).unwrap();
                        my_inserts.push(rid);
                        staged.insert(rid, data.clone());
                    }
                    Op::Update(i, data) => {
                        if !my_inserts.is_empty() {
                            let rid = my_inserts[i % my_inserts.len()];
                            if sm.update(txn, seg, rid, data).is_ok() {
                                staged.insert(rid, data.clone());
                            }
                        }
                    }
                    Op::DeleteCommitted(i) => {
                        let mut keys: Vec<RecordId> =
                            staged.keys().copied().collect();
                        keys.sort();
                        if !keys.is_empty() {
                            let rid = keys[i % keys.len()];
                            if sm.delete(txn, seg, rid).is_ok() {
                                staged.remove(&rid);
                            }
                        }
                    }
                }
            }
            if script.commits {
                sm.commit(txn).unwrap();
                committed = staged;
            }
            // Not committing = the crash will hit this txn as a loser.
        }
        // CRASH + recovery.
        let report = recover(&sm).unwrap();
        // Losers = scripts that did not commit (and did ops).
        let expected_losers = scripts.iter().filter(|s| !s.commits).count();
        prop_assert!(report.losers.len() <= expected_losers);
        // The surviving store matches the committed model exactly.
        let survived: HashMap<RecordId, Vec<u8>> =
            sm.scan(seg).unwrap().into_iter().collect();
        prop_assert_eq!(&survived, &committed);
        // Recovery is idempotent.
        recover(&sm).unwrap();
        let survived2: HashMap<RecordId, Vec<u8>> =
            sm.scan(seg).unwrap().into_iter().collect();
        prop_assert_eq!(&survived2, &committed);
    }
}
