//! Checkpoint / truncation behavior at the storage-manager surface.

use reach_common::TxnId;
use reach_storage::StorageManager;

/// A read-only transaction straddling a checkpoint neither blocks the
/// checkpointer nor pins log truncation: it has no first-write LSN, so
/// it never enters the active-writer table and the cut is free to land
/// at the checkpoint's own Begin record.
#[test]
fn read_only_txn_does_not_pin_truncation() {
    let sm = StorageManager::new_in_memory(64).unwrap();
    let seg = sm.create_segment("t").unwrap();
    let w = TxnId::new(1);
    sm.begin(w).unwrap();
    for i in 0..32 {
        sm.insert(w, seg, format!("row{i}").as_bytes()).unwrap();
    }
    let rid = sm.insert(w, seg, b"probe").unwrap();
    sm.commit(w).unwrap();

    // Reader begins before the checkpoint and is still open across it.
    let r = TxnId::new(2);
    sm.begin(r).unwrap();
    assert_eq!(sm.get(seg, rid).unwrap(), b"probe");

    let stats = sm.checkpoint().unwrap();
    assert_eq!(
        stats.active_writers, 0,
        "an open reader must not appear in the active-writer table"
    );
    assert_eq!(
        stats.cutoff, stats.begin_lsn,
        "with no writers and a clean pool the cut reaches the checkpoint itself"
    );
    assert!(
        stats.truncated_bytes > 0,
        "the whole pre-checkpoint log prefix should have been dropped"
    );

    // The reader is still fully usable after the truncation it survived.
    assert_eq!(sm.get(seg, rid).unwrap(), b"probe");
    sm.commit(r).unwrap();
    assert_eq!(sm.scan(seg).unwrap().len(), 33);
}

/// Contrast case: an open *writer* pins the cut at its first-write LSN,
/// and releases it once finished.
#[test]
fn open_writer_pins_truncation_until_it_finishes() {
    let sm = StorageManager::new_in_memory(64).unwrap();
    let seg = sm.create_segment("t").unwrap();
    let w = TxnId::new(1);
    sm.begin(w).unwrap();
    sm.insert(w, seg, b"pinning write").unwrap();
    // Plenty of committed traffic after the pin, so there are bytes the
    // cut would otherwise reclaim.
    let w2 = TxnId::new(2);
    sm.begin(w2).unwrap();
    for i in 0..32 {
        sm.insert(w2, seg, format!("bulk{i}").as_bytes()).unwrap();
    }
    sm.commit(w2).unwrap();

    let pinned = sm.checkpoint().unwrap();
    assert_eq!(pinned.active_writers, 1);
    assert!(
        pinned.cutoff < pinned.begin_lsn,
        "an open writer must hold the cut below the checkpoint"
    );

    sm.commit(w).unwrap();
    let released = sm.checkpoint().unwrap();
    assert_eq!(released.active_writers, 0);
    assert!(
        released.cutoff > pinned.cutoff,
        "finishing the writer must advance the cut"
    );
    assert_eq!(sm.scan(seg).unwrap().len(), 33);
}

/// A failed outcome append keeps the writer's truncation pin — with no
/// durable Commit/Abort its write records could still be needed for
/// undo — and a successfully retried commit releases it.
#[test]
fn failed_outcome_append_keeps_pin_until_retried() {
    use reach_common::{FaultInjector, FaultPlan, FaultPoint};
    let sm = StorageManager::new_in_memory(64).unwrap();
    let seg = sm.create_segment("t").unwrap();
    let w = TxnId::new(1);
    sm.begin(w).unwrap();
    sm.insert(w, seg, b"needs undo if orphaned").unwrap();
    // The very next WAL append — the Commit record — fails transiently.
    sm.wal().set_injector(FaultInjector::new(
        FaultPlan::new().fail_at(FaultPoint::WalAppend, 1),
    ));
    assert!(sm.commit(w).is_err());
    let pinned = sm.checkpoint().unwrap();
    assert_eq!(
        pinned.active_writers, 1,
        "a writer whose outcome append failed must stay in the active table"
    );
    assert!(
        pinned.cutoff < pinned.begin_lsn,
        "the stuck writer's first-write LSN must bound the cut"
    );
    // Retrying the outcome releases the pin.
    sm.commit(w).unwrap();
    let released = sm.checkpoint().unwrap();
    assert_eq!(released.active_writers, 0);
    assert!(
        released.cutoff > pinned.cutoff,
        "finishing the writer must advance the cut"
    );
    assert_eq!(sm.scan(seg).unwrap().len(), 1);
}

/// The byte-threshold trigger takes checkpoints on its own as the log
/// grows, and stays quiet when disarmed.
#[test]
fn byte_threshold_arms_automatic_checkpoints() {
    let sm = StorageManager::new_in_memory(64).unwrap();
    let seg = sm.create_segment("t").unwrap();
    let taken_before = sm.metrics().ckpt.taken.get();
    sm.set_checkpoint_threshold(Some(2048));
    for t in 1..=20u64 {
        let txn = TxnId::new(t);
        sm.begin(txn).unwrap();
        sm.insert(txn, seg, &[0xAB; 200]).unwrap();
        sm.commit(txn).unwrap();
    }
    let taken = sm.metrics().ckpt.taken.get() - taken_before;
    assert!(
        taken >= 2,
        "20 commits of ~200-byte records past a 2 KiB threshold took only {taken} checkpoints"
    );
    // Disarm: no further automatic checkpoints.
    sm.set_checkpoint_threshold(None);
    let frozen = sm.metrics().ckpt.taken.get();
    for t in 21..=30u64 {
        let txn = TxnId::new(t);
        sm.begin(txn).unwrap();
        sm.insert(txn, seg, &[0xCD; 200]).unwrap();
        sm.commit(txn).unwrap();
    }
    assert_eq!(sm.metrics().ckpt.taken.get(), frozen);
    assert_eq!(sm.scan(seg).unwrap().len(), 30);
}
