//! Snapshot readers versus checkpoint/truncation.
//!
//! MVCC version chains live above the storage manager, but they must be
//! *independent* of it in one specific way: a fuzzy checkpoint that
//! truncates the WAL reclaims log history, and a read-only snapshot
//! that was stamped before the checkpoint must keep reading its
//! committed prefix afterwards — version visibility is governed by the
//! GC watermark (oldest live snapshot), never by the log cut. This test
//! wires a real `TransactionManager` (publish-then-advance, snapshot
//! registry) to a real `StorageManager` (WAL, fuzzy checkpoint, prefix
//! truncation) and drives a reader across the boundary.

use reach_common::{ObjectId, TxnId, VirtualClock};
use reach_storage::StorageManager;
use reach_txn::{CommitTs, LockMode, TransactionManager, VersionPublisher, VersionStore};
use std::sync::{Arc, Mutex};

/// Publishes committed record images into a version store; the stand-in
/// for the OODB layer's `SnapshotPm` at storage scale.
struct ImagePublisher {
    store: VersionStore<Vec<u8>>,
    staged: Mutex<Vec<(TxnId, ObjectId, Vec<u8>)>>,
}

impl VersionPublisher for ImagePublisher {
    fn publish(&self, txn: TxnId, ts: CommitTs) -> usize {
        let mut staged = self.staged.lock().unwrap();
        let mut n = 0;
        staged.retain(|(t, oid, img)| {
            if *t == txn {
                self.store.publish(*oid, ts, Some(img.clone()));
                n += 1;
                false
            } else {
                true
            }
        });
        n
    }

    fn vacuum(&self, watermark: CommitTs) -> usize {
        self.store.vacuum(watermark)
    }
}

#[test]
fn snapshot_spanning_checkpoint_and_truncation_reads_consistently() {
    let sm = StorageManager::new_in_memory(64).unwrap();
    let seg = sm.create_segment("snapshots").unwrap();
    let tm = TransactionManager::new(Arc::new(VirtualClock::new_virtual()));
    let p = Arc::new(ImagePublisher {
        store: VersionStore::new(),
        staged: Mutex::new(Vec::new()),
    });
    tm.add_version_publisher(Arc::clone(&p) as Arc<dyn VersionPublisher>);
    let oid = ObjectId::new(1);

    // Durability first, publication second — the same order the commit
    // protocol uses (publish runs after every resource manager reports
    // durable, while locks are still held).
    let commit_image = |img: &[u8], rid: Option<reach_storage::RecordId>| {
        let txn = tm.begin().unwrap();
        tm.lock(txn, oid, LockMode::Exclusive).unwrap();
        sm.begin(txn).unwrap();
        let rid = match rid {
            Some(r) => {
                sm.update(txn, seg, r, img).unwrap();
                r
            }
            None => sm.insert(txn, seg, img).unwrap(),
        };
        sm.commit(txn).unwrap();
        p.staged.lock().unwrap().push((txn, oid, img.to_vec()));
        tm.commit(txn).unwrap();
        rid
    };

    let rid = commit_image(b"v1", None);
    let reader = tm.begin_read_only().unwrap();
    let stamp = tm.snapshot_stamp(reader).unwrap();
    assert_eq!(
        p.store
            .read_at(oid, stamp)
            .and_then(|v| v.payload)
            .as_deref(),
        Some(&b"v1"[..])
    );

    // Writers churn past the snapshot, then a fuzzy checkpoint runs and
    // truncates the log prefix.
    commit_image(b"v2", Some(rid));
    commit_image(b"v3", Some(rid));
    let stats = sm.checkpoint().unwrap();
    assert!(
        stats.truncated_bytes > 0,
        "checkpoint found nothing to truncate; scenario not exercised"
    );

    // The snapshot's view is untouched by the log cut: same stamp, same
    // committed prefix, still zero coupling to the current record state.
    assert_eq!(
        p.store
            .read_at(oid, stamp)
            .and_then(|v| v.payload)
            .as_deref(),
        Some(&b"v1"[..]),
        "log truncation must not disturb a pinned snapshot version"
    );
    assert_eq!(sm.get(seg, rid).unwrap(), b"v3", "current state moved on");
    assert_eq!(p.store.versions_of(oid), 3, "reader pins the whole chain");

    // Reader leaves: the watermark jumps and vacuum reclaims everything
    // below the newest committed version.
    tm.commit(reader).unwrap();
    assert_eq!(p.store.versions_of(oid), 1);
    assert_eq!(
        p.store
            .read_at(oid, CommitTs::MAX)
            .and_then(|v| v.payload)
            .as_deref(),
        Some(&b"v3"[..])
    );
}
