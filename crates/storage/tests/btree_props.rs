//! Property-based B+Tree testing: arbitrary insert/delete/scan scripts
//! executed against the persistent tree AND an in-memory
//! `BTreeMap<(key, oid), ()>` shadow — the differential oracle. After
//! every script the full ascending scan, point lookups, and arbitrary
//! range scans must agree exactly.
//!
//! Fanouts are drawn from the boundary range (2..=6) so even short
//! scripts force leaf splits, internal splits, and root growth; keys
//! come from a small domain so duplicate keys (several oids under one
//! key) and delete-then-reinsert into emptied nodes are common.
//!
//! Seeding follows the suite convention: the proptest shim replays
//! `REACH_SEED` (and any pinned `proptest-regressions` seeds) before
//! its deterministic case stream, so CI's seed matrix varies the
//! scripts and failures reproduce exactly.

use proptest::prelude::*;
use reach_common::obs::MetricsRegistry;
use reach_storage::{BTree, BufferPool, MemDisk, StableStorage, WriteAheadLog};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Insert; small key/oid domains make duplicate pairs common, and
    /// re-inserting an existing pair must be a no-op on both sides.
    Insert(u16, u8),
    /// Delete (often missing — must be a no-op on both sides).
    Delete(u16, u8),
    /// Range scan with arbitrary bounds (possibly inverted or empty);
    /// the third draw picks the bound kinds.
    Range(u16, u16, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..120, 0u8..5).prop_map(|(k, o)| Op::Insert(k, o)),
        (0u16..120, 0u8..5).prop_map(|(k, o)| Op::Insert(k, o)),
        (0u16..120, 0u8..5).prop_map(|(k, o)| Op::Delete(k, o)),
        (0u16..130, 0u16..130, 0u8..9).prop_map(|(a, b, m)| Op::Range(a, b, m)),
    ]
}

fn key(k: u16) -> Vec<u8> {
    format!("key{k:04}").into_bytes()
}

fn bound(k: u16, mode: u8) -> Bound<Vec<u8>> {
    match mode % 3 {
        0 => Bound::Included(key(k)),
        1 => Bound::Excluded(key(k)),
        _ => Bound::Unbounded,
    }
}

fn as_ref_bound(b: &Bound<Vec<u8>>) -> Bound<&[u8]> {
    match b {
        Bound::Included(k) => Bound::Included(k.as_slice()),
        Bound::Excluded(k) => Bound::Excluded(k.as_slice()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The shadow's answer to a range scan, with the same semantics the
/// planner gets from the tree: bounds apply to the *key*; a matched
/// key's duplicate oids are included or excluded wholesale.
fn shadow_range(
    shadow: &BTreeMap<(Vec<u8>, u64), ()>,
    low: &Bound<Vec<u8>>,
    high: &Bound<Vec<u8>>,
) -> Vec<(Vec<u8>, u64)> {
    shadow
        .keys()
        .filter(|(k, _)| match low {
            Bound::Included(l) => k >= l,
            Bound::Excluded(l) => k > l,
            Bound::Unbounded => true,
        })
        .filter(|(k, _)| match high {
            Bound::Included(h) => k <= h,
            Bound::Excluded(h) => k < h,
            Bound::Unbounded => true,
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn btree_matches_shadow_under_any_script(
        fanout in 2usize..7,
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let disk: Arc<dyn StableStorage> = Arc::new(MemDisk::new());
        let pool = Arc::new(BufferPool::with_metrics(
            disk,
            64,
            MetricsRegistry::new_shared(),
        ));
        let wal = Arc::new(WriteAheadLog::in_memory());
        let tree =
            BTree::create(Arc::clone(&pool), Arc::clone(&wal), Some(fanout)).unwrap();
        let mut shadow: BTreeMap<(Vec<u8>, u64), ()> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, o) => {
                    let fresh = tree.insert(&key(*k), *o as u64).unwrap();
                    let model_fresh =
                        shadow.insert((key(*k), *o as u64), ()).is_none();
                    prop_assert_eq!(fresh, model_fresh, "insert disagreement");
                }
                Op::Delete(k, o) => {
                    let hit = tree.delete(&key(*k), *o as u64).unwrap();
                    let model_hit =
                        shadow.remove(&(key(*k), *o as u64)).is_some();
                    prop_assert_eq!(hit, model_hit, "delete disagreement");
                }
                Op::Range(a, b, m) => {
                    let low = bound(*a, *m);
                    let high = bound(*b, m / 3);
                    let got = tree
                        .range(as_ref_bound(&low), as_ref_bound(&high))
                        .unwrap();
                    let want = shadow_range(&shadow, &low, &high);
                    prop_assert_eq!(&got, &want, "range disagreement");
                }
            }
        }

        // Full-scan equivalence, length, and per-key lookups at the end.
        let all = tree.range(Bound::Unbounded, Bound::Unbounded).unwrap();
        let want: Vec<(Vec<u8>, u64)> = shadow.keys().cloned().collect();
        prop_assert_eq!(&all, &want);
        prop_assert_eq!(tree.len().unwrap(), shadow.len());
        for k in 0u16..120 {
            let got = tree.lookup(&key(k)).unwrap();
            let expect: Vec<u64> = shadow
                .keys()
                .filter(|(kk, _)| *kk == key(k))
                .map(|(_, o)| *o)
                .collect();
            prop_assert_eq!(got, expect, "lookup disagreement at key {}", k);
        }

        // Reopening at the current root sees the identical pair set.
        let reopened = BTree::open(pool, wal, tree.root(), Some(fanout));
        prop_assert_eq!(
            reopened.range(Bound::Unbounded, Bound::Unbounded).unwrap(),
            all
        );
    }
}
