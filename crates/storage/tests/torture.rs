//! Crash-point torture suite.
//!
//! Sweeps a clean crash over EVERY WAL frame of a ≥200-operation mixed
//! workload (insert/update/delete, aborting transactions, checkpoints)
//! and asserts, for each crash point, that after reboot + recovery:
//!
//! * every transaction whose `Commit` record survived is fully there,
//! * nothing of any loser transaction is visible,
//! * a second recovery is a no-op,
//! * a crash *during* recovery still converges on the next reboot.
//!
//! Everything is deterministic given the workload seed, so a failure
//! message like "crash at frame 137" reproduces exactly.

use reach_common::fault::{FaultInjector, FaultPlan, FaultPoint};
use reach_common::TxnId;
use reach_storage::torture::{
    committed_state, index_oracle_frames, index_torture_at, oracle_force_count, oracle_frames,
    oracle_truncate_count, run_workload, torture_at, torture_crash_during_recovery,
    torture_force_crash, torture_truncate_crash, visible_state, WorkloadSpec,
};
use reach_storage::{FaultDisk, MemDisk, StableStorage, StorageManager, WriteAheadLog};
use std::sync::Arc;

fn spec() -> WorkloadSpec {
    let seed = reach_common::seed_from_env(WorkloadSpec::default().seed);
    reach_common::announce_seed("storage::torture", seed);
    WorkloadSpec {
        seed,
        ..WorkloadSpec::default()
    }
}

#[test]
fn crash_sweep_covers_every_wal_frame() {
    let spec = spec();
    let oracle = oracle_frames(&spec).unwrap();
    assert!(
        oracle.len() >= 200,
        "workload too small to be a torture test: only {} frames",
        oracle.len()
    );
    for n in 1..=oracle.len() {
        torture_at(&spec, &oracle, n);
    }
}

#[test]
fn index_crash_sweep_covers_every_wal_frame() {
    // The B+Tree analogue of the sweep above: crash at every WAL frame
    // of a split/abort index workload (fanout 4, so leaf splits,
    // internal splits, and root growth are all in the frame space) and
    // require the recovered tree to equal the committed pair set. The
    // smaller op count keeps the sweep quadratic-but-bounded — each
    // index op logs one logical frame plus several physical node
    // writes, so the frame space is already several times `ops`.
    let spec = WorkloadSpec { ops: 120, ..spec() };
    let oracle = index_oracle_frames(&spec).unwrap();
    assert!(
        oracle.len() >= 200,
        "index workload too small to be a torture test: only {} frames",
        oracle.len()
    );
    for n in 1..=oracle.len() {
        index_torture_at(&spec, &oracle, n);
    }
}

#[test]
fn force_crash_sweep_never_loses_an_acked_commit() {
    // Crash at EVERY log sync the workload performs — before the device
    // sync inside the group-commit sequencer — and reboot over only the
    // forced log prefix (a force-crash loses the buffered tail). The
    // acked-commit set must equal the durable winner set at every point:
    // group commit may batch, widen, and skip syncs, but never move the
    // durability point past the acknowledgement.
    let spec = spec();
    let oracle = oracle_frames(&spec).unwrap();
    let total = oracle_force_count(&spec).unwrap();
    assert!(
        total >= 40,
        "workload too small to exercise the sequencer: only {total} forces"
    );
    for k in 1..=total {
        torture_force_crash(&spec, &oracle, k);
    }
}

#[test]
fn truncate_crash_sweep_loses_nothing() {
    // Crash at EVERY log truncation — after the checkpoint's End record
    // is forced, before the prefix it obsoletes is dropped — and verify
    // the full-history committed state survives each one.
    let spec = spec();
    let oracle = oracle_frames(&spec).unwrap();
    let total = oracle_truncate_count(&spec).unwrap();
    assert!(
        total >= 3,
        "workload too small to exercise truncation: only {total} checkpoints"
    );
    for k in 1..=total {
        torture_truncate_crash(&spec, &oracle, k);
    }
}

#[test]
fn crash_during_recovery_converges() {
    let spec = spec();
    let oracle = oracle_frames(&spec).unwrap();
    // Crashing recovery needs crash points that leave losers behind; the
    // sweep above covers plain crashes, so here sample the frame space
    // and crash the recovery run at its first, second and third append.
    for n in (10..=oracle.len()).step_by(29) {
        for m in 1..=3u64 {
            torture_crash_during_recovery(&spec, &oracle, n, m);
        }
    }
}

#[test]
fn torn_wal_tail_is_salvaged_on_recovery() {
    // Run a couple of transactions, then hand-truncate the log image
    // mid-frame — the classic torn tail — and reboot over it.
    let disk = Arc::new(MemDisk::new());
    let wal = Arc::new(WriteAheadLog::in_memory());
    let (sm, _) = StorageManager::open_with(
        Arc::clone(&disk) as Arc<dyn StableStorage>,
        Arc::clone(&wal),
        16,
    )
    .unwrap();
    let seg = sm.create_segment("torture").unwrap();
    let t1 = TxnId::new(1);
    sm.begin(t1).unwrap();
    let keep = sm.insert(t1, seg, b"survives").unwrap();
    sm.commit(t1).unwrap();
    let full_frames = wal.scan().unwrap();
    let t2 = TxnId::new(2);
    sm.begin(t2).unwrap();
    let after_begin = wal.tail();
    sm.insert(t2, seg, b"in the torn frame").unwrap();
    drop(sm);

    // Truncate 7 bytes into t2's Insert frame: its Begin survives whole,
    // the Insert is torn.
    let mut image = wal.image().unwrap();
    assert!(image.len() as u64 > after_begin + 7);
    image.truncate(after_begin as usize + 7);

    let revived = Arc::new(WriteAheadLog::in_memory_from(image));
    // Salvage keeps every complete frame and reports the torn bytes.
    let scan = revived.scan_report().unwrap();
    assert_eq!(scan.records.len(), full_frames.len() + 1); // + t2's Begin
    assert_eq!(scan.salvaged_bytes, 7);

    let (sm2, report) =
        StorageManager::open_with(Arc::clone(&disk) as Arc<dyn StableStorage>, revived, 16)
            .unwrap();
    assert_eq!(report.salvaged_bytes, 7);
    assert_eq!(
        report.losers,
        vec![t2],
        "t2's surviving Begin makes it a loser"
    );
    assert_eq!(sm2.get(seg, keep).unwrap(), b"survives");
    assert_eq!(sm2.scan(seg).unwrap().len(), 1);
}

#[test]
fn transient_page_write_failure_is_recoverable() {
    // A FaultDisk that fails one page write mid-run: the operation that
    // hits it errors out, but the WAL still describes every committed
    // change, so a reboot over the same device converges to the oracle.
    let spec = spec();
    let oracle = oracle_frames(&spec).unwrap();
    let mem = Arc::new(MemDisk::new());
    let injector = FaultInjector::new(FaultPlan::new().fail_at(FaultPoint::PageWrite, 3));
    let disk: Arc<dyn StableStorage> = Arc::new(FaultDisk::new(
        Arc::clone(&mem) as Arc<dyn StableStorage>,
        injector,
    ));
    let wal = Arc::new(WriteAheadLog::in_memory());
    // Archive mode: checkpoints truncate the live log, but the oracle
    // comparison below needs the complete frame history.
    wal.set_archive(true);
    let (sm, _) = StorageManager::open_with(disk, Arc::clone(&wal), spec.pool_frames).unwrap();
    // The workload stops at the first injected failure (page writes
    // happen on eviction/checkpoint, so when it fires is workload-
    // dependent but deterministic).
    let _ = run_workload(&sm, &spec);
    drop(sm);

    let survived = wal.scan_all().unwrap();
    let revived = Arc::new(WriteAheadLog::in_memory_from(wal.image().unwrap()));
    let (sm2, _) = StorageManager::open_with(
        Arc::clone(&mem) as Arc<dyn StableStorage>,
        revived,
        spec.pool_frames,
    )
    .unwrap();
    assert_eq!(
        visible_state(&sm2).unwrap(),
        committed_state(&survived),
        "a failed page write must never cost committed data"
    );
    // Sanity: the workload got far enough for the test to mean something.
    assert!(!committed_state(&oracle).is_empty());
}
