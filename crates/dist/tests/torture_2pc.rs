//! 2PC crash-point torture sweep.
//!
//! Runs a seeded 100-transaction cross-shard workload (each global
//! transaction inserts one record on each of 2–3 participant shards)
//! through the presumed-abort coordinator, and crashes — one run per
//! crash point — the **coordinator** at every [`Boundary`] crossing of
//! the whole workload, and **each participant** at every local message
//! boundary (before/after its `Prepare` force, before/after applying
//! the decision). Crash semantics are pessimistic: every node reboots
//! from the `durable_image()` of its log — unforced tails (including
//! the coordinator's advisory `CoordAbort` records) are lost, so the
//! *presumption* of abort is what recovery actually exercises.
//!
//! After each crash the oracle asserts:
//!
//! * every globally-acknowledged commit has a durable `CoordCommit`;
//! * atomicity: a global transaction's records are present on **all**
//!   of its participant shards iff its gid is durably committed, and
//!   on **none** otherwise (presumed abort of the undecided);
//! * in-doubt participants resolve from the coordinator log, and
//!   re-crashing after resolution re-converges to the same state
//!   (idempotent re-recovery).

use reach_common::{announce_seed, seed_from_env, ReachError, Result, SplitMix64, TxnId};
use reach_dist::{scan_decisions, Boundary, Coordinator, DecisionLog, Participant};
use reach_storage::{MemDisk, SegmentId, StableStorage, StorageManager, WriteAheadLog};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const SHARDS: usize = 3;
const TXNS: u64 = 100;
const FRAMES: usize = 128;
const SEG: &str = "data";

fn seed() -> u64 {
    let seed = seed_from_env(0xD157_27C0);
    announce_seed("dist::torture_2pc", seed);
    seed
}

/// Which process the injector kills.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The coordinator dies at a protocol [`Boundary`].
    Coordinator,
    /// A participant dies at one of its local message boundaries.
    Participant,
}

/// Global crash-point counter: every boundary crossing of the selected
/// mode increments it; crossing number `target` crashes.
struct Injector {
    mode: Mode,
    counter: AtomicU64,
    target: u64,
}

impl Injector {
    fn new(mode: Mode, target: u64) -> Arc<Self> {
        Arc::new(Self {
            mode,
            counter: AtomicU64::new(0),
            target,
        })
    }

    /// Count a crossing; `true` means "crash here".
    fn trip(&self, mode: Mode) -> bool {
        if self.mode != mode {
            return false;
        }
        self.counter.fetch_add(1, Ordering::SeqCst) + 1 == self.target
    }

    fn total(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }
}

/// One shard: stable device + log + storage manager.
struct Site {
    shard: u32,
    disk: Arc<MemDisk>,
    sm: Arc<StorageManager>,
    seg: SegmentId,
    dead: AtomicBool,
}

impl Site {
    fn fresh(shard: u32) -> Site {
        let disk = Arc::new(MemDisk::new());
        let wal = Arc::new(WriteAheadLog::in_memory());
        let (sm, _) =
            StorageManager::open_with(Arc::clone(&disk) as Arc<dyn StableStorage>, wal, FRAMES)
                .expect("fresh site");
        let seg = sm.create_segment(SEG).expect("segment");
        Site {
            shard,
            disk,
            sm: Arc::new(sm),
            seg,
            dead: AtomicBool::new(false),
        }
    }

    fn kill(&self) -> ReachError {
        self.dead.store(true, Ordering::SeqCst);
        ReachError::Io(format!("participant {} crashed", self.shard))
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }
}

/// A site acting as participant for one global transaction, with the
/// participant-side crash injection wrapped around every message.
struct TxnPart<'a> {
    site: &'a Site,
    txn: TxnId,
    inj: &'a Injector,
}

impl Participant for TxnPart<'_> {
    fn shard(&self) -> u32 {
        self.site.shard
    }

    fn prepare(&self, gid: u64) -> Result<()> {
        // Crash before the local Prepare force: nothing durable, the
        // prepare "message" never arrived.
        if self.site.is_dead() || self.inj.trip(Mode::Participant) {
            return Err(self.site.kill());
        }
        self.site.sm.prepare(self.txn, gid)?;
        // Crash after the force but before the ack: the coordinator
        // sees a failure and votes abort, while this site reboots into
        // the in-doubt state.
        if self.inj.trip(Mode::Participant) {
            return Err(self.site.kill());
        }
        Ok(())
    }

    fn decide(&self, commit: bool) -> Result<()> {
        // Crash before applying the decision: still in doubt.
        if self.site.is_dead() || self.inj.trip(Mode::Participant) {
            return Err(self.site.kill());
        }
        if commit {
            self.site.sm.decide_commit(self.txn)?;
        } else {
            self.site.sm.decide_abort(self.txn)?;
        }
        // Crash after applying, before the ack reaches the coordinator.
        if self.inj.trip(Mode::Participant) {
            return Err(self.site.kill());
        }
        Ok(())
    }

    fn rollback(&self) -> Result<()> {
        if self.site.is_dead() {
            return Err(ReachError::Io("participant dead".into()));
        }
        self.site.sm.abort(self.txn)
    }
}

/// One global transaction of the workload.
struct Attempt {
    idx: u64,
    gid: u64,
    shards: Vec<usize>,
}

fn payload(idx: u64, shard: usize) -> Vec<u8> {
    format!("t{idx:04}-s{shard}").into_bytes()
}

/// Outcome of one (possibly crashed) workload execution.
struct Run {
    attempts: Vec<Attempt>,
    acked: Vec<u64>, // gids whose commit returned Ok to the application
    disks: Vec<Arc<MemDisk>>,
    site_images: Vec<Vec<u8>>,
    coord_image: Vec<u8>,
    boundaries_crossed: u64,
}

/// Execute the seeded workload, crashing at `target` (use `u64::MAX`
/// for a clean dry run that counts the boundary space).
fn run_workload(seed: u64, mode: Mode, target: u64) -> Run {
    let inj = Injector::new(mode, target);
    let sites: Vec<Site> = (0..SHARDS as u32).map(Site::fresh).collect();
    let coord = Coordinator::in_memory();
    {
        let inj = Arc::clone(&inj);
        coord.set_crash_hook(Arc::new(move |_b: Boundary| inj.trip(Mode::Coordinator)));
    }
    let mut rng = SplitMix64::new(seed);
    let mut attempts = Vec::new();
    let mut acked = Vec::new();
    for i in 0..TXNS {
        // 2 or 3 distinct participant shards, seeded.
        let mut pool: Vec<usize> = (0..SHARDS).collect();
        let k = 2 + rng.below(2);
        let mut shards = Vec::with_capacity(k);
        for _ in 0..k {
            shards.push(pool.remove(rng.below(pool.len())));
        }
        shards.sort_unstable();
        let txn = TxnId::new(1_000 + i);
        let gid = coord.next_gid();
        let mut began = true;
        for &s in &shards {
            if sites[s].sm.begin(txn).is_err()
                || sites[s]
                    .sm
                    .insert(txn, sites[s].seg, &payload(i, s))
                    .is_err()
            {
                began = false;
                break;
            }
        }
        attempts.push(Attempt {
            idx: i,
            gid,
            shards: shards.clone(),
        });
        if !began {
            break;
        }
        let parts: Vec<TxnPart> = shards
            .iter()
            .map(|&s| TxnPart {
                site: &sites[s],
                txn,
                inj: &inj,
            })
            .collect();
        let refs: Vec<&dyn Participant> = parts.iter().map(|p| p as &dyn Participant).collect();
        match coord.commit_gid(gid, &refs) {
            Ok(()) => acked.push(gid),
            Err(_) => break, // the crash halts the workload
        }
    }
    Run {
        attempts,
        acked,
        site_images: sites
            .iter()
            .map(|s| s.sm.wal().durable_image().expect("image"))
            .collect(),
        coord_image: coord.wal().durable_image().expect("coord image"),
        disks: sites.iter().map(|s| Arc::clone(&s.disk)).collect(),
        boundaries_crossed: inj.total(),
    }
}

/// Reboot every node from its crash image, resolve in-doubt
/// transactions from the coordinator log, and return the recovered
/// managers plus the decision log.
fn reboot(run: &Run, images: &[Vec<u8>]) -> (Vec<Arc<StorageManager>>, DecisionLog, Vec<usize>) {
    let coord_wal = WriteAheadLog::in_memory_from(run.coord_image.clone());
    let decisions = scan_decisions(&coord_wal).expect("decision scan");
    let mut sms = Vec::new();
    let mut in_doubt_counts = Vec::new();
    for (s, image) in images.iter().enumerate() {
        let wal = Arc::new(WriteAheadLog::in_memory_from(image.clone()));
        let (sm, report) = StorageManager::open_with(
            Arc::clone(&run.disks[s]) as Arc<dyn StableStorage>,
            wal,
            FRAMES,
        )
        .expect("reboot");
        in_doubt_counts.push(report.in_doubt.len());
        reach_dist::coord::resolve_in_doubt(&sm, &report.in_doubt, &decisions).expect("resolve");
        sms.push(Arc::new(sm));
    }
    (sms, decisions, in_doubt_counts)
}

fn visible(sm: &StorageManager) -> Vec<Vec<u8>> {
    // A crash before the first force can lose even the catalog record
    // creating the segment — then nothing is visible, by definition.
    let Ok(seg) = sm.segment(SEG) else {
        return Vec::new();
    };
    let mut rows: Vec<Vec<u8>> = sm
        .scan(seg)
        .expect("scan")
        .into_iter()
        .map(|(_, payload)| payload)
        .collect();
    rows.sort();
    rows
}

/// The oracle for one crashed run.
fn check(run: &Run, label: &str) {
    let (sms, decisions, _) = reboot(run, &run.site_images);
    // 1. Acked implies durably committed.
    for gid in &run.acked {
        assert!(
            decisions.is_committed(*gid),
            "{label}: acked gid {gid} has no durable CoordCommit"
        );
    }
    // 2. Atomicity + presumed abort, per attempted transaction.
    for a in &run.attempts {
        let committed = decisions.is_committed(a.gid);
        for &s in &a.shards {
            let rows = visible(&sms[s]);
            let present = rows.contains(&payload(a.idx, s));
            assert_eq!(
                present, committed,
                "{label}: txn {} gid {} on shard {s}: present={present} committed={committed}",
                a.idx, a.gid
            );
        }
    }
    // 3. Idempotent re-recovery: crash again right after resolution,
    // reboot from the new durable images, resolve again — the visible
    // state must not move.
    let first: Vec<Vec<Vec<u8>>> = sms.iter().map(|sm| visible(sm)).collect();
    let images2: Vec<Vec<u8>> = sms
        .iter()
        .map(|sm| sm.wal().durable_image().expect("image"))
        .collect();
    drop(sms);
    let (sms2, _, _) = reboot(run, &images2);
    let second: Vec<Vec<Vec<u8>>> = sms2.iter().map(|sm| visible(sm)).collect();
    assert_eq!(first, second, "{label}: re-recovery moved the state");
}

fn sweep(mode: Mode, name: &str) {
    let seed = seed();
    let dry = run_workload(seed, mode, u64::MAX);
    assert_eq!(
        dry.acked.len() as u64,
        TXNS,
        "dry run must commit every transaction"
    );
    let total = dry.boundaries_crossed;
    assert!(
        total > 400,
        "{name}: boundary space suspiciously small: {total}"
    );
    for target in 1..=total {
        let run = run_workload(seed, mode, target);
        assert!(
            run.acked.len() as u64 <= TXNS,
            "{name}: impossible ack count"
        );
        check(&run, &format!("{name} crash at boundary {target}/{total}"));
    }
}

#[test]
fn coordinator_crash_sweep_covers_every_boundary() {
    sweep(Mode::Coordinator, "coordinator");
}

#[test]
fn participant_crash_sweep_covers_every_boundary() {
    sweep(Mode::Participant, "participant");
}

/// A clean (crash-free) pass: everything commits, everything is
/// present everywhere, and no transaction is in doubt on reboot.
#[test]
fn clean_run_commits_everything() {
    let seed = seed();
    let run = run_workload(seed, Mode::Coordinator, u64::MAX);
    assert_eq!(run.acked.len() as u64, TXNS);
    let (sms, decisions, in_doubt) = reboot(&run, &run.site_images);
    assert!(in_doubt.iter().all(|&n| n == 0), "clean run left doubt");
    for a in &run.attempts {
        assert!(decisions.is_committed(a.gid));
        for &s in &a.shards {
            assert!(visible(&sms[s]).contains(&payload(a.idx, s)));
        }
    }
}
