//! Shard-routing properties.
//!
//! The partition must be total (every oid has exactly one owner in
//! range), stable across restarts (pure function of the identifier —
//! two independently built routers always agree), and consistent with
//! the strided allocators: every id shard `i`'s generator issues routes
//! back to shard `i`, including after a simulated restart re-applies
//! the residue configuration at an arbitrary resume point.
//!
//! `shards_of_call` must enlist exactly the shards reachable from the
//! receiver plus every `Value::Ref` nested anywhere under the argument
//! list (recursing through `Value::List`) — checked against an
//! independent brute-force walker over arbitrarily nested value trees.
//!
//! Seeding follows the suite convention: the proptest shim replays
//! `REACH_SEED` and the pinned `proptest-regressions` seeds before its
//! deterministic case stream.

use proptest::prelude::*;
use reach_common::{shard_of, IdGen, ObjectId};
use reach_dist::ShardRouter;
use reach_object::Value;

/// Arbitrary argument trees: scalar leaves, refs, and nested lists.
fn value_strategy() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (0u64..200).prop_map(|n| Value::Str(format!("s{n}"))),
        (1u64..1_000_000).prop_map(|r| Value::Ref(ObjectId::new(r))),
        (1u64..1_000_000).prop_map(|r| Value::Ref(ObjectId::new(r))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

/// Brute-force reference walk, written independently of the router.
fn refs_of(v: &Value, out: &mut Vec<ObjectId>) {
    match v {
        Value::Ref(oid) => out.push(*oid),
        Value::List(items) => {
            for item in items {
                refs_of(item, out);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Totality + restart stability of the pure partition function.
    #[test]
    fn partition_is_total_and_stable(
        raw in 1u64..u64::MAX,
        shards in 1u32..17,
    ) {
        let oid = ObjectId::new(raw);
        let router = ShardRouter::new(shards);
        let owner = router.shard_of(oid);
        prop_assert!(owner < shards, "owner out of range");
        // A "rebooted" router (fresh construction, no shared state)
        // and the raw partition function both agree.
        prop_assert_eq!(ShardRouter::new(shards).shard_of(oid), owner);
        prop_assert_eq!(shard_of(oid, shards), owner);
    }

    /// Every id a shard's strided generator issues routes back to that
    /// shard — before and after a restart resumes issuing at an
    /// arbitrary later point.
    #[test]
    fn strided_allocation_routes_home(
        shards in 1u32..9,
        residue_pick in 0u32..8,
        burst in 1usize..64,
        resume_at in 1u64..100_000,
    ) {
        let residue = (residue_pick % shards) as u64;
        let router = ShardRouter::new(shards);

        let gen = IdGen::new();
        gen.configure_residue(residue, shards as u64);
        for _ in 0..burst {
            let oid: ObjectId = gen.next();
            prop_assert_eq!(router.shard_of(oid), residue as u32);
        }

        // Restart: the catalog replays a high-water mark, then the
        // shard re-applies its residue configuration.
        let rebooted = IdGen::starting_at(resume_at);
        rebooted.configure_residue(residue, shards as u64);
        for _ in 0..burst {
            let oid: ObjectId = rebooted.next();
            prop_assert!(oid.raw() >= resume_at.min(oid.raw()));
            prop_assert_eq!(router.shard_of(oid), residue as u32);
        }
    }

    /// `shards_of_call` == sorted/deduped brute force over the receiver
    /// and every oid reachable from the argument trees; and
    /// `reachable_oids` reproduces the walk in encounter order.
    #[test]
    fn call_routing_matches_brute_force(
        shards in 1u32..9,
        receiver_raw in 1u64..1_000_000,
        args in proptest::collection::vec(value_strategy(), 0..6),
    ) {
        let router = ShardRouter::new(shards);
        let receiver = ObjectId::new(receiver_raw);

        let mut oids = Vec::new();
        for v in &args {
            refs_of(v, &mut oids);
        }
        prop_assert_eq!(ShardRouter::reachable_oids(&args), oids.clone());

        let mut want: Vec<u32> = std::iter::once(receiver)
            .chain(oids)
            .map(|oid| router.shard_of(oid))
            .collect();
        want.sort_unstable();
        want.dedup();
        let got = router.shards_of_call(receiver, &args);
        prop_assert_eq!(&got, &want, "participant set diverged");
        // The set is usable as a 2PC participant list: non-empty,
        // in-range, strictly sorted.
        prop_assert!(!got.is_empty());
        prop_assert!(got.iter().all(|s| *s < shards));
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
    }
}
