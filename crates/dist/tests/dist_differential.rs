//! Cross-shard differential oracle: the same seeded workload is driven
//! through a 1-shard reference deployment and through 2/4/8-shard
//! deployments, and every observable must agree:
//!
//! * the synchronous firing log (immediate + deferred rules) — exact
//!   order: those couplings run inline in the raising / committing
//!   transaction, so sharding must not move them;
//! * the detached firing log of **cross-shard composite** rules —
//!   compared as sorted multisets of logical payload ids, because the
//!   detached coupling makes no ordering promise (Table 1);
//! * final object attributes, by logical object index (raw oids differ
//!   across configurations — shard `i` strides its allocator);
//! * the deployment-wide global history's primitive payload sequence;
//! * summed engine statistics across shards.
//!
//! Objects are placed round-robin over shards, each transaction raises
//! its signals on **one** logical object (one shard) and writes an
//! attribute on a *different* object — so with N ≥ 2 most transactions
//! are cross-shard and commit through presumed-abort 2PC, while the
//! event feed order at each composite's owning shard stays
//! deterministic. Composite constituents still span shards: the
//! composite pairs occurrences raised in different transactions on
//! different objects, shipped to the owner by the compositor at commit.
//!
//! All four SNOOP consumption policies are swept; the seed honours
//! `REACH_SEED` so the CI stress matrix replays fresh workloads.

use reach_common::sync::Mutex;
use reach_common::{announce_seed, seed_from_env, ObjectId, SplitMix64};
use reach_core::event::EventSpec;
use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, Lifespan, RuleBuilder,
};
use reach_dist::DistSystem;
use reach_object::{Value, ValueType};
use std::sync::Arc;
use std::time::Duration;

const OBJECTS: usize = 8;
const THRESHOLD: i64 = 700;

fn reading(uid: i64) -> i64 {
    uid & 1023
}

/// One workload step: raise `signals` on logical object `target`, and
/// bump a counter attribute on logical object `touch` (usually on a
/// different shard, forcing a two-phase commit).
struct Step {
    target: usize,
    touch: usize,
    signals: Vec<(bool, i64)>, // (is_alert, uid)
}

fn gen_workload(seed: u64, txns: usize, max_signals: usize) -> Vec<Step> {
    let mut rng = SplitMix64::new(seed);
    let mut next = 0i64;
    let mut uid = |value: i64| {
        next += 1;
        next * 1024 + value
    };
    (0..txns)
        .map(|_| {
            let target = rng.below(OBJECTS);
            let touch = (target + 1 + rng.below(OBJECTS - 1)) % OBJECTS;
            let signals = (0..1 + rng.below(max_signals))
                .map(|_| {
                    if rng.chance(1, 4) {
                        (false, uid(0)) // clear
                    } else {
                        (true, uid(rng.below(1000) as i64)) // alert
                    }
                })
                .collect();
            Step {
                target,
                touch,
                signals,
            }
        })
        .collect()
}

struct Run {
    sync_log: Vec<String>,
    detached_log: Vec<String>,
    alarms: Vec<i64>,
    touches: Vec<i64>,
    history_uids: Vec<i64>,
    stats: (u64, u64, u64),
}

fn run_variant(policy: ConsumptionPolicy, workload: &[Step], shards: u32) -> Run {
    let dist = DistSystem::in_memory(shards).unwrap();
    let sync_log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let detached_log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Every shard defines the identical schema, event types and rules
    // in the identical order, so ids align across the deployment.
    let mut classes = Vec::new();
    let mut alert_ty = Vec::new();
    for sys in dist.systems() {
        let db = sys.db();
        let class = db
            .define_class("Sensor")
            .attr("alarms", ValueType::Int, Value::Int(0))
            .attr("touched", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        classes.push(class);
        let alert = sys.define_signal("alert").unwrap();
        let clear = sys.define_signal("clear").unwrap();
        alert_ty.push(alert);
        // Three alerts — anywhere in the deployment — complete one
        // composite; completion happens on the owner shard only.
        let surge = sys
            .define_composite(
                "surge",
                EventExpr::History {
                    expr: Arc::new(EventExpr::Primitive(alert)),
                    count: 3,
                },
                CompositionScope::CrossTransaction,
                Lifespan::Interval(Duration::from_secs(3600)),
                policy,
            )
            .unwrap();
        // An alert answered by a clear, possibly in another transaction
        // on another shard.
        let answered = sys
            .define_composite(
                "answered",
                EventExpr::Sequence(vec![
                    EventExpr::Primitive(alert),
                    EventExpr::Primitive(clear),
                ]),
                CompositionScope::CrossTransaction,
                Lifespan::Interval(Duration::from_secs(3600)),
                policy,
            )
            .unwrap();

        {
            let log = Arc::clone(&sync_log);
            sys.define_rule(
                RuleBuilder::new("imm-high")
                    .on(alert)
                    .coupling(CouplingMode::Immediate)
                    .when(|ctx| Ok(reading(ctx.arg(0).as_int()?) >= THRESHOLD))
                    .then(move |ctx| {
                        let oid = ctx.receiver().unwrap();
                        let n = ctx.db.get_attr(ctx.txn, oid, "alarms")?.as_int()? + 1;
                        ctx.db.set_attr(ctx.txn, oid, "alarms", Value::Int(n))?;
                        log.lock()
                            .push(format!("imm id={} alarms={n}", ctx.arg(0).as_int()?));
                        Ok(())
                    }),
            )
            .unwrap();
        }
        {
            let log = Arc::clone(&sync_log);
            sys.define_rule(
                RuleBuilder::new("def-high")
                    .on(alert)
                    .coupling(CouplingMode::Deferred)
                    .when(|ctx| Ok(reading(ctx.arg(0).as_int()?) >= THRESHOLD))
                    .then(move |ctx| {
                        log.lock().push(format!("def id={}", ctx.arg(0).as_int()?));
                        Ok(())
                    }),
            )
            .unwrap();
        }
        // Cross-transaction composites only support the detached family
        // (Table 1), whose execution order is asynchronous — the oracle
        // compares these as sorted multisets.
        for (name, ty) in [("surge", surge), ("answered", answered)] {
            let log = Arc::clone(&detached_log);
            sys.define_rule(
                RuleBuilder::new(name)
                    .on(ty)
                    .coupling(CouplingMode::Detached)
                    .then(move |ctx| {
                        let ids: Vec<i64> = ctx
                            .event
                            .constituents
                            .iter()
                            .map(|c| match c.data.args.first() {
                                Some(v) => v.as_int().unwrap_or(-1),
                                None => -1,
                            })
                            .collect();
                        log.lock().push(format!("{name} of {ids:?}"));
                        Ok(())
                    }),
            )
            .unwrap();
        }
    }

    // Logical objects, round-robin over shards.
    let objects: Vec<ObjectId> = {
        let mut t = dist.begin();
        let oids = (0..OBJECTS)
            .map(|i| {
                let shard = (i as u32) % shards;
                let oid = dist
                    .create_on(&mut t, shard, classes[shard as usize])
                    .unwrap();
                dist.persist(&mut t, oid).unwrap();
                oid
            })
            .collect();
        dist.commit(t).unwrap();
        oids
    };

    for step in workload {
        let mut t = dist.begin();
        for &(is_alert, uid) in &step.signals {
            let name = if is_alert { "alert" } else { "clear" };
            dist.raise_signal(&mut t, name, objects[step.target], vec![Value::Int(uid)])
                .unwrap();
        }
        let touched = objects[step.touch];
        let n = dist
            .get_attr(&mut t, touched, "touched")
            .unwrap()
            .as_int()
            .unwrap();
        dist.set_attr(&mut t, touched, "touched", Value::Int(n + 1))
            .unwrap();
        dist.commit(t).unwrap();
        // Drain cross-shard composition + detached work between
        // transactions so every configuration observes the same
        // committed stream prefix when the next transaction runs.
        dist.wait_quiescent();
    }
    dist.wait_quiescent();

    let (alarms, touches) = {
        let mut t = dist.begin();
        let read = |t: &mut _, attr: &str| -> Vec<i64> {
            objects
                .iter()
                .map(|&oid| dist.get_attr(t, oid, attr).unwrap().as_int().unwrap())
                .collect()
        };
        let alarms = read(&mut t, "alarms");
        let touches = read(&mut t, "touched");
        dist.commit(t).unwrap();
        (alarms, touches)
    };

    // The deployment-wide committed history: primitive payloads in
    // absorption (= seq) order. Composites are excluded — they are
    // stamped when they complete, which legitimately differs between
    // configurations (inline on 1 shard, at commit-time shipping on N).
    let history_uids: Vec<i64> = dist
        .global_history()
        .snapshot()
        .iter()
        .filter(|occ| {
            dist.shard(0)
                .router()
                .manager(occ.event_type)
                .map(|m| matches!(m.spec, EventSpec::Primitive(_)))
                .unwrap_or(false)
        })
        .filter_map(|occ| occ.data.args.first().and_then(|v| v.as_int().ok()))
        .collect();

    let mut detached = Arc::try_unwrap(detached_log)
        .map(Mutex::into_inner)
        .unwrap_or_else(|l| l.lock().clone());
    detached.sort();
    let stats = dist
        .systems()
        .iter()
        .map(|s| s.stats())
        .fold((0, 0, 0), |(i, d, a), s| {
            (
                i + s.immediate_runs,
                d + s.deferred_runs,
                a + s.actions_executed,
            )
        });
    Run {
        sync_log: Arc::try_unwrap(sync_log)
            .map(Mutex::into_inner)
            .unwrap_or_else(|l| l.lock().clone()),
        detached_log: detached,
        alarms,
        touches,
        history_uids,
        stats,
    }
}

#[test]
fn sharded_firing_matches_single_engine_reference() {
    let base = seed_from_env(0xD1FF_5EED);
    for (p, policy) in ConsumptionPolicy::ALL.into_iter().enumerate() {
        let seed = base.wrapping_mul(31).wrapping_add(p as u64);
        announce_seed("dist_differential", seed);
        let workload = gen_workload(seed, 10, 5);
        let reference = run_variant(policy, &workload, 1);
        assert!(
            !reference.sync_log.is_empty() && !reference.detached_log.is_empty(),
            "seed {seed:#x}: degenerate workload fired no rules"
        );
        for shards in [2u32, 4, 8] {
            let sharded = run_variant(policy, &workload, shards);
            assert_eq!(
                reference.sync_log, sharded.sync_log,
                "{policy:?}, seed {seed:#x}, {shards} shards: synchronous firing diverged"
            );
            assert_eq!(
                reference.detached_log, sharded.detached_log,
                "{policy:?}, seed {seed:#x}, {shards} shards: composite firings diverged"
            );
            assert_eq!(
                reference.alarms, sharded.alarms,
                "{policy:?}, seed {seed:#x}, {shards} shards: alarm attributes diverged"
            );
            assert_eq!(
                reference.touches, sharded.touches,
                "{policy:?}, seed {seed:#x}, {shards} shards: 2PC-written attributes diverged"
            );
            assert_eq!(
                reference.history_uids, sharded.history_uids,
                "{policy:?}, seed {seed:#x}, {shards} shards: global history diverged"
            );
            assert_eq!(
                reference.stats, sharded.stats,
                "{policy:?}, seed {seed:#x}, {shards} shards: summed engine stats diverged"
            );
        }
    }
}

/// A detached rule that keeps failing on one shard of a deployment
/// must surface a dead letter stamped with that shard and the
/// originating application transaction — making `DrainDeadLetters`
/// actionable in a fleet.
#[test]
fn dead_letters_carry_shard_and_origin() {
    let dist = DistSystem::in_memory(2).unwrap();
    let mut classes = Vec::new();
    for sys in dist.systems() {
        let class = sys
            .db()
            .define_class("Probe")
            .attr("x", ValueType::Int, Value::Int(0))
            .define()
            .unwrap();
        classes.push(class);
        let boom = sys.define_signal("boom").unwrap();
        sys.set_retry_policy(reach_core::RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        });
        sys.define_rule(
            RuleBuilder::new("always-fails")
                .on(boom)
                .coupling(CouplingMode::Detached)
                .then(|_| Err(reach_common::ReachError::IoTransient("flaky sink".into()))),
        )
        .unwrap();
    }

    // Place the receiver on shard 1 so the failure is remote from the
    // "default" shard 0.
    let mut t = dist.begin();
    let oid = dist.create_on(&mut t, 1, classes[1]).unwrap();
    dist.persist(&mut t, oid).unwrap();
    dist.commit(t).unwrap();

    let mut t = dist.begin();
    dist.raise_signal(&mut t, "boom", oid, vec![]).unwrap();
    let origin = t.txn_on(1).expect("signal enlisted shard 1");
    dist.commit(t).unwrap();
    dist.wait_quiescent();

    let letters = dist.dead_letters();
    assert_eq!(letters.len(), 1, "exactly one exhausted firing expected");
    let dl = &letters[0];
    assert_eq!(dl.rule_name, "always-fails");
    assert_eq!(dl.shard, 1, "dead letter must carry the failing shard");
    assert_eq!(
        dl.origin,
        Some(origin),
        "dead letter must carry the originating application transaction"
    );
    assert!(dl.attempts >= 2);
}
