//! The assembled sharded deployment.
//!
//! [`DistSystem`] owns N `Database` + `ReachSystem` pairs with disjoint
//! storage, one [`ShardRouter`], one presumed-abort [`Coordinator`] and
//! one [`DistCompositor`]. Per shard it wires:
//!
//! * strided oid allocation (`oid ≡ shard (mod N)`), making routing a
//!   pure function of the identifier;
//! * the shared event-sequence clock, so occurrence `seq` values
//!   totally order events across the deployment;
//! * the composition ownership gate (`event_type % N == shard`), so a
//!   cross-transaction composite completes on exactly one shard;
//! * the shard id on the rule engine, so dead-letter records say where
//!   a detached rule gave up.
//!
//! A [`DistTxn`] lazily opens one local transaction per shard it
//! touches; commit is local when one shard is involved and two-phase
//! when several are.

use crate::compositor::DistCompositor;
use crate::coord::{Coordinator, Participant};
use crate::router::ShardRouter;
use open_oodb::{Database, DatabaseConfig};
use reach_common::{ObjectId, ReachError, Result, TxnId};
use reach_core::engine::DeadLetter;
use reach_core::history::GlobalHistory;
use reach_core::{ReachConfig, ReachSystem};
use reach_object::Value;
use std::path::Path;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// One global (possibly cross-shard) transaction.
#[derive(Debug, Default)]
pub struct DistTxn {
    /// The enlisted local transactions, in enlistment order: the first
    /// shard to be touched votes first.
    parts: Vec<(u32, TxnId)>,
}

impl DistTxn {
    /// The enlisted `(shard, local txn)` pairs, in enlistment order.
    pub fn parts(&self) -> &[(u32, TxnId)] {
        &self.parts
    }

    /// Does commit need two phases?
    pub fn is_cross_shard(&self) -> bool {
        self.parts.len() > 1
    }

    /// The local transaction already open on `shard`, if any.
    pub fn txn_on(&self, shard: u32) -> Option<TxnId> {
        self.parts
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, t)| *t)
    }
}

/// A `Database` acting as one 2PC participant.
pub struct DbParticipant {
    /// The shard the database serves.
    pub shard: u32,
    /// The participant database.
    pub db: Arc<Database>,
    /// Its local transaction.
    pub txn: TxnId,
}

impl Participant for DbParticipant {
    fn shard(&self) -> u32 {
        self.shard
    }

    fn prepare(&self, gid: u64) -> Result<()> {
        self.db.prepare(self.txn, gid)
    }

    fn decide(&self, commit: bool) -> Result<()> {
        self.db.decide(self.txn, commit)
    }

    fn rollback(&self) -> Result<()> {
        self.db.abort(self.txn)
    }
}

/// N engine instances behind one router (see module docs).
pub struct DistSystem {
    shards: Vec<Arc<ReachSystem>>,
    router: ShardRouter,
    coordinator: Coordinator,
    compositor: Arc<DistCompositor>,
    history: Arc<GlobalHistory>,
}

impl DistSystem {
    /// An all-in-memory deployment of `n` shards.
    pub fn in_memory(n: u32) -> Result<Arc<Self>> {
        Self::build(n, ReachConfig::default(), |_| Database::in_memory())
    }

    /// An in-memory deployment with a caller-tuned engine config (the
    /// `shared_seq` field is overwritten with the deployment clock).
    pub fn in_memory_with(n: u32, config: ReachConfig) -> Result<Arc<Self>> {
        Self::build(n, config, |_| Database::in_memory())
    }

    /// A disk-backed deployment under `base`, one `shard-<i>/`
    /// directory per shard.
    pub fn open(base: &Path, n: u32) -> Result<Arc<Self>> {
        Self::build(n, ReachConfig::default(), |i| {
            let dir = base.join(format!("shard-{i}"));
            std::fs::create_dir_all(&dir).map_err(|e| ReachError::Io(e.to_string()))?;
            Database::open(&dir, DatabaseConfig::default())
        })
    }

    fn build(
        n: u32,
        config: ReachConfig,
        mk: impl Fn(u32) -> Result<Arc<Database>>,
    ) -> Result<Arc<Self>> {
        assert!(n >= 1, "a deployment has at least one shard");
        let clock = Arc::new(AtomicU64::new(1));
        let mut shards = Vec::with_capacity(n as usize);
        for i in 0..n {
            let db = mk(i)?;
            db.space().configure_oid_allocation(i as u64, n as u64);
            let cfg = ReachConfig {
                shared_seq: Some(Arc::clone(&clock)),
                ..config.clone()
            };
            let sys = ReachSystem::new(db, cfg);
            sys.engine().set_shard_id(i);
            let owner_mod = n as u64;
            let me = i as u64;
            sys.router()
                .set_composition_gate(Arc::new(move |ty| ty.raw() % owner_mod == me));
            shards.push(sys);
        }
        let history = Arc::new(GlobalHistory::default());
        let compositor = DistCompositor::attach(&shards, &history);
        Ok(Arc::new(Self {
            shards,
            router: ShardRouter::new(n),
            coordinator: Coordinator::in_memory(),
            compositor,
            history,
        }))
    }

    // ---- topology ----

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The engine instance serving `shard`.
    pub fn shard(&self, shard: u32) -> &Arc<ReachSystem> {
        &self.shards[shard as usize]
    }

    /// All engine instances.
    pub fn systems(&self) -> &[Arc<ReachSystem>] {
        &self.shards
    }

    /// The object partition.
    pub fn shard_router(&self) -> &ShardRouter {
        &self.router
    }

    /// The 2PC coordinator.
    pub fn coordinator(&self) -> &Coordinator {
        &self.coordinator
    }

    /// The cross-shard event stream.
    pub fn compositor(&self) -> &Arc<DistCompositor> {
        &self.compositor
    }

    /// The deployment-wide committed event history.
    pub fn global_history(&self) -> &Arc<GlobalHistory> {
        &self.history
    }

    /// The shard owning `oid`.
    pub fn owner(&self, oid: ObjectId) -> u32 {
        self.router.shard_of(oid)
    }

    // ---- transactions ----

    /// Start a global transaction. Local transactions open lazily as
    /// shards are touched.
    pub fn begin(&self) -> DistTxn {
        DistTxn::default()
    }

    fn enlist(&self, txn: &mut DistTxn, shard: u32) -> Result<TxnId> {
        if let Some(t) = txn.txn_on(shard) {
            return Ok(t);
        }
        let t = self.shards[shard as usize].db().begin()?;
        txn.parts.push((shard, t));
        Ok(t)
    }

    /// Create an object on an explicit shard (placement is the
    /// application's choice; the returned oid routes there forever).
    pub fn create_on(
        &self,
        txn: &mut DistTxn,
        shard: u32,
        class: reach_common::ClassId,
    ) -> Result<ObjectId> {
        let t = self.enlist(txn, shard)?;
        let oid = self.shards[shard as usize].db().create(t, class)?;
        debug_assert_eq!(self.owner(oid), shard, "strided allocation violated");
        Ok(oid)
    }

    /// Make `oid` persistent on its owning shard.
    pub fn persist(&self, txn: &mut DistTxn, oid: ObjectId) -> Result<()> {
        let shard = self.owner(oid);
        let t = self.enlist(txn, shard)?;
        self.shards[shard as usize].db().persist(t, oid)
    }

    /// Read an attribute from the owning shard.
    pub fn get_attr(&self, txn: &mut DistTxn, oid: ObjectId, attr: &str) -> Result<Value> {
        let shard = self.owner(oid);
        let t = self.enlist(txn, shard)?;
        self.shards[shard as usize].db().get_attr(t, oid, attr)
    }

    /// Write an attribute on the owning shard.
    pub fn set_attr(
        &self,
        txn: &mut DistTxn,
        oid: ObjectId,
        attr: &str,
        value: Value,
    ) -> Result<()> {
        let shard = self.owner(oid);
        let t = self.enlist(txn, shard)?;
        self.shards[shard as usize]
            .db()
            .set_attr(t, oid, attr, value)
    }

    /// Invoke a method on the owning shard, first enlisting every shard
    /// reachable from the receiver and argument references, so the
    /// participant set is fixed before any effect happens.
    pub fn invoke(
        &self,
        txn: &mut DistTxn,
        oid: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        for shard in self.router.shards_of_call(oid, args) {
            self.enlist(txn, shard)?;
        }
        let shard = self.owner(oid);
        let t = txn.txn_on(shard).expect("receiver shard enlisted");
        self.shards[shard as usize]
            .db()
            .invoke(t, oid, method, args)
    }

    /// Raise a user signal concerning `receiver` on its owning shard.
    pub fn raise_signal(
        &self,
        txn: &mut DistTxn,
        name: &str,
        receiver: ObjectId,
        args: Vec<Value>,
    ) -> Result<()> {
        let shard = self.owner(receiver);
        let t = self.enlist(txn, shard)?;
        self.shards[shard as usize].raise_signal_for(Some(t), name, Some(receiver), args)
    }

    /// Commit: local single-force commit when one shard was touched,
    /// presumed-abort 2PC when several were. Returns the gid of a
    /// two-phase commit, `None` otherwise.
    pub fn commit(&self, txn: DistTxn) -> Result<Option<u64>> {
        match txn.parts.len() {
            0 => Ok(None),
            1 => {
                let (shard, t) = txn.parts[0];
                self.shards[shard as usize].db().commit(t)?;
                Ok(None)
            }
            _ => {
                let parts: Vec<DbParticipant> = txn
                    .parts
                    .iter()
                    .map(|(shard, t)| DbParticipant {
                        shard: *shard,
                        db: Arc::clone(self.shards[*shard as usize].db()),
                        txn: *t,
                    })
                    .collect();
                let refs: Vec<&dyn Participant> =
                    parts.iter().map(|p| p as &dyn Participant).collect();
                let gid = self.coordinator.commit(&refs)?;
                Ok(Some(gid))
            }
        }
    }

    /// Roll back every enlisted local transaction.
    pub fn abort(&self, txn: DistTxn) -> Result<()> {
        for (shard, t) in txn.parts {
            self.shards[shard as usize].db().abort(t)?;
        }
        Ok(())
    }

    /// Wait until every shard's composition queues and detached work
    /// have drained. Two rounds, because a detached rule on one shard
    /// can raise events that ship to another shard on commit.
    pub fn wait_quiescent(&self) {
        for _ in 0..2 {
            for sys in &self.shards {
                sys.wait_quiescent();
            }
        }
    }

    /// Dead letters from every shard (each stamped with its shard id).
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.shards.iter().flat_map(|s| s.dead_letters()).collect()
    }
}
