//! Presumed-abort two-phase commit.
//!
//! The coordinator keeps its own write-ahead log and forces exactly one
//! record per committed global transaction: `CoordCommit { gid,
//! participants }`. Abort decisions are appended lazily (`CoordAbort`)
//! purely as an optimization for recovery scans — losing one is safe,
//! because the protocol *presumes abort*: an in-doubt participant (one
//! that forced a `Prepare` but finds no decision in its own log) asks
//! the coordinator log, and "no durable `CoordCommit`" means abort.
//!
//! The safety argument, spelled out:
//!
//! 1. A participant acknowledges prepare only after forcing `Prepare`
//!    below every write of the transaction, keeping locks pinned (the
//!    `Prepared` transaction state) so nobody observes or overwrites
//!    its dirty data while in doubt.
//! 2. The coordinator forces `CoordCommit` only after *every*
//!    participant acknowledged prepare. Hence: a durable commit
//!    decision implies every participant can redo its effects from its
//!    own log — commit is always completable.
//! 3. If the coordinator crashes before the decision is durable, no
//!    participant has committed (phase 2 hadn't started), and every
//!    prepared participant resolves to abort — which is exactly what
//!    the surviving participants and the application observe.
//!
//! Crash injection: tests install a [`CrashHook`] that fires at every
//! message [`Boundary`] of the protocol. Returning `true` makes the
//! coordinator return an error *immediately*, with no cleanup appends —
//! simulating a process crash at that point.

use reach_common::sync::RwLock;
use reach_common::{ReachError, Result, TxnId};
use reach_storage::{StorageManager, WalRecord, WriteAheadLog};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One participant ("resource manager site") of a global transaction.
pub trait Participant {
    /// The shard this participant runs on (diagnostics + decision log).
    fn shard(&self) -> u32;
    /// Phase 1: force a `Prepare` record, pin locks, enter the
    /// in-doubt state. After `Ok(())` the participant must be able to
    /// commit *or* abort on request, across crashes.
    fn prepare(&self, gid: u64) -> Result<()>;
    /// Phase 2: apply the durable decision.
    fn decide(&self, commit: bool) -> Result<()>;
    /// Local rollback of a participant that was never prepared (phase 1
    /// failed part-way through the participant list).
    fn rollback(&self) -> Result<()>;
}

/// The 2PC message boundaries a [`CrashHook`] can crash at. `u32`
/// payloads name the participant shard the message concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boundary {
    /// Before sending prepare to (and appending `Prepare` on) a shard.
    BeforePrepare(u32),
    /// After the shard acknowledged prepare (its `Prepare` is durable).
    AfterPrepare(u32),
    /// Before forcing the coordinator's `CoordCommit` decision record.
    BeforeDecision,
    /// After the decision is durable, before any phase-2 message.
    AfterDecision,
    /// Before telling a shard the decision.
    BeforeDecide(u32),
    /// After the shard acknowledged (applied) the decision.
    AfterDecide(u32),
}

/// Crash injector: return `true` to crash the coordinator at `b`.
pub type CrashHook = Arc<dyn Fn(Boundary) -> bool + Send + Sync>;

/// Presumed-abort 2PC coordinator with its own WAL.
pub struct Coordinator {
    wal: Arc<WriteAheadLog>,
    gids: AtomicU64,
    hook: RwLock<Option<CrashHook>>,
}

impl Coordinator {
    /// A coordinator over a fresh in-memory log.
    pub fn in_memory() -> Self {
        Self::from_wal(Arc::new(WriteAheadLog::in_memory()))
    }

    /// A coordinator over an existing log (possibly revived from a
    /// crash image). The next global transaction id resumes above
    /// every gid the log mentions, so ids never repeat across reboots.
    pub fn from_wal(wal: Arc<WriteAheadLog>) -> Self {
        let mut next = 1u64;
        if let Ok(recs) = wal.scan_all() {
            for (_, rec) in recs {
                match rec {
                    WalRecord::CoordCommit { gid, .. } | WalRecord::CoordAbort { gid } => {
                        next = next.max(gid + 1);
                    }
                    _ => {}
                }
            }
        }
        Self {
            wal,
            gids: AtomicU64::new(next),
            hook: RwLock::new(None),
        }
    }

    /// The coordinator's log (tests image it to simulate crashes).
    pub fn wal(&self) -> &Arc<WriteAheadLog> {
        &self.wal
    }

    /// Install a crash injector (tests only).
    pub fn set_crash_hook(&self, hook: CrashHook) {
        *self.hook.write() = Some(hook);
    }

    /// Allocate the next global transaction identifier.
    pub fn next_gid(&self) -> u64 {
        self.gids.fetch_add(1, Ordering::Relaxed)
    }

    fn checkpoint(&self, b: Boundary) -> Result<()> {
        let hook = self.hook.read().clone();
        if let Some(h) = hook {
            if h(b) {
                return Err(ReachError::Io(format!("coordinator crashed at {b:?}")));
            }
        }
        Ok(())
    }

    /// Run the full protocol for one global transaction. Returns the
    /// gid on commit. On a *voted* abort (a participant failed phase 1)
    /// every prepared participant is told to abort, the rest roll back
    /// locally, and the prepare error is returned. On an *injected
    /// crash* the error propagates immediately with no cleanup — the
    /// in-doubt state is deliberately left behind for recovery.
    pub fn commit(&self, parts: &[&dyn Participant]) -> Result<u64> {
        let gid = self.next_gid();
        self.commit_gid(gid, parts)?;
        Ok(gid)
    }

    /// [`Coordinator::commit`] with a caller-chosen gid.
    pub fn commit_gid(&self, gid: u64, parts: &[&dyn Participant]) -> Result<()> {
        // Phase 1: collect votes.
        for (idx, p) in parts.iter().enumerate() {
            self.checkpoint(Boundary::BeforePrepare(p.shard()))?;
            if let Err(e) = p.prepare(gid) {
                // Voted abort. Advisory (unforced) decision record, then
                // resolve every site synchronously: prepared ones get the
                // abort decision, the failed/unreached ones roll back.
                let _ = self.wal.append(&WalRecord::CoordAbort { gid });
                for (jdx, q) in parts.iter().enumerate() {
                    if jdx < idx {
                        let _ = q.decide(false);
                    } else {
                        let _ = q.rollback();
                    }
                }
                return Err(e);
            }
            self.checkpoint(Boundary::AfterPrepare(p.shard()))?;
        }
        // Decision: the only force of the protocol.
        self.checkpoint(Boundary::BeforeDecision)?;
        let participants: Vec<u32> = parts.iter().map(|p| p.shard()).collect();
        let (_, end) = self
            .wal
            .append_bounded(&WalRecord::CoordCommit { gid, participants })?;
        self.wal.force_up_to(end)?;
        self.checkpoint(Boundary::AfterDecision)?;
        // Phase 2: inform. A crash here is safe — the decision is
        // durable and in-doubt participants re-resolve from our log.
        for p in parts {
            self.checkpoint(Boundary::BeforeDecide(p.shard()))?;
            p.decide(true)?;
            self.checkpoint(Boundary::AfterDecide(p.shard()))?;
        }
        Ok(())
    }

    /// Explicitly abort a global transaction that never reached phase 1
    /// (application-requested rollback): local rollback everywhere, no
    /// forced log work.
    pub fn abort(&self, gid: u64, parts: &[&dyn Participant]) -> Result<()> {
        let _ = self.wal.append(&WalRecord::CoordAbort { gid });
        for p in parts {
            p.rollback()?;
        }
        Ok(())
    }
}

/// The durable decisions a coordinator log records.
#[derive(Debug, Default, Clone)]
pub struct DecisionLog {
    /// Gids with a durable `CoordCommit`.
    pub committed: HashSet<u64>,
    /// Gids with an (advisory) `CoordAbort`. Absence from *both* sets
    /// also means abort — that is the presumption.
    pub aborted: HashSet<u64>,
}

impl DecisionLog {
    /// Presumed-abort resolution: committed iff durably so.
    pub fn is_committed(&self, gid: u64) -> bool {
        self.committed.contains(&gid)
    }
}

/// Scan a (possibly revived) coordinator log for decisions.
pub fn scan_decisions(wal: &WriteAheadLog) -> Result<DecisionLog> {
    let mut log = DecisionLog::default();
    for (_, rec) in wal.scan_all()? {
        match rec {
            WalRecord::CoordCommit { gid, .. } => {
                log.committed.insert(gid);
            }
            WalRecord::CoordAbort { gid } => {
                log.aborted.insert(gid);
            }
            _ => {}
        }
    }
    Ok(log)
}

/// Resolve a rebooted participant's in-doubt transactions (the
/// `in_doubt` list of its `RecoveryReport`) against the coordinator's
/// decision log: commit those with a durable decision, presume abort
/// for the rest. Returns `(committed, aborted)` counts. Idempotent in
/// the sense that a re-crash and re-recovery after any prefix of these
/// resolutions reproduces the remaining in-doubt set.
pub fn resolve_in_doubt(
    sm: &StorageManager,
    in_doubt: &[(TxnId, u64)],
    decisions: &DecisionLog,
) -> Result<(usize, usize)> {
    let (mut committed, mut aborted) = (0, 0);
    for (txn, gid) in in_doubt {
        if decisions.is_committed(*gid) {
            sm.decide_commit(*txn)?;
            committed += 1;
        } else {
            sm.decide_abort(*txn)?;
            aborted += 1;
        }
    }
    Ok((committed, aborted))
}
