//! Hash partitioning of objects over shards.
//!
//! Placement must be computable by every node (and every reboot of
//! every node) without coordination, so it is a pure function of the
//! object identifier: [`reach_common::shard_of`]. The object allocator
//! of shard `i` is configured to hand out identifiers `≡ i (mod N)`
//! (see `ObjectSpace::configure_oid_allocation`), which makes the
//! partition total *and* self-describing — routing an oid never needs
//! a directory lookup.

use reach_common::{shard_of, ObjectId};
use reach_object::Value;

/// Routes objects (and the calls that touch them) to shards.
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards ≥ 1` partitions.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "a deployment has at least one shard");
        Self { shards }
    }

    /// Number of partitions.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard that owns `oid`. Stable across restarts: a pure
    /// function of the identifier.
    pub fn shard_of(&self, oid: ObjectId) -> u32 {
        shard_of(oid, self.shards)
    }

    /// Every shard a method call can reach: the receiver's shard plus
    /// the shard of every object reference reachable from the argument
    /// values (recursing through lists). Sorted and deduplicated. The
    /// transaction enlists all of them before invoking, so the 2PC
    /// participant set is known up front.
    pub fn shards_of_call(&self, receiver: ObjectId, args: &[Value]) -> Vec<u32> {
        let mut out = vec![self.shard_of(receiver)];
        for v in args {
            self.collect(v, &mut out);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every object reference reachable from `args` (recursing through
    /// lists), in encounter order.
    pub fn reachable_oids(args: &[Value]) -> Vec<ObjectId> {
        let mut out = Vec::new();
        for v in args {
            Self::collect_oids(v, &mut out);
        }
        out
    }

    fn collect(&self, v: &Value, out: &mut Vec<u32>) {
        match v {
            Value::Ref(oid) => out.push(self.shard_of(*oid)),
            Value::List(items) => {
                for item in items {
                    self.collect(item, out);
                }
            }
            _ => {}
        }
    }

    fn collect_oids(v: &Value, out: &mut Vec<ObjectId>) {
        match v {
            Value::Ref(oid) => out.push(*oid),
            Value::List(items) => {
                for item in items {
                    Self::collect_oids(item, out);
                }
            }
            _ => {}
        }
    }
}
