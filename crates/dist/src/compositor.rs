//! Cross-shard event composition.
//!
//! Every shard detects its own primitive events (objects are
//! partitioned, so a primitive is always raised on the shard that owns
//! its receiver) and fires its primitive rules locally. Composite
//! events whose constituents span shards are completed on the
//! composite's *owning* shard (`event_type % N` — the routers' ids
//! align because every shard registers every type in the same order,
//! and the `Router` composition gate silences the N−1 non-owners).
//!
//! The compositor bridges the two: it observes each shard's delivered
//! occurrences, buffers them per `(shard, top-level txn)` — transaction
//! identifiers are per-shard, so the shard index is part of the key —
//! and on *commit* of that transaction ships the buffer, in `seq`
//! order, to every other shard via [`Router::deliver_remote`], which
//! feeds only cross-transaction composite subscribers. Occurrences of
//! aborted transactions are dropped: only committed history crosses
//! shard boundaries, matching the paper's rule that detached,
//! causally-dependent work observes committed state. Occurrences
//! outside any transaction (temporal events, cross-transaction
//! composite completions) ship immediately.
//!
//! The same hook maintains the deployment-wide [`GlobalHistory`]: every
//! committed occurrence is absorbed once, by the shard that raised it,
//! and the shared `seq` clock makes the merge a total order.
//!
//! [`Router::deliver_remote`]: reach_core::eca::Router::deliver_remote

use reach_common::sync::Mutex;
use reach_common::TxnId;
use reach_core::event::EventOccurrence;
use reach_core::history::GlobalHistory;
use reach_core::ReachSystem;
use reach_txn::{TxnEvent, TxnEventKind, TxnListener};
use std::collections::HashMap;
use std::sync::Arc;

/// One transaction's staged occurrences awaiting its outcome.
type Staged = Vec<Arc<EventOccurrence>>;

/// Streams committed occurrences between shards (see module docs).
pub struct DistCompositor {
    shards: Vec<Arc<ReachSystem>>,
    history: Arc<GlobalHistory>,
    /// Committed-stream staging, keyed by (shard index, top-level txn).
    buffers: Mutex<HashMap<(u32, TxnId), Staged>>,
}

impl DistCompositor {
    /// Wire a compositor across `shards`, registering a delivery
    /// observer and a transaction listener on each. Must be called
    /// *after* the `ReachSystem`s are constructed so each system's own
    /// flow bridge (which flushes composition queues and closes event
    /// windows at commit) runs before the compositor's listener — by
    /// the time `Committed` reaches us, every occurrence of the
    /// transaction has been delivered and buffered.
    pub fn attach(shards: &[Arc<ReachSystem>], history: &Arc<GlobalHistory>) -> Arc<Self> {
        let this = Arc::new(Self {
            shards: shards.to_vec(),
            history: Arc::clone(history),
            buffers: Mutex::new(HashMap::new()),
        });
        for (i, sys) in shards.iter().enumerate() {
            let shard = i as u32;
            let me = Arc::clone(&this);
            sys.router()
                .add_observer(Arc::new(move |occ| me.observe(shard, occ)));
            let me = Arc::clone(&this);
            sys.db()
                .txn_manager()
                .add_listener(Arc::new(Bridge { shard, comp: me }));
        }
        this
    }

    /// The deployment-wide committed history.
    pub fn history(&self) -> &Arc<GlobalHistory> {
        &self.history
    }

    fn observe(&self, shard: u32, occ: &EventOccurrence) {
        let occ = Arc::new(occ.clone());
        match occ.top_txn {
            Some(top) => self
                .buffers
                .lock()
                .entry((shard, top))
                .or_default()
                .push(occ),
            // No transaction to wait for — ship right away.
            None => self.ship(shard, vec![occ]),
        }
    }

    fn finished(&self, shard: u32, top: TxnId, committed: bool) {
        let drained = self.buffers.lock().remove(&(shard, top));
        if let (true, Some(occs)) = (committed, drained) {
            self.ship(shard, occs);
        }
    }

    fn ship(&self, from: u32, mut occs: Vec<Arc<EventOccurrence>>) {
        occs.sort_by_key(|o| o.seq);
        for (i, sys) in self.shards.iter().enumerate() {
            if i as u32 == from {
                continue;
            }
            for occ in &occs {
                sys.router().deliver_remote(Arc::clone(occ));
            }
        }
        self.history.absorb(occs);
    }
}

struct Bridge {
    shard: u32,
    comp: Arc<DistCompositor>,
}

impl TxnListener for Bridge {
    fn on_txn_event(&self, e: &TxnEvent) {
        if e.parent.is_some() {
            return;
        }
        match e.kind {
            TxnEventKind::Committed => self.comp.finished(self.shard, e.top_level, true),
            TxnEventKind::Aborted => self.comp.finished(self.shard, e.top_level, false),
            TxnEventKind::Begin | TxnEventKind::PreCommit => {}
        }
    }
}
