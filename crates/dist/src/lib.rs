//! REACH distribution layer (§7 outlook: "REACH will be extended to a
//! distributed active OODBMS").
//!
//! A deployment is N engine instances ("shards") with disjoint storage,
//! glued together by three pieces:
//!
//! * [`ShardRouter`] — a pure hash partition of objects (and therefore
//!   of primitive-event histories, which live with the objects that
//!   raise them) over the shards. Placement is a stable function of the
//!   object identifier, so it survives restarts with no catalog.
//! * [`Coordinator`] — presumed-abort two-phase commit layered on the
//!   participants' existing write-ahead logs. The coordinator forces
//!   only commit decisions; an in-doubt participant that finds no
//!   durable `CoordCommit` for its global transaction presumes abort.
//! * [`DistCompositor`] — streams each shard's *committed* event
//!   occurrences into every other shard's router, where they complete
//!   cross-shard composite events on the composite's owning shard.
//!
//! [`DistSystem`] wires all three around `open_oodb::Database` +
//! `reach_core::ReachSystem` instances and is the entry point used by
//! the tests and the E22 experiment.

#![warn(missing_docs)]

pub mod compositor;
pub mod coord;
pub mod router;
pub mod system;

pub use compositor::DistCompositor;
pub use coord::{
    resolve_in_doubt, scan_decisions, Boundary, Coordinator, CrashHook, DecisionLog, Participant,
};
pub use router::ShardRouter;
pub use system::{DbParticipant, DistSystem, DistTxn};
