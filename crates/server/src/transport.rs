//! Framed byte transports: plain TCP and the fault-injected wrapper.
//!
//! [`TcpTransport`] accumulates raw bytes in an internal buffer and
//! yields whole frames, so a read timeout in the middle of a frame
//! loses nothing — the partial bytes stay buffered and the next call
//! resumes where it left off. The frame length is validated against
//! [`MAX_FRAME`] as soon as the 4-byte header
//! is available, before any payload-sized allocation.
//!
//! [`FaultTransport`] wraps any transport with a deterministic
//! [`FaultInjector`] checked at [`FaultPoint::NetRead`] /
//! [`FaultPoint::NetWrite`]: transient failures, torn frames (a
//! byte-precise prefix hits the socket, then the connection dies),
//! stalls, and clean disconnects. One injector models one connection;
//! once a torn/crash trigger fires the transport is dead in both
//! directions, exactly like a kicked cable.

use crate::wire::MAX_FRAME;
use reach_common::fault::{FaultInjector, FaultPoint, WriteOutcome};
use reach_common::{ReachError, Result};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A bidirectional frame pipe.
pub trait Transport: Send {
    /// Read one frame payload. [`ReachError::IoTransient`] means a
    /// read timeout with the stream still healthy — call again.
    /// [`ReachError::ConnectionClosed`] means the peer is gone.
    fn read_frame(&mut self) -> Result<Vec<u8>>;

    /// Write one frame (length prefix + `payload`).
    fn write_frame(&mut self, payload: &[u8]) -> Result<()>;

    /// Write raw bytes with no framing. Exists so the fault wrapper
    /// can land a torn (prefix-only) frame on the real socket.
    fn write_raw(&mut self, bytes: &[u8]) -> Result<()>;
}

/// Frame transport over a [`TcpStream`].
pub struct TcpTransport {
    stream: TcpStream,
    /// Unparsed bytes already read off the socket.
    buf: Vec<u8>,
}

impl TcpTransport {
    /// Wrap a connected stream, applying `read_timeout` so a blocked
    /// read wakes up periodically (surfaced as `IoTransient`).
    pub fn new(stream: TcpStream, read_timeout: Option<Duration>) -> Result<Self> {
        stream.set_read_timeout(read_timeout)?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connect to `addr` with a connect/read timeout.
    pub fn connect(addr: &str, read_timeout: Option<Duration>) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::new(stream, read_timeout)
    }

    /// A clone of the underlying stream (for out-of-band shutdown).
    pub fn stream(&self) -> Result<TcpStream> {
        Ok(self.stream.try_clone()?)
    }

    /// If a whole frame is buffered, detach and return its payload.
    fn take_buffered_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        // Reject before any len-sized allocation can happen.
        if len > MAX_FRAME {
            return Err(ReachError::Protocol(format!(
                "frame of {len} bytes exceeds cap {MAX_FRAME}"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

impl Transport for TcpTransport {
    fn read_frame(&mut self) -> Result<Vec<u8>> {
        loop {
            if let Some(payload) = self.take_buffered_frame()? {
                return Ok(payload);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(ReachError::ConnectionClosed(
                        "peer closed the stream".into(),
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                // From<io::Error> classifies would-block/timed-out as
                // IoTransient and reset/abort as ConnectionClosed; the
                // partial bytes stay in `buf` for the next call.
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        if payload.len() > MAX_FRAME {
            return Err(ReachError::Protocol(format!(
                "refusing to send {} byte frame (cap {MAX_FRAME})",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        self.stream.write_all(&frame)?;
        Ok(())
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// A transport wrapper injecting deterministic network faults.
pub struct FaultTransport<T: Transport> {
    inner: T,
    injector: Arc<FaultInjector>,
}

impl<T: Transport> FaultTransport<T> {
    /// Wrap `inner`, consulting `injector` on every frame in/out.
    pub fn new(inner: T, injector: Arc<FaultInjector>) -> Self {
        FaultTransport { inner, injector }
    }

    /// The shared injector (for occurrence counts in tests).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    fn dead(point: FaultPoint) -> ReachError {
        ReachError::ConnectionClosed(format!("injected fault at {}", point.name()))
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn read_frame(&mut self) -> Result<Vec<u8>> {
        match self.injector.check(FaultPoint::NetRead) {
            WriteOutcome::Proceed => self.inner.read_frame(),
            WriteOutcome::Stall { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.read_frame()
            }
            // A torn *read* means the connection died mid-frame: the
            // bytes this side never saw are gone for good.
            WriteOutcome::Fail | WriteOutcome::Torn { .. } => Err(Self::dead(FaultPoint::NetRead)),
        }
    }

    fn write_frame(&mut self, payload: &[u8]) -> Result<()> {
        match self.injector.check(FaultPoint::NetWrite) {
            WriteOutcome::Proceed => self.inner.write_frame(payload),
            WriteOutcome::Stall { millis } => {
                std::thread::sleep(Duration::from_millis(millis));
                self.inner.write_frame(payload)
            }
            WriteOutcome::Fail => Err(Self::dead(FaultPoint::NetWrite)),
            WriteOutcome::Torn { keep } => {
                // A byte-precise prefix of the full frame (length
                // prefix included) lands on the wire; the peer sees a
                // torn frame and this side sees a dead connection.
                let mut frame = Vec::with_capacity(4 + payload.len());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(payload);
                let keep = keep.min(frame.len());
                let _ = self.inner.write_raw(&frame[..keep]);
                Err(Self::dead(FaultPoint::NetWrite))
            }
        }
    }

    fn write_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.inner.write_raw(bytes)
    }
}
