//! # reach-server — the REACH network layer
//!
//! Exposes a [`ReachSystem`](reach_core::ReachSystem) over TCP with a
//! length-prefixed binary protocol ([`wire`]), a hardened threaded
//! server ([`server`]) and a reconnecting client ([`client`]).
//!
//! Robustness is the point, not an afterthought:
//!
//! * **Admission control** — a bounded session table; excess
//!   connections get an explicit [`ReachError::Overloaded`] frame,
//!   never a silent queue.
//! * **Deadlines** — every request carries a millisecond budget that
//!   propagates into lock waits server-side.
//! * **Bounded write queues** — a slow consumer is disconnected before
//!   it can wedge server memory.
//! * **Idle reaping & orphan aborts** — a vanished client's
//!   transactions are aborted, upholding the visibility invariant: *a
//!   client that saw a commit ack can always re-read its writes; a
//!   client that saw an error or disconnect observes either all of its
//!   transaction or none of it.*
//! * **Fault-injected transport** — [`FaultTransport`] drives partial
//!   reads/writes, torn frames, stalls and disconnects from the same
//!   deterministic seeds the storage torture tests use.
//!
//! [`ReachError::Overloaded`]: reach_common::ReachError::Overloaded

pub mod client;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{Client, ClientConfig, TransportFactory};
pub use server::{serve, ServerConfig, ServerHandle};
pub use transport::{FaultTransport, TcpTransport, Transport};
pub use wire::{
    Notification, Request, Response, WireDeadLetter, MAX_FRAME, MAX_VALUE_DEPTH, PROTOCOL_VERSION,
};
