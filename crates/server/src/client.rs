//! `reach-client`: a reconnecting client for the REACH wire protocol.
//!
//! The client owns one connection at a time and transparently
//! reconnects with bounded exponential backoff when a *transient*
//! error surfaces ([`ReachError::is_transient`]). Retry is safe for
//! every operation except one case: once a **Commit** request frame
//! has been written, a transport failure leaves the outcome ambiguous
//! (the server may or may not have committed), so the error is
//! surfaced to the caller instead of retried — re-read your data to
//! find out. Every other operation either never started or names a
//! transaction the server aborted when the old connection died, so a
//! retry is answered truthfully (typically `TxnNotFound`).
//!
//! Subscriptions are per-connection state: after a reconnect the
//! caller must issue [`Client::subscribe`] again.

use crate::transport::{TcpTransport, Transport};
use crate::wire::{
    error_from_wire, Notification, Request, Response, WireDeadLetter, PROTOCOL_VERSION,
};
use reach_common::{ObjectId, ReachError, Result, RuleId, TxnId};
use reach_object::Value;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-request deadline sent to the server, in milliseconds
    /// (0 = no deadline).
    pub deadline_ms: u32,
    /// How long to wait for a response before treating the connection
    /// as wedged (dropped and, where safe, retried).
    pub response_timeout: Duration,
    /// Read-timeout tick of the underlying transport.
    pub read_tick: Duration,
    /// Total connection+request attempts before giving up.
    pub max_attempts: u32,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            deadline_ms: 2_000,
            response_timeout: Duration::from_secs(10),
            read_tick: Duration::from_millis(25),
            max_attempts: 5,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
        }
    }
}

/// Produces a fresh transport per (re)connection attempt — the seam
/// where tests splice in [`FaultTransport`](crate::FaultTransport).
pub type TransportFactory = Box<dyn FnMut() -> Result<Box<dyn Transport>> + Send>;

struct Conn {
    transport: Box<dyn Transport>,
    session: u64,
    next_request: u64,
}

/// A reconnecting REACH client.
pub struct Client {
    factory: TransportFactory,
    cfg: ClientConfig,
    conn: Option<Conn>,
    /// Server pushes received while waiting for a response.
    notifications: VecDeque<Notification>,
}

impl Client {
    /// Connect to a server at `addr` over plain TCP.
    pub fn connect(addr: &str, cfg: ClientConfig) -> Result<Client> {
        let addr = addr.to_string();
        let tick = cfg.read_tick;
        Self::with_factory(
            Box::new(move || {
                Ok(Box::new(TcpTransport::connect(&addr, Some(tick))?) as Box<dyn Transport>)
            }),
            cfg,
        )
    }

    /// Connect using a custom transport factory (fault injection).
    /// Transient dial/handshake failures are retried with the same
    /// bounded backoff as requests.
    pub fn with_factory(factory: TransportFactory, cfg: ClientConfig) -> Result<Client> {
        let mut c = Client {
            factory,
            cfg,
            conn: None,
            notifications: VecDeque::new(),
        };
        let mut attempt = 0u32;
        loop {
            match c.ensure_connected() {
                Ok(()) => return Ok(c),
                Err(e) => {
                    c.conn = None;
                    attempt += 1;
                    if !e.is_transient() || attempt >= c.cfg.max_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(c.backoff(attempt - 1));
                }
            }
        }
    }

    /// The server-assigned id of the current session, if connected.
    pub fn session(&self) -> Option<u64> {
        self.conn.as_ref().map(|c| c.session)
    }

    /// Override the per-request deadline (milliseconds, 0 = none).
    pub fn set_deadline_ms(&mut self, deadline_ms: u32) {
        self.cfg.deadline_ms = deadline_ms;
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .cfg
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16));
        exp.min(self.cfg.backoff_max)
    }

    /// Dial and run the Hello handshake. Request ids restart at 1 per
    /// connection, so the server's admission rejection (addressed to
    /// id 1) always matches the pending Hello.
    fn ensure_connected(&mut self) -> Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut transport = (self.factory)()?;
        transport.write_frame(
            &Request::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(1, 0),
        )?;
        let deadline = Instant::now() + self.cfg.response_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(ReachError::IoTransient(
                    "timed out waiting for handshake".into(),
                ));
            }
            let payload = match transport.read_frame() {
                Ok(p) => p,
                Err(ReachError::IoTransient(_)) => continue,
                Err(e) => return Err(e),
            };
            let (request_id, resp) = Response::decode(&payload)?;
            match resp {
                Response::HelloOk { session, .. } if request_id == 1 => {
                    self.conn = Some(Conn {
                        transport,
                        session,
                        next_request: 2,
                    });
                    return Ok(());
                }
                Response::Err { code, message } => {
                    return Err(error_from_wire(code, message));
                }
                Response::Notification(n) => self.notifications.push_back(n),
                other => {
                    return Err(ReachError::Protocol(format!(
                        "unexpected handshake response {other:?}"
                    )));
                }
            }
        }
    }

    /// Send `req` and wait for its response on the current connection.
    /// Any `Err` here means the connection is no longer trustworthy.
    fn roundtrip_once(&mut self, req: &Request) -> Result<Response> {
        self.ensure_connected()?;
        let deadline_ms = self.cfg.deadline_ms;
        let response_timeout = self.cfg.response_timeout;
        let conn = self.conn.as_mut().expect("just connected");
        let id = conn.next_request;
        conn.next_request += 1;
        conn.transport.write_frame(&req.encode(id, deadline_ms))?;
        let deadline = Instant::now() + response_timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(ReachError::IoTransient(
                    "timed out waiting for response".into(),
                ));
            }
            let payload = match conn.transport.read_frame() {
                Ok(p) => p,
                Err(ReachError::IoTransient(_)) => continue,
                Err(e) => return Err(e),
            };
            let (request_id, resp) = Response::decode(&payload)?;
            if request_id == 0 {
                if let Response::Notification(n) = resp {
                    self.notifications.push_back(n);
                    continue;
                }
                return Err(ReachError::Protocol(
                    "non-notification frame with request id 0".into(),
                ));
            }
            if request_id != id {
                // A stale response from a previous incarnation of this
                // id space cannot exist (ids are per-connection), so
                // this is a protocol violation.
                return Err(ReachError::Protocol(format!(
                    "response for request {request_id}, expected {id}"
                )));
            }
            if let Response::Err { code, message } = resp {
                return Err(error_from_wire(code, message));
            }
            return Ok(resp);
        }
    }

    /// Run `req` with reconnect/retry on transient failures.
    ///
    /// `retry_after_send` must be `false` for Commit: a transport error
    /// after the frame went out leaves the outcome ambiguous, and
    /// retrying could double-apply or mask a real commit.
    fn call(&mut self, req: &Request, retry_after_send: bool) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            let had_conn = self.conn.is_some();
            match self.roundtrip_once(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    let transport_error = matches!(
                        e,
                        ReachError::ConnectionClosed(_) | ReachError::IoTransient(_)
                    );
                    if transport_error {
                        // This connection is done; the server aborts
                        // the session's transactions on disconnect.
                        self.conn = None;
                    }
                    // A commit whose frame may have reached the server
                    // must not be retried: surface the ambiguity.
                    if transport_error && had_conn && !retry_after_send {
                        return Err(e);
                    }
                    attempt += 1;
                    if !e.is_transient() || attempt >= self.cfg.max_attempts {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff(attempt - 1));
                }
            }
        }
    }

    fn expect_ok(resp: Response) -> Result<()> {
        match resp {
            Response::Ok => Ok(()),
            other => Err(ReachError::Protocol(format!("expected Ok, got {other:?}"))),
        }
    }

    /// Begin a transaction owned by this session.
    pub fn begin(&mut self) -> Result<TxnId> {
        match self.call(&Request::Begin, true)? {
            Response::Txn(t) => Ok(t),
            other => Err(ReachError::Protocol(format!("expected Txn, got {other:?}"))),
        }
    }

    /// Begin a read-only snapshot transaction owned by this session:
    /// `get` resolves against the committed state at its begin stamp
    /// without acquiring any locks, so it never waits behind writers.
    /// Mutations through it fail with `ReadOnlyTxn`.
    pub fn begin_read_only(&mut self) -> Result<TxnId> {
        match self.call(&Request::BeginReadOnly, true)? {
            Response::Txn(t) => Ok(t),
            other => Err(ReachError::Protocol(format!("expected Txn, got {other:?}"))),
        }
    }

    /// Commit `txn`. **Not retried** once the request was sent: a
    /// transport error here means the outcome is unknown — reconnect
    /// and re-read to find out.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        Self::expect_ok(self.call(&Request::Commit { txn }, false)?)
    }

    /// Abort `txn`.
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        Self::expect_ok(self.call(&Request::Abort { txn }, true)?)
    }

    /// Create an object of `class` with attribute `overrides`.
    pub fn create(
        &mut self,
        txn: TxnId,
        class: &str,
        overrides: &[(&str, Value)],
    ) -> Result<ObjectId> {
        let req = Request::Create {
            txn,
            class: class.into(),
            overrides: overrides
                .iter()
                .map(|(n, v)| ((*n).to_string(), v.clone()))
                .collect(),
        };
        match self.call(&req, true)? {
            Response::Oid(o) => Ok(o),
            other => Err(ReachError::Protocol(format!("expected Oid, got {other:?}"))),
        }
    }

    /// Read an attribute.
    pub fn get(&mut self, txn: TxnId, oid: ObjectId, attr: &str) -> Result<Value> {
        let req = Request::Get {
            txn,
            oid,
            attr: attr.into(),
        };
        match self.call(&req, true)? {
            Response::Value(v) => Ok(v),
            other => Err(ReachError::Protocol(format!(
                "expected Value, got {other:?}"
            ))),
        }
    }

    /// Write an attribute.
    pub fn set(&mut self, txn: TxnId, oid: ObjectId, attr: &str, value: Value) -> Result<()> {
        let req = Request::Set {
            txn,
            oid,
            attr: attr.into(),
            value,
        };
        Self::expect_ok(self.call(&req, true)?)
    }

    /// Invoke a method (sentries run server-side).
    pub fn invoke(
        &mut self,
        txn: TxnId,
        oid: ObjectId,
        method: &str,
        args: &[Value],
    ) -> Result<Value> {
        let req = Request::Invoke {
            txn,
            oid,
            method: method.into(),
            args: args.to_vec(),
        };
        match self.call(&req, true)? {
            Response::Value(v) => Ok(v),
            other => Err(ReachError::Protocol(format!(
                "expected Value, got {other:?}"
            ))),
        }
    }

    /// Make an object persistent.
    pub fn persist(&mut self, txn: TxnId, oid: ObjectId) -> Result<()> {
        Self::expect_ok(self.call(&Request::Persist { txn, oid }, true)?)
    }

    /// Make an object persistent under a dictionary name.
    pub fn persist_named(&mut self, txn: TxnId, name: &str, oid: ObjectId) -> Result<()> {
        let req = Request::PersistNamed {
            txn,
            name: name.into(),
            oid,
        };
        Self::expect_ok(self.call(&req, true)?)
    }

    /// Resolve a dictionary name.
    pub fn fetch_root(&mut self, name: &str) -> Result<ObjectId> {
        let req = Request::FetchRoot { name: name.into() };
        match self.call(&req, true)? {
            Response::Oid(o) => Ok(o),
            other => Err(ReachError::Protocol(format!("expected Oid, got {other:?}"))),
        }
    }

    /// Parse and install a rule from rule-language source.
    pub fn define_rule(&mut self, source: &str) -> Result<RuleId> {
        let req = Request::DefineRule {
            source: source.into(),
        };
        match self.call(&req, true)? {
            Response::Rule(rid) => Ok(rid),
            other => Err(ReachError::Protocol(format!(
                "expected Rule, got {other:?}"
            ))),
        }
    }

    /// Define an application signal event type.
    pub fn define_signal(&mut self, name: &str) -> Result<()> {
        let req = Request::DefineSignal { name: name.into() };
        Self::expect_ok(self.call(&req, true)?)
    }

    /// Raise a signal, optionally inside one of this session's txns.
    pub fn raise_signal(&mut self, txn: Option<TxnId>, name: &str, args: Vec<Value>) -> Result<()> {
        let req = Request::RaiseSignal {
            txn,
            name: name.into(),
            args,
        };
        Self::expect_ok(self.call(&req, true)?)
    }

    /// Choose server pushes for this connection (reset by reconnects).
    pub fn subscribe(&mut self, firings: bool, dead_letters: bool) -> Result<()> {
        let req = Request::Subscribe {
            firings,
            dead_letters,
        };
        Self::expect_ok(self.call(&req, true)?)
    }

    /// Drain the server's dead-letter record.
    pub fn drain_dead_letters(&mut self) -> Result<Vec<WireDeadLetter>> {
        match self.call(&Request::DrainDeadLetters, true)? {
            Response::DeadLetters(list) => Ok(list),
            other => Err(ReachError::Protocol(format!(
                "expected DeadLetters, got {other:?}"
            ))),
        }
    }

    /// Ask which shard owns `oid`; returns `(shard, shard_count)`.
    pub fn shard_of(&mut self, oid: ObjectId) -> Result<(u32, u32)> {
        match self.call(&Request::ShardOf { oid }, true)? {
            Response::Shard { shard, shards } => Ok((shard, shards)),
            other => Err(ReachError::Protocol(format!(
                "expected Shard, got {other:?}"
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping, true)? {
            Response::Pong => Ok(()),
            other => Err(ReachError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Wait up to `timeout` for the next server push. Pushes received
    /// while waiting for responses are buffered and returned first.
    pub fn recv_notification(&mut self, timeout: Duration) -> Result<Option<Notification>> {
        if let Some(n) = self.notifications.pop_front() {
            return Ok(Some(n));
        }
        self.ensure_connected()?;
        let deadline = Instant::now() + timeout;
        let conn = self.conn.as_mut().expect("just connected");
        loop {
            if Instant::now() >= deadline {
                return Ok(None);
            }
            let payload = match conn.transport.read_frame() {
                Ok(p) => p,
                Err(ReachError::IoTransient(_)) => continue,
                Err(e) => {
                    self.conn = None;
                    return Err(e);
                }
            };
            let (request_id, resp) = Response::decode(&payload)?;
            match (request_id, resp) {
                (0, Response::Notification(n)) => return Ok(Some(n)),
                _ => {
                    // A response with no request outstanding: the
                    // connection state is inconsistent, drop it.
                    self.conn = None;
                    return Err(ReachError::Protocol(
                        "unsolicited non-notification frame".into(),
                    ));
                }
            }
        }
    }
}
