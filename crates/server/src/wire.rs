//! The length-prefixed binary wire protocol (DESIGN.md §10).
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload. The length is validated against [`MAX_FRAME`] *before* any
//! allocation, so a hostile or corrupted peer can never make either
//! side over-allocate. Every decode path is bounds-checked and returns
//! [`ReachError::Protocol`] on malformed input — never a panic.
//!
//! Request payload: `u64 request_id | u32 deadline_ms | u8 opcode |
//! body`. Response payload: `u64 request_id | u8 tag | body`.
//! `request_id 0` is reserved for server-push notifications; clients
//! start their ids at 1.

use reach_common::{ObjectId, ReachError, Result, RuleId, TxnId};
use reach_object::Value;

/// Hard cap on one frame's payload (1 MiB). Checked before allocating.
pub const MAX_FRAME: usize = 1 << 20;

/// Cap on `Value::List` nesting accepted off the wire, so a crafted
/// deeply-nested payload cannot blow the decoder's stack.
pub const MAX_VALUE_DEPTH: usize = 32;

/// Protocol revision carried in `Hello`/`HelloOk`.
pub const PROTOCOL_VERSION: u32 = 1;

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first request on a connection.
    Hello {
        /// Client's protocol revision ([`PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Begin a top-level transaction owned by this session.
    Begin,
    /// Begin a read-only snapshot transaction owned by this session:
    /// reads resolve at its begin stamp without acquiring locks;
    /// mutations through it fail with `ReadOnlyTxn`.
    BeginReadOnly,
    /// Commit a transaction this session owns.
    Commit {
        /// The transaction to commit.
        txn: TxnId,
    },
    /// Abort a transaction this session owns.
    Abort {
        /// The transaction to abort.
        txn: TxnId,
    },
    /// Create an object of `class`, optionally overriding attributes.
    Create {
        /// Owning transaction.
        txn: TxnId,
        /// Class name (resolved in the server's schema).
        class: String,
        /// Attribute overrides applied at creation.
        overrides: Vec<(String, Value)>,
    },
    /// Read one attribute (takes a shared lock).
    Get {
        /// Owning transaction.
        txn: TxnId,
        /// Target object.
        oid: ObjectId,
        /// Attribute name.
        attr: String,
    },
    /// Write one attribute (takes an exclusive lock).
    Set {
        /// Owning transaction.
        txn: TxnId,
        /// Target object.
        oid: ObjectId,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Invoke a method (runs sentries and may fire rules).
    Invoke {
        /// Owning transaction.
        txn: TxnId,
        /// Target object.
        oid: ObjectId,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Value>,
    },
    /// Make an object persistent.
    Persist {
        /// Owning transaction.
        txn: TxnId,
        /// Target object.
        oid: ObjectId,
    },
    /// Make an object persistent under a dictionary name.
    PersistNamed {
        /// Owning transaction.
        txn: TxnId,
        /// Dictionary name.
        name: String,
        /// Target object.
        oid: ObjectId,
    },
    /// Resolve a dictionary name to an object id.
    FetchRoot {
        /// Dictionary name.
        name: String,
    },
    /// Parse and install a rule written in the rule language.
    DefineRule {
        /// Rule-language source text.
        source: String,
    },
    /// Define an application signal event type.
    DefineSignal {
        /// Signal name.
        name: String,
    },
    /// Raise a signal, optionally inside one of the session's txns.
    RaiseSignal {
        /// Transaction context (`None` = transaction-independent).
        txn: Option<TxnId>,
        /// Signal name.
        name: String,
        /// Signal arguments.
        args: Vec<Value>,
    },
    /// Choose which server-push notifications this session receives.
    Subscribe {
        /// Push a notification for every executed rule action.
        firings: bool,
        /// Push a notification for every dead-lettered firing.
        dead_letters: bool,
    },
    /// Drain the engine's dead-letter record.
    DrainDeadLetters,
    /// Liveness probe.
    Ping,
    /// Resolve which shard owns an object id (shard-aware routing).
    ShardOf {
        /// Object whose owning shard is wanted.
        oid: ObjectId,
    },
}

/// A dead-letter record as carried on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDeadLetter {
    /// The rule that gave up.
    pub rule: RuleId,
    /// Its registered name.
    pub rule_name: String,
    /// Stable wire code of the final error.
    pub code: u16,
    /// Rendered final error.
    pub message: String,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Shard the firing was abandoned on (0 = single node).
    pub shard: u32,
    /// Raw id of the originating transaction (0 = none known).
    pub origin_txn: u64,
}

/// One server response (or, with `request_id 0`, a push notification).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with no payload.
    Ok,
    /// The request failed; `code` is [`ReachError::wire_code`].
    Err {
        /// Stable wire error code.
        code: u16,
        /// Rendered error message.
        message: String,
    },
    /// A transaction id (Begin).
    Txn(TxnId),
    /// An object id (Create, FetchRoot).
    Oid(ObjectId),
    /// A value (Get, Invoke).
    Value(Value),
    /// A rule id (DefineRule).
    Rule(RuleId),
    /// Handshake accept: the session id and the server's frame cap.
    HelloOk {
        /// Server-assigned session id.
        session: u64,
        /// The server's [`MAX_FRAME`].
        max_frame: u32,
    },
    /// Liveness reply.
    Pong,
    /// Drained dead letters (DrainDeadLetters).
    DeadLetters(Vec<WireDeadLetter>),
    /// Server push: a subscribed event happened (`request_id 0`).
    Notification(Notification),
    /// Shard placement for an object (ShardOf).
    Shard {
        /// Shard that owns the queried oid.
        shard: u32,
        /// Total shard count in the deployment.
        shards: u32,
    },
}

/// Server-push payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum Notification {
    /// A rule action executed.
    RuleFired {
        /// The rule that fired.
        rule: RuleId,
        /// Its registered name.
        rule_name: String,
        /// The triggering event type's raw id.
        event_type: u64,
    },
    /// A detached firing was permanently given up on.
    DeadLetter(WireDeadLetter),
}

// ---- primitive writers ----

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Ref(oid) => {
            out.push(5);
            put_u64(out, oid.raw());
        }
        Value::Bytes(b) => {
            out.push(6);
            put_u32(out, b.len() as u32);
            out.extend_from_slice(b);
        }
        Value::List(items) => {
            out.push(7);
            put_u32(out, items.len() as u32);
            for it in items {
                put_value(out, it);
            }
        }
    }
}

// ---- primitive readers (all bounds-checked) ----

/// A bounds-checked cursor over one frame payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bail<T>(&self, what: &str) -> Result<T> {
        Err(ReachError::Protocol(format!(
            "truncated frame: {what} at offset {} of {}",
            self.pos,
            self.buf.len()
        )))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.bail("byte run");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string. The declared length is
    /// checked against the remaining payload before any allocation.
    pub fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        if self.buf.len() - self.pos < len {
            return self.bail("string body");
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ReachError::Protocol("string is not valid UTF-8".into()))
    }

    /// Read a value, recursing at most [`MAX_VALUE_DEPTH`] deep.
    pub fn value(&mut self) -> Result<Value> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_VALUE_DEPTH {
            return Err(ReachError::Protocol(format!(
                "value nesting exceeds {MAX_VALUE_DEPTH}"
            )));
        }
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            5 => Value::Ref(ObjectId::new(self.u64()?)),
            6 => {
                let len = self.u32()? as usize;
                if self.buf.len() - self.pos < len {
                    return self.bail("bytes body");
                }
                Value::Bytes(self.take(len)?.to_vec())
            }
            7 => {
                let count = self.u32()? as usize;
                // Each element needs at least its one tag byte, so the
                // declared count is bounded by the remaining payload —
                // a huge count cannot pre-allocate anything.
                if self.buf.len() - self.pos < count {
                    return self.bail("list items");
                }
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value_at(depth + 1)?);
                }
                Value::List(items)
            }
            tag => {
                return Err(ReachError::Protocol(format!("unknown value tag {tag}")));
            }
        })
    }

    /// Whether the whole payload was consumed.
    pub fn finish(&self) -> Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ReachError::Protocol(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn txn(r: &mut Reader<'_>) -> Result<TxnId> {
    Ok(TxnId::new(r.u64()?))
}

fn oid(r: &mut Reader<'_>) -> Result<ObjectId> {
    Ok(ObjectId::new(r.u64()?))
}

/// Count-prefixed `(name, value)` pairs; count is sanity-bounded by the
/// remaining payload.
fn pairs(r: &mut Reader<'_>) -> Result<Vec<(String, Value)>> {
    let count = r.u16()? as usize;
    let mut out = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name = r.str()?;
        let value = r.value()?;
        out.push((name, value));
    }
    Ok(out)
}

fn values(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let count = r.u16()? as usize;
    let mut out = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        out.push(r.value()?);
    }
    Ok(out)
}

impl Request {
    /// Encode into a frame payload (without the length prefix).
    pub fn encode(&self, request_id: u64, deadline_ms: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, request_id);
        put_u32(&mut out, deadline_ms);
        match self {
            Request::Hello { version } => {
                out.push(1);
                put_u32(&mut out, *version);
            }
            Request::Begin => out.push(2),
            Request::Commit { txn } => {
                out.push(3);
                put_u64(&mut out, txn.raw());
            }
            Request::Abort { txn } => {
                out.push(4);
                put_u64(&mut out, txn.raw());
            }
            Request::Create {
                txn,
                class,
                overrides,
            } => {
                out.push(5);
                put_u64(&mut out, txn.raw());
                put_str(&mut out, class);
                put_u16(&mut out, overrides.len() as u16);
                for (name, value) in overrides {
                    put_str(&mut out, name);
                    put_value(&mut out, value);
                }
            }
            Request::Get { txn, oid, attr } => {
                out.push(6);
                put_u64(&mut out, txn.raw());
                put_u64(&mut out, oid.raw());
                put_str(&mut out, attr);
            }
            Request::Set {
                txn,
                oid,
                attr,
                value,
            } => {
                out.push(7);
                put_u64(&mut out, txn.raw());
                put_u64(&mut out, oid.raw());
                put_str(&mut out, attr);
                put_value(&mut out, value);
            }
            Request::Invoke {
                txn,
                oid,
                method,
                args,
            } => {
                out.push(8);
                put_u64(&mut out, txn.raw());
                put_u64(&mut out, oid.raw());
                put_str(&mut out, method);
                put_u16(&mut out, args.len() as u16);
                for a in args {
                    put_value(&mut out, a);
                }
            }
            Request::Persist { txn, oid } => {
                out.push(9);
                put_u64(&mut out, txn.raw());
                put_u64(&mut out, oid.raw());
            }
            Request::PersistNamed { txn, name, oid } => {
                out.push(10);
                put_u64(&mut out, txn.raw());
                put_str(&mut out, name);
                put_u64(&mut out, oid.raw());
            }
            Request::FetchRoot { name } => {
                out.push(11);
                put_str(&mut out, name);
            }
            Request::DefineRule { source } => {
                out.push(12);
                put_str(&mut out, source);
            }
            Request::DefineSignal { name } => {
                out.push(13);
                put_str(&mut out, name);
            }
            Request::RaiseSignal { txn, name, args } => {
                out.push(14);
                match txn {
                    Some(t) => {
                        out.push(1);
                        put_u64(&mut out, t.raw());
                    }
                    None => out.push(0),
                }
                put_str(&mut out, name);
                put_u16(&mut out, args.len() as u16);
                for a in args {
                    put_value(&mut out, a);
                }
            }
            Request::Subscribe {
                firings,
                dead_letters,
            } => {
                out.push(15);
                out.push(u8::from(*firings) | (u8::from(*dead_letters) << 1));
            }
            Request::DrainDeadLetters => out.push(16),
            Request::Ping => out.push(17),
            Request::BeginReadOnly => out.push(18),
            Request::ShardOf { oid } => {
                out.push(19);
                put_u64(&mut out, oid.raw());
            }
        }
        out
    }

    /// Decode a frame payload into `(request_id, deadline_ms, request)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, u32, Request)> {
        let mut r = Reader::new(payload);
        let request_id = r.u64()?;
        let deadline_ms = r.u32()?;
        let req = match r.u8()? {
            1 => Request::Hello { version: r.u32()? },
            2 => Request::Begin,
            3 => Request::Commit { txn: txn(&mut r)? },
            4 => Request::Abort { txn: txn(&mut r)? },
            5 => Request::Create {
                txn: txn(&mut r)?,
                class: r.str()?,
                overrides: pairs(&mut r)?,
            },
            6 => Request::Get {
                txn: txn(&mut r)?,
                oid: oid(&mut r)?,
                attr: r.str()?,
            },
            7 => Request::Set {
                txn: txn(&mut r)?,
                oid: oid(&mut r)?,
                attr: r.str()?,
                value: r.value()?,
            },
            8 => Request::Invoke {
                txn: txn(&mut r)?,
                oid: oid(&mut r)?,
                method: r.str()?,
                args: values(&mut r)?,
            },
            9 => Request::Persist {
                txn: txn(&mut r)?,
                oid: oid(&mut r)?,
            },
            10 => Request::PersistNamed {
                txn: txn(&mut r)?,
                name: r.str()?,
                oid: oid(&mut r)?,
            },
            11 => Request::FetchRoot { name: r.str()? },
            12 => Request::DefineRule { source: r.str()? },
            13 => Request::DefineSignal { name: r.str()? },
            14 => Request::RaiseSignal {
                txn: match r.u8()? {
                    0 => None,
                    1 => Some(txn(&mut r)?),
                    f => {
                        return Err(ReachError::Protocol(format!("bad txn-presence flag {f}")));
                    }
                },
                name: r.str()?,
                args: values(&mut r)?,
            },
            15 => {
                let flags = r.u8()?;
                if flags > 3 {
                    return Err(ReachError::Protocol(format!(
                        "unknown subscription flags {flags:#04x}"
                    )));
                }
                Request::Subscribe {
                    firings: flags & 1 != 0,
                    dead_letters: flags & 2 != 0,
                }
            }
            16 => Request::DrainDeadLetters,
            17 => Request::Ping,
            18 => Request::BeginReadOnly,
            19 => Request::ShardOf { oid: oid(&mut r)? },
            op => return Err(ReachError::Protocol(format!("unknown opcode {op}"))),
        };
        r.finish()?;
        Ok((request_id, deadline_ms, req))
    }
}

fn put_dead_letter(out: &mut Vec<u8>, d: &WireDeadLetter) {
    put_u64(out, d.rule.raw());
    put_str(out, &d.rule_name);
    put_u16(out, d.code);
    put_str(out, &d.message);
    put_u32(out, d.attempts);
    put_u32(out, d.shard);
    put_u64(out, d.origin_txn);
}

fn dead_letter(r: &mut Reader<'_>) -> Result<WireDeadLetter> {
    Ok(WireDeadLetter {
        rule: RuleId::new(r.u64()?),
        rule_name: r.str()?,
        code: r.u16()?,
        message: r.str()?,
        attempts: r.u32()?,
        shard: r.u32()?,
        origin_txn: r.u64()?,
    })
}

impl Response {
    /// Encode into a frame payload (without the length prefix).
    /// `request_id` must be 0 for (and only for) notifications.
    pub fn encode(&self, request_id: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        put_u64(&mut out, request_id);
        match self {
            Response::Ok => out.push(0),
            Response::Err { code, message } => {
                out.push(1);
                put_u16(&mut out, *code);
                put_str(&mut out, message);
            }
            Response::Txn(t) => {
                out.push(2);
                put_u64(&mut out, t.raw());
            }
            Response::Oid(o) => {
                out.push(3);
                put_u64(&mut out, o.raw());
            }
            Response::Value(v) => {
                out.push(4);
                put_value(&mut out, v);
            }
            Response::Rule(rid) => {
                out.push(5);
                put_u64(&mut out, rid.raw());
            }
            Response::HelloOk { session, max_frame } => {
                out.push(6);
                put_u64(&mut out, *session);
                put_u32(&mut out, *max_frame);
            }
            Response::Pong => out.push(7),
            Response::DeadLetters(list) => {
                out.push(8);
                put_u16(&mut out, list.len() as u16);
                for d in list {
                    put_dead_letter(&mut out, d);
                }
            }
            Response::Notification(n) => {
                out.push(9);
                match n {
                    Notification::RuleFired {
                        rule,
                        rule_name,
                        event_type,
                    } => {
                        out.push(0);
                        put_u64(&mut out, rule.raw());
                        put_str(&mut out, rule_name);
                        put_u64(&mut out, *event_type);
                    }
                    Notification::DeadLetter(d) => {
                        out.push(1);
                        put_dead_letter(&mut out, d);
                    }
                }
            }
            Response::Shard { shard, shards } => {
                out.push(10);
                put_u32(&mut out, *shard);
                put_u32(&mut out, *shards);
            }
        }
        out
    }

    /// Decode a frame payload into `(request_id, response)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response)> {
        let mut r = Reader::new(payload);
        let request_id = r.u64()?;
        let resp = match r.u8()? {
            0 => Response::Ok,
            1 => Response::Err {
                code: r.u16()?,
                message: r.str()?,
            },
            2 => Response::Txn(TxnId::new(r.u64()?)),
            3 => Response::Oid(ObjectId::new(r.u64()?)),
            4 => Response::Value(r.value()?),
            5 => Response::Rule(RuleId::new(r.u64()?)),
            6 => Response::HelloOk {
                session: r.u64()?,
                max_frame: r.u32()?,
            },
            7 => Response::Pong,
            8 => {
                let count = r.u16()? as usize;
                let mut list = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    list.push(dead_letter(&mut r)?);
                }
                Response::DeadLetters(list)
            }
            9 => Response::Notification(match r.u8()? {
                0 => Notification::RuleFired {
                    rule: RuleId::new(r.u64()?),
                    rule_name: r.str()?,
                    event_type: r.u64()?,
                },
                1 => Notification::DeadLetter(dead_letter(&mut r)?),
                k => {
                    return Err(ReachError::Protocol(format!(
                        "unknown notification kind {k}"
                    )));
                }
            }),
            10 => Response::Shard {
                shard: r.u32()?,
                shards: r.u32()?,
            },
            tag => return Err(ReachError::Protocol(format!("unknown response tag {tag}"))),
        };
        r.finish()?;
        Ok((request_id, resp))
    }

    /// Build the error response for `e` against `request_id`.
    pub fn from_error(request_id: u64, e: &ReachError) -> Vec<u8> {
        Response::Err {
            code: e.wire_code(),
            message: e.to_string(),
        }
        .encode(request_id)
    }
}

/// Turn a wire error response back into a [`ReachError`].
pub fn error_from_wire(code: u16, message: String) -> ReachError {
    ReachError::from_wire(code, message)
}
