//! The threaded TCP server: admission control, per-session transaction
//! ownership, deadlines, bounded write queues, idle reaping, graceful
//! shutdown, and push notifications.
//!
//! Robustness policies (DESIGN.md §10):
//!
//! * **Admission** — the session table is bounded. A connection that
//!   arrives with the table full gets an explicit `Overloaded` error
//!   frame and is closed; it is never silently queued.
//! * **Deadlines** — each request carries a `deadline_ms` budget. An
//!   expired deadline is rejected before touching the engine, and a
//!   live one is propagated into the transaction manager so lock waits
//!   give up in time.
//! * **Write queues** — per-connection response queues are bounded; a
//!   consumer that lets its queue fill is disconnected (slow-consumer
//!   policy) rather than allowed to wedge server memory.
//! * **Idle reaping** — sessions idle past the configured timeout are
//!   disconnected and their open transactions aborted, so an orphaned
//!   client can never pin locks forever.
//! * **Shutdown** — in-flight requests finish, then every remaining
//!   session transaction is aborted and connections are closed.
//! * **Panic isolation** — request handlers run under `catch_unwind`;
//!   a panic is counted, answered with an error, and the connection is
//!   dropped, so one poisoned request cannot take the server down.

use crate::transport::{TcpTransport, Transport};
use crate::wire::{Notification, Request, Response, WireDeadLetter, MAX_FRAME, PROTOCOL_VERSION};
use open_oodb::Database;
use reach_common::sync::Mutex;
use reach_common::{ReachError, Result, TxnId};
use reach_core::{DeadLetter, ReachSystem};
use reach_object::Value;
use std::collections::{HashMap, HashSet};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Admission bound: maximum concurrent sessions.
    pub max_sessions: usize,
    /// Bounded per-connection write queue (frames). A session whose
    /// queue is full when a response or notification arrives is
    /// disconnected as a slow consumer.
    pub write_queue: usize,
    /// Sessions idle longer than this are reaped.
    pub idle_timeout: Duration,
    /// How long `shutdown` waits for sessions to drain before forcing
    /// connections closed.
    pub drain_timeout: Duration,
    /// Read-timeout tick of connection threads: the latency bound on
    /// noticing shutdown/reap while blocked in a read.
    pub read_tick: Duration,
    /// Reaper thread wake interval.
    pub reap_interval: Duration,
    /// Which shard of a sharded deployment this server fronts
    /// (0 for a single-node deployment).
    pub shard_id: u32,
    /// Total shard count of the deployment (1 = unsharded). `ShardOf`
    /// answers with `shard_of(oid, shards)` so clients can route
    /// requests to the owning shard.
    pub shards: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_sessions: 64,
            write_queue: 64,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            read_tick: Duration::from_millis(50),
            reap_interval: Duration::from_millis(100),
            shard_id: 0,
            shards: 1,
        }
    }
}

/// One admitted connection.
struct Session {
    id: u64,
    /// Clone of the connection's stream, used to force it closed from
    /// the reaper or shutdown (the reader wakes with an error).
    stream: TcpStream,
    /// Bounded response/notification queue drained by the writer.
    sender: SyncSender<Vec<u8>>,
    /// Transactions this session owns. Anything still here when the
    /// session ends is aborted.
    txns: Mutex<HashSet<TxnId>>,
    last_active: Mutex<Instant>,
    sub_firings: AtomicBool,
    sub_dead_letters: AtomicBool,
}

impl Session {
    fn touch(&self) {
        *self.last_active.lock() = Instant::now();
    }

    fn force_close(&self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// State shared by every server thread.
struct Shared {
    sys: Arc<ReachSystem>,
    cfg: ServerConfig,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
}

impl Shared {
    fn metrics(&self) -> &reach_common::MetricsRegistry {
        self.sys.metrics()
    }

    /// Abort every transaction `session` still owns (disconnect, reap
    /// or shutdown path) — the mechanism behind the all-or-none
    /// guarantee for clients that never saw a commit ack.
    fn abort_orphans(&self, session: &Session) {
        let txns: Vec<TxnId> = session.txns.lock().drain().collect();
        let db = self.sys.db();
        for t in txns {
            if db.abort(t).is_ok() {
                self.metrics().server.orphan_aborts.inc();
            }
        }
    }

    /// Remove `session` from the table and clean it up. Idempotent:
    /// only the caller that actually removes it runs the cleanup.
    fn retire(&self, session: &Arc<Session>) {
        let removed = self.sessions.lock().remove(&session.id).is_some();
        if removed {
            self.abort_orphans(session);
            session.force_close();
            self.metrics().server.sessions_closed.inc();
        }
    }

    /// Push an encoded notification frame to every subscribed session;
    /// a full queue disconnects the subscriber (slow-consumer policy).
    fn fan_out(&self, frame: &[u8], want: impl Fn(&Session) -> bool) {
        let targets: Vec<Arc<Session>> = {
            let sessions = self.sessions.lock();
            sessions.values().filter(|s| want(s)).cloned().collect()
        };
        for s in targets {
            match s.sender.try_send(frame.to_vec()) {
                Ok(()) => {
                    self.metrics().server.notifications_sent.inc();
                }
                Err(TrySendError::Full(_)) => {
                    self.metrics().server.slow_consumer_disconnects.inc();
                    self.retire(&s);
                }
                Err(TrySendError::Disconnected(_)) => {}
            }
        }
    }
}

fn dead_letter_to_wire(d: &DeadLetter) -> WireDeadLetter {
    WireDeadLetter {
        rule: d.rule,
        rule_name: d.rule_name.clone(),
        code: d.error.wire_code(),
        message: d.error.to_string(),
        attempts: d.attempts,
        shard: d.shard,
        origin_txn: d.origin.map(|t| t.raw()).unwrap_or(0),
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
    reaper: Mutex<Option<JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` used port 0).
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.lock().len()
    }

    /// Graceful shutdown: stop admitting, let in-flight requests
    /// finish, abort every remaining session transaction, close all
    /// connections, and join the server threads.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        // Drain: connection threads notice the flag within one read
        // tick, finish whatever request they are executing, and retire
        // their sessions (aborting owned transactions).
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while Instant::now() < deadline && !self.shared.sessions.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Whatever is left gets its socket pulled; the reader wakes
        // with an error and retires the session the same way.
        let leftovers: Vec<Arc<Session>> = self.shared.sessions.lock().values().cloned().collect();
        for s in leftovers {
            s.force_close();
        }
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while Instant::now() < deadline && !self.shared.sessions.lock().is_empty() {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(h) = self.reaper.lock().take() {
            let _ = h.join();
        }
    }
}

/// Bind and serve `sys` on `cfg.addr` in background threads.
///
/// Registers a firing listener on the engine so subscribed sessions
/// receive [`Notification::RuleFired`] pushes; bind one server per
/// [`ReachSystem`].
pub fn serve(sys: Arc<ReachSystem>, cfg: ServerConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        sys,
        cfg,
        shutdown: AtomicBool::new(false),
        next_session: AtomicU64::new(1),
        sessions: Mutex::new(HashMap::new()),
    });

    // Rule-firing pushes: encode once per firing, fan out to
    // subscribers. Registered for the lifetime of the system.
    {
        let shared = Arc::downgrade(&shared);
        let sys = {
            let strong = shared.upgrade().expect("shared just created");
            Arc::clone(&strong.sys)
        };
        sys.add_firing_listener(Box::new(move |notice| {
            let Some(shared) = shared.upgrade() else {
                return;
            };
            let frame = Response::Notification(Notification::RuleFired {
                rule: notice.rule,
                rule_name: notice.rule_name.clone(),
                event_type: notice.event_type.raw(),
            })
            .encode(0);
            shared.fan_out(&frame, |s| s.sub_firings.load(Ordering::Relaxed));
        }));
    }

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("reach-accept".into())
            .spawn(move || accept_loop(listener, shared))
            .map_err(|e| ReachError::Io(format!("spawn accept thread: {e}")))?
    };
    let reaper = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("reach-reaper".into())
            .spawn(move || reaper_loop(shared))
            .map_err(|e| ReachError::Io(format!("spawn reaper thread: {e}")))?
    };

    Ok(ServerHandle {
        shared,
        addr,
        accept: Mutex::new(Some(accept)),
        reaper: Mutex::new(Some(reaper)),
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        admit(stream, &shared);
    }
}

/// Admission control: reserve a session slot or reject explicitly.
fn admit(stream: TcpStream, shared: &Arc<Shared>) {
    let metrics = shared.metrics();
    // Reserve under the table lock so the bound is exact.
    let session = {
        let mut sessions = shared.sessions.lock();
        if sessions.len() >= shared.cfg.max_sessions {
            drop(sessions);
            metrics.server.admissions_rejected.inc();
            // The client's first request on a fresh connection is
            // always Hello with request id 1, so the rejection frame
            // answers it directly before the socket closes.
            let payload = Response::from_error(
                1,
                &ReachError::Overloaded(format!(
                    "session table full ({} sessions)",
                    shared.cfg.max_sessions
                )),
            );
            let mut s = stream;
            let mut frame = Vec::with_capacity(4 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            use std::io::Write as _;
            let _ = s.write_all(&frame);
            let _ = s.shutdown(Shutdown::Both);
            return;
        }
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(shared.cfg.write_queue);
        let Ok(clone) = stream.try_clone() else {
            return;
        };
        let session = Arc::new(Session {
            id,
            stream: clone,
            sender: tx,
            txns: Mutex::new(HashSet::new()),
            last_active: Mutex::new(Instant::now()),
            sub_firings: AtomicBool::new(false),
            sub_dead_letters: AtomicBool::new(false),
        });
        sessions.insert(id, Arc::clone(&session));
        metrics.server.sessions_opened.inc();
        spawn_writer(shared, &session, rx);
        session
    };
    let session_id = session.id;
    let spawned = {
        let shared = Arc::clone(shared);
        let session = Arc::clone(&session);
        std::thread::Builder::new()
            .name(format!("reach-conn-{session_id}"))
            .spawn(move || {
                connection_loop(stream, &session, &shared);
                shared.retire(&session);
            })
    };
    if spawned.is_err() {
        // Could not spawn: undo the reservation.
        if let Some(s) = shared.sessions.lock().remove(&session_id) {
            s.force_close();
            metrics.server.sessions_closed.inc();
        }
    }
}

fn spawn_writer(shared: &Arc<Shared>, session: &Arc<Session>, rx: Receiver<Vec<u8>>) {
    let stream = session.stream.try_clone();
    let session = Arc::clone(session);
    let shared = Arc::clone(shared);
    let _ = std::thread::Builder::new()
        .name(format!("reach-write-{}", session.id))
        .spawn(move || {
            use std::io::Write as _;
            let Ok(mut stream) = stream else {
                session.force_close();
                return;
            };
            while let Ok(payload) = rx.recv() {
                let mut frame = Vec::with_capacity(4 + payload.len());
                frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                frame.extend_from_slice(&payload);
                if stream.write_all(&frame).is_err() {
                    // Writer death must wake the reader too.
                    session.force_close();
                    return;
                }
                shared
                    .metrics()
                    .server
                    .bytes_written
                    .add(frame.len() as u64);
            }
        });
}

fn reaper_loop(shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.cfg.reap_interval);
        // Idle sessions: disconnect; their reader thread aborts the
        // orphaned transactions on the way out.
        let now = Instant::now();
        let idle: Vec<Arc<Session>> = {
            let sessions = shared.sessions.lock();
            sessions
                .values()
                .filter(|s| now.duration_since(*s.last_active.lock()) > shared.cfg.idle_timeout)
                .cloned()
                .collect()
        };
        for s in idle {
            shared.metrics().server.idle_reaped.inc();
            shared.retire(&s);
        }
        // Dead-letter pump: only drain when someone is listening, so
        // the DrainDeadLetters RPC keeps working for pull-style use.
        let any_subscriber = shared
            .sessions
            .lock()
            .values()
            .any(|s| s.sub_dead_letters.load(Ordering::Relaxed));
        if any_subscriber {
            for d in shared.sys.take_dead_letters() {
                let frame =
                    Response::Notification(Notification::DeadLetter(dead_letter_to_wire(&d)))
                        .encode(0);
                shared.fan_out(&frame, |s| s.sub_dead_letters.load(Ordering::Relaxed));
            }
        }
    }
}

/// Read/execute/respond loop for one connection. Returns when the peer
/// goes away, a protocol violation or slow-consumer condition forces a
/// disconnect, or the server shuts down.
fn connection_loop(stream: TcpStream, session: &Arc<Session>, shared: &Arc<Shared>) {
    let metrics = shared.metrics();
    // Final error frames are written directly by this thread; bound
    // those writes so a peer that stopped reading cannot wedge us.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let Ok(mut transport) = TcpTransport::new(stream, Some(shared.cfg.read_tick)) else {
        return;
    };
    let mut hello_done = false;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // The session may have been retired under us (slow-consumer or
        // idle reap); stop serving it.
        if !shared.sessions.lock().contains_key(&session.id) {
            return;
        }
        let payload = match transport.read_frame() {
            Ok(p) => p,
            Err(ReachError::IoTransient(_)) => continue,
            Err(ReachError::Protocol(m)) => {
                metrics.server.protocol_errors.inc();
                // Final frame on a dying connection: written directly
                // by the reader so it cannot race the forced close.
                let _ = transport.write_frame(&Response::from_error(0, &ReachError::Protocol(m)));
                return;
            }
            Err(_) => return,
        };
        metrics.server.bytes_read.add(payload.len() as u64 + 4);
        let t0 = Instant::now();
        let (request_id, deadline_ms, req) = match Request::decode(&payload) {
            Ok(x) => x,
            Err(e) => {
                metrics.server.protocol_errors.inc();
                let _ = transport.write_frame(&Response::from_error(0, &e));
                return;
            }
        };
        session.touch();
        let deadline = (deadline_ms > 0).then(|| t0 + Duration::from_millis(deadline_ms as u64));
        // Handshake gate: the first request must be Hello.
        if !hello_done {
            match req {
                Request::Hello { version } if version == PROTOCOL_VERSION => {
                    hello_done = true;
                    let resp = Response::HelloOk {
                        session: session.id,
                        max_frame: MAX_FRAME as u32,
                    };
                    if !enqueue(shared, session, resp.encode(request_id)) {
                        return;
                    }
                    metrics.server.requests.inc();
                    metrics
                        .server
                        .request_latency
                        .record(t0.elapsed().as_nanos() as u64);
                    continue;
                }
                Request::Hello { version } => {
                    metrics.server.protocol_errors.inc();
                    let e = ReachError::Protocol(format!(
                        "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                    ));
                    let _ = transport.write_frame(&Response::from_error(request_id, &e));
                    return;
                }
                _ => {
                    metrics.server.protocol_errors.inc();
                    let e = ReachError::Protocol("first request must be Hello".into());
                    let _ = transport.write_frame(&Response::from_error(request_id, &e));
                    return;
                }
            }
        }
        // Execute under panic isolation.
        let result =
            std::panic::catch_unwind(AssertUnwindSafe(|| execute(shared, session, req, deadline)));
        let encoded = match result {
            Ok(Ok(resp)) => resp.encode(request_id),
            Ok(Err(e)) => {
                metrics.server.request_errors.inc();
                if matches!(e, ReachError::Protocol(_)) {
                    metrics.server.protocol_errors.inc();
                }
                Response::from_error(request_id, &e)
            }
            Err(_) => {
                metrics.server.panics.inc();
                metrics.server.request_errors.inc();
                let _ = transport.write_frame(&Response::from_error(
                    request_id,
                    &ReachError::Io("internal panic while handling request".into()),
                ));
                return;
            }
        };
        metrics.server.requests.inc();
        metrics
            .server
            .request_latency
            .record(t0.elapsed().as_nanos() as u64);
        if !enqueue(shared, session, encoded) {
            return;
        }
    }
}

/// Enqueue a response; a full queue disconnects the slow consumer.
fn enqueue(shared: &Arc<Shared>, session: &Arc<Session>, frame: Vec<u8>) -> bool {
    match session.sender.try_send(frame) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            shared.metrics().server.slow_consumer_disconnects.inc();
            false
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Check session ownership of `t`.
fn owned(session: &Session, t: TxnId) -> Result<()> {
    if session.txns.lock().contains(&t) {
        Ok(())
    } else {
        Err(ReachError::TxnNotFound(t))
    }
}

/// Map a lock timeout to `DeadlineExceeded` when the request deadline
/// (not the manager's default patience) is what cut the wait short.
fn deadline_error(shared: &Shared, deadline: Option<Instant>, e: ReachError) -> ReachError {
    if matches!(e, ReachError::LockTimeout(_)) {
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                shared.metrics().server.deadline_rejections.inc();
                return ReachError::DeadlineExceeded;
            }
        }
    }
    e
}

/// Run one txn-scoped operation with the request deadline propagated
/// into the transaction manager's lock waits.
fn with_deadline<R>(
    shared: &Shared,
    t: TxnId,
    deadline: Option<Instant>,
    f: impl FnOnce(&Database) -> Result<R>,
) -> Result<R> {
    let db = shared.sys.db();
    let tm = db.txn_manager();
    if deadline.is_some() {
        tm.set_deadline(t, deadline);
    }
    let out = f(db);
    if deadline.is_some() {
        tm.set_deadline(t, None);
    }
    out.map_err(|e| deadline_error(shared, deadline, e))
}

fn execute(
    shared: &Arc<Shared>,
    session: &Arc<Session>,
    req: Request,
    deadline: Option<Instant>,
) -> Result<Response> {
    // An already-expired deadline never touches the engine.
    if let Some(dl) = deadline {
        if Instant::now() >= dl {
            shared.metrics().server.deadline_rejections.inc();
            return Err(ReachError::DeadlineExceeded);
        }
    }
    let db = shared.sys.db();
    match req {
        Request::Hello { .. } => Err(ReachError::Protocol("duplicate Hello".into())),
        Request::Begin => {
            let t = db.begin()?;
            session.txns.lock().insert(t);
            Ok(Response::Txn(t))
        }
        Request::BeginReadOnly => {
            let t = db.begin_read_only()?;
            session.txns.lock().insert(t);
            Ok(Response::Txn(t))
        }
        Request::Commit { txn } => {
            owned(session, txn)?;
            session.txns.lock().remove(&txn);
            with_deadline(shared, txn, deadline, |db| db.commit(txn)).inspect_err(|_| {
                // A failed commit must leave nothing behind; the txn
                // may already be gone, so the abort error is ignored.
                let _ = db.abort(txn);
            })?;
            Ok(Response::Ok)
        }
        Request::Abort { txn } => {
            owned(session, txn)?;
            session.txns.lock().remove(&txn);
            db.abort(txn)?;
            Ok(Response::Ok)
        }
        Request::Create {
            txn,
            class,
            overrides,
        } => {
            owned(session, txn)?;
            let class_id = db.schema().class_by_name(&class)?;
            let oid = with_deadline(shared, txn, deadline, |db| {
                if overrides.is_empty() {
                    db.create(txn, class_id)
                } else {
                    let pairs: Vec<(&str, Value)> = overrides
                        .iter()
                        .map(|(n, v)| (n.as_str(), v.clone()))
                        .collect();
                    db.create_with(txn, class_id, &pairs)
                }
            })?;
            Ok(Response::Oid(oid))
        }
        Request::Get { txn, oid, attr } => {
            owned(session, txn)?;
            let v = with_deadline(shared, txn, deadline, |db| db.get_attr(txn, oid, &attr))?;
            Ok(Response::Value(v))
        }
        Request::Set {
            txn,
            oid,
            attr,
            value,
        } => {
            owned(session, txn)?;
            with_deadline(shared, txn, deadline, |db| {
                db.set_attr(txn, oid, &attr, value)
            })?;
            Ok(Response::Ok)
        }
        Request::Invoke {
            txn,
            oid,
            method,
            args,
        } => {
            owned(session, txn)?;
            let v = with_deadline(shared, txn, deadline, |db| {
                db.invoke(txn, oid, &method, &args)
            })?;
            Ok(Response::Value(v))
        }
        Request::Persist { txn, oid } => {
            owned(session, txn)?;
            with_deadline(shared, txn, deadline, |db| db.persist(txn, oid))?;
            Ok(Response::Ok)
        }
        Request::PersistNamed { txn, name, oid } => {
            owned(session, txn)?;
            with_deadline(shared, txn, deadline, |db| {
                db.persist_named(txn, &name, oid)
            })?;
            Ok(Response::Ok)
        }
        Request::FetchRoot { name } => {
            let oid = db.fetch(&name)?;
            Ok(Response::Oid(oid))
        }
        Request::DefineRule { source } => {
            let def = reach_rulelang::parse_rule(&source)?;
            let rid = reach_rulelang::compile(&shared.sys, &def)?;
            Ok(Response::Rule(rid))
        }
        Request::DefineSignal { name } => {
            shared.sys.define_signal(&name)?;
            Ok(Response::Ok)
        }
        Request::RaiseSignal { txn, name, args } => {
            if let Some(t) = txn {
                owned(session, t)?;
                with_deadline(shared, t, deadline, |_| {
                    shared.sys.raise_signal(Some(t), &name, args)
                })?;
            } else {
                shared.sys.raise_signal(None, &name, args)?;
            }
            Ok(Response::Ok)
        }
        Request::Subscribe {
            firings,
            dead_letters,
        } => {
            session.sub_firings.store(firings, Ordering::Relaxed);
            session
                .sub_dead_letters
                .store(dead_letters, Ordering::Relaxed);
            Ok(Response::Ok)
        }
        Request::DrainDeadLetters => {
            let list = shared
                .sys
                .take_dead_letters()
                .iter()
                .map(dead_letter_to_wire)
                .collect();
            Ok(Response::DeadLetters(list))
        }
        Request::Ping => Ok(Response::Pong),
        Request::ShardOf { oid } => Ok(Response::Shard {
            shard: reach_common::shard_of(oid, shared.cfg.shards.max(1)),
            shards: shared.cfg.shards.max(1),
        }),
    }
}
