//! The network torture test: clients hammer the server through a
//! fault-injected transport (torn frames, transient failures, stalls,
//! mid-request disconnects) across multiple deterministic seeds, and
//! the visibility invariant must hold throughout:
//!
//! * a client that saw a **commit ack** can always re-read its writes
//!   after reconnecting;
//! * a client that saw an **error or disconnect** observes either all
//!   of its transaction's effects or none of them;
//! * the server never panics.
//!
//! Each client owns a private pair of named roots and writes the same
//! monotonically increasing value to both inside one transaction, so
//! "all or none" is directly checkable: the pair must always read
//! equal, and must be either the last acked value or the attempted one.

use open_oodb::Database;
use reach_common::fault::{FaultInjector, FaultPlan};
use reach_common::ReachError;
use reach_core::{ReachConfig, ReachSystem};
use reach_object::{Value, ValueType};
use reach_server::{
    serve, Client, ClientConfig, FaultTransport, ServerConfig, TcpTransport, Transport,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SEEDS: [u64; 4] = [0xDEAD_BEEF, 0x1264_8430, 0xC0FF_EE00, 0x5EED_0001];
const CLIENTS: usize = 4;
const STEPS: i64 = 25;

fn world() -> Arc<ReachSystem> {
    let db = Database::in_memory().unwrap();
    db.define_class("Res")
        .attr("v", ValueType::Int, Value::Int(0))
        .define()
        .unwrap();
    ReachSystem::new(db, ReachConfig::default())
}

/// Set up one named-root object pair per client.
fn make_pairs(sys: &ReachSystem) {
    let db = sys.db();
    let class = db.schema().class_by_name("Res").unwrap();
    let t = db.begin().unwrap();
    for i in 0..CLIENTS {
        for side in ["a", "b"] {
            let oid = db.create(t, class).unwrap();
            db.persist_named(t, &format!("{side}{i}"), oid).unwrap();
        }
    }
    db.commit(t).unwrap();
}

/// A client whose every (re)connection goes through a freshly seeded
/// fault transport. Connection `n` uses seed `base + n`, so runs are
/// reproducible per seed while every reconnect sees new faults.
fn faulty_client(addr: &str, base_seed: u64) -> Client {
    let addr = addr.to_string();
    let conn_counter = AtomicU64::new(0);
    Client::with_factory(
        Box::new(move || {
            let n = conn_counter.fetch_add(1, Ordering::Relaxed);
            let plan = FaultPlan::seeded_net(base_seed.wrapping_add(n), 3, 40);
            let inner = TcpTransport::connect(&addr, Some(Duration::from_millis(25)))?;
            Ok(
                Box::new(FaultTransport::new(inner, FaultInjector::new(plan)))
                    as Box<dyn Transport>,
            )
        }),
        ClientConfig {
            deadline_ms: 5_000,
            response_timeout: Duration::from_secs(10),
            max_attempts: 8,
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(50),
            ..ClientConfig::default()
        },
    )
    .expect("eventually connects through the faults")
}

/// Read the client's pair through a clean (fault-free) connection in
/// one transaction.
fn read_pair(addr: &str, idx: usize) -> (i64, i64) {
    let mut c = Client::connect(addr, ClientConfig::default()).unwrap();
    let a = c.fetch_root(&format!("a{idx}")).unwrap();
    let b = c.fetch_root(&format!("b{idx}")).unwrap();
    let t = c.begin().unwrap();
    let va = c.get(t, a, "v").unwrap();
    let vb = c.get(t, b, "v").unwrap();
    c.commit(t).unwrap();
    match (va, vb) {
        (Value::Int(x), Value::Int(y)) => (x, y),
        other => panic!("non-int pair: {other:?}"),
    }
}

/// One client's torture loop. Returns (acked, failed) step counts.
fn client_run(addr: &str, idx: usize, seed: u64) -> (u64, u64) {
    let mut c = faulty_client(
        addr,
        seed.wrapping_mul(0x9E37_79B9)
            .wrapping_add(idx as u64 * 101),
    );
    let a = loop {
        match c.fetch_root(&format!("a{idx}")) {
            Ok(o) => break o,
            Err(e) if e.is_transient() => continue,
            Err(e) => panic!("fetch_root a{idx}: {e:?}"),
        }
    };
    let b = loop {
        match c.fetch_root(&format!("b{idx}")) {
            Ok(o) => break o,
            Err(e) if e.is_transient() => continue,
            Err(e) => panic!("fetch_root b{idx}: {e:?}"),
        }
    };
    let mut expected: i64 = 0;
    let mut acked = 0u64;
    let mut failed = 0u64;
    for step in 1..=STEPS {
        let val = step;
        let outcome: Result<(), ReachError> = (|| {
            let t = c.begin()?;
            c.set(t, a, "v", Value::Int(val))?;
            c.set(t, b, "v", Value::Int(val))?;
            c.commit(t)
        })();
        let (ra, rb) = read_pair(addr, idx);
        assert_eq!(
            ra, rb,
            "client {idx} step {step} (seed {seed:#x}): pair torn apart — \
             partial transaction visible"
        );
        match outcome {
            Ok(()) => {
                acked += 1;
                // Commit ack ⇒ the writes are re-readable, full stop.
                assert_eq!(
                    ra, val,
                    "client {idx} step {step} (seed {seed:#x}): commit was \
                     acked but the write is not visible"
                );
                expected = val;
            }
            Err(e) => {
                failed += 1;
                // Error/disconnect ⇒ all of it or none of it.
                assert!(
                    ra == expected || ra == val,
                    "client {idx} step {step} (seed {seed:#x}): after {e:?} \
                     read {ra}, expected {expected} (none) or {val} (all)"
                );
                expected = ra;
            }
        }
    }
    (acked, failed)
}

#[test]
fn commit_acks_are_durable_and_failures_are_atomic_across_seeds() {
    let mut total_acked = 0u64;
    let mut total_failed = 0u64;
    for seed in SEEDS {
        let sys = world();
        make_pairs(&sys);
        let cfg = ServerConfig {
            max_sessions: 64,
            idle_timeout: Duration::from_secs(30),
            reap_interval: Duration::from_millis(50),
            read_tick: Duration::from_millis(10),
            ..ServerConfig::default()
        };
        let handle = serve(Arc::clone(&sys), cfg).unwrap();
        let addr = handle.addr();
        let workers: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || client_run(&addr, i, seed))
            })
            .collect();
        for w in workers {
            let (a, f) = w.join().expect("client thread must not panic");
            total_acked += a;
            total_failed += f;
        }
        assert_eq!(
            sys.metrics().server.panics.get(),
            0,
            "server panicked under seed {seed:#x}"
        );
        handle.shutdown();
    }
    // The harness must have exercised both paths somewhere in the run.
    assert!(total_acked > 0, "no commit was ever acked");
    assert!(
        total_failed > 0,
        "no fault ever surfaced — the injection plan is dead"
    );
}
