//! Integration tests of the hardened server: admission control,
//! deadlines, session-scoped transaction ownership, idle reaping,
//! slow-consumer disconnects, graceful shutdown, dead-letter access
//! and push notifications — all over real sockets.

use open_oodb::Database;
use reach_common::{ClassId, ObjectId, ReachError};
use reach_core::event::MethodPhase;
use reach_core::{CouplingMode, ReachConfig, ReachSystem, RuleBuilder};
use reach_object::{Value, ValueType};
use reach_server::wire::{Notification, Request, Response};
use reach_server::{serve, Client, ClientConfig, ServerConfig, TcpTransport, Transport};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A world with one class `Res { v: int, n: int, s: str }` and two
/// methods: `poke(x)` sets `v`, `note(x)` sets `n`.
fn world() -> (Arc<ReachSystem>, ClassId) {
    let db = Database::in_memory().unwrap();
    let (b, poke) = db
        .define_class("Res")
        .attr("v", ValueType::Int, Value::Int(0))
        .attr("n", ValueType::Int, Value::Int(0))
        .attr("s", ValueType::Str, Value::Str(String::new()))
        .virtual_method("poke");
    let (b, note) = b.virtual_method("note");
    let class = b.define().unwrap();
    db.methods().register_fn(poke, |ctx| {
        ctx.set("v", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(note, |ctx| {
        ctx.set("n", ctx.arg(0))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    (sys, class)
}

fn persistent_obj(sys: &ReachSystem, class: ClassId) -> ObjectId {
    let db = sys.db();
    let t = db.begin().unwrap();
    let oid = db.create(t, class).unwrap();
    db.persist(t, oid).unwrap();
    db.commit(t).unwrap();
    oid
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        idle_timeout: Duration::from_secs(30),
        reap_interval: Duration::from_millis(25),
        read_tick: Duration::from_millis(25),
        ..ServerConfig::default()
    }
}

fn client_cfg() -> ClientConfig {
    ClientConfig {
        response_timeout: Duration::from_secs(10),
        ..ClientConfig::default()
    }
}

#[test]
fn crud_round_trips_over_the_wire() {
    let (sys, _class) = world();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    c.ping().unwrap();

    let t = c.begin().unwrap();
    let oid = c.create(t, "Res", &[("v", Value::Int(41))]).unwrap();
    c.set(t, oid, "v", Value::Int(42)).unwrap();
    assert_eq!(c.get(t, oid, "v").unwrap(), Value::Int(42));
    assert_eq!(
        c.invoke(t, oid, "poke", &[Value::Int(43)]).unwrap(),
        Value::Null
    );
    c.persist_named(t, "root", oid).unwrap();
    c.commit(t).unwrap();

    // A different connection sees the committed state.
    let mut c2 = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let found = c2.fetch_root("root").unwrap();
    assert_eq!(found, oid);
    let t2 = c2.begin().unwrap();
    assert_eq!(c2.get(t2, found, "v").unwrap(), Value::Int(43));
    c2.commit(t2).unwrap();
    handle.shutdown();
}

#[test]
fn snapshot_transactions_read_lock_free_over_the_wire() {
    let (sys, class) = world();
    sys.enable_metrics();
    let oid = persistent_obj(&sys, class);
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();

    // A writer holds the exclusive lock on the object for the whole
    // snapshot read — under plain 2PL the read below would block.
    let writer = c.begin().unwrap();
    c.set(writer, oid, "v", Value::Int(99)).unwrap();

    let mut c2 = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let grants = sys.metrics().txn.lock_acquisitions.get();
    let r = c2.begin_read_only().unwrap();
    assert_eq!(
        c2.get(r, oid, "v").unwrap(),
        Value::Int(0),
        "snapshot sees the committed pre-image, not the in-flight write"
    );
    assert_eq!(
        sys.metrics().txn.lock_acquisitions.get(),
        grants,
        "snapshot read went through the lock manager"
    );
    // Mutations through the snapshot are refused with the stable code.
    match c2.set(r, oid, "v", Value::Int(1)) {
        Err(ReachError::ReadOnlyTxn(_)) => {}
        other => panic!("expected ReadOnlyTxn over the wire, got {other:?}"),
    }
    c2.commit(r).unwrap();

    c.commit(writer).unwrap();
    // A fresh snapshot on the other connection sees the new state.
    let r2 = c2.begin_read_only().unwrap();
    assert_eq!(c2.get(r2, oid, "v").unwrap(), Value::Int(99));
    c2.abort(r2).unwrap();
    handle.shutdown();
}

#[test]
fn admission_control_rejects_with_explicit_overloaded() {
    let (sys, _class) = world();
    let cfg = ServerConfig {
        max_sessions: 2,
        ..quick_cfg()
    };
    let handle = serve(Arc::clone(&sys), cfg).unwrap();
    let _a = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let b = Client::connect(&handle.addr(), client_cfg()).unwrap();
    // The table is full: the third connection is told so explicitly.
    // max_attempts = 1 so connect surfaces the rejection instead of
    // retrying it (Overloaded is transient by design).
    let one_shot = ClientConfig {
        max_attempts: 1,
        ..client_cfg()
    };
    match Client::connect(&handle.addr(), one_shot) {
        Err(e @ ReachError::Overloaded(_)) => {
            assert!(e.is_transient(), "Overloaded must be retryable");
        }
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an admitted session"),
    }
    assert_eq!(sys.metrics().server.admissions_rejected.get(), 1);
    // Freeing a slot re-admits: drop one client and retry.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(&handle.addr(), client_cfg()) {
            Ok(_) => break,
            Err(ReachError::Overloaded(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected error while waiting for a slot: {e:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn transactions_are_owned_by_their_session() {
    let (sys, _class) = world();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut a = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let mut b = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let t = a.begin().unwrap();
    // Another session cannot commit, abort, or use the transaction.
    assert!(matches!(b.commit(t), Err(ReachError::TxnNotFound(_))));
    assert!(matches!(b.abort(t), Err(ReachError::TxnNotFound(_))));
    assert!(matches!(
        b.create(t, "Res", &[]),
        Err(ReachError::TxnNotFound(_))
    ));
    // The owner still can.
    a.commit(t).unwrap();
    handle.shutdown();
}

#[test]
fn expired_deadline_cuts_lock_wait_to_deadline_exceeded() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();

    let mut holder = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let th = holder.begin().unwrap();
    holder.set(th, oid, "v", Value::Int(1)).unwrap(); // exclusive lock held

    let mut waiter = Client::connect(
        &handle.addr(),
        ClientConfig {
            deadline_ms: 150,
            max_attempts: 1,
            ..client_cfg()
        },
    )
    .unwrap();
    let tw = waiter.begin().unwrap();
    let t0 = Instant::now();
    match waiter.set(tw, oid, "v", Value::Int(2)) {
        Err(ReachError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The 5 s default lock patience did not apply — the deadline did.
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "deadline did not shorten the lock wait ({:?})",
        t0.elapsed()
    );
    assert!(sys.metrics().server.deadline_rejections.get() >= 1);
    holder.abort(th).unwrap();
    handle.shutdown();
}

#[test]
fn idle_sessions_are_reaped_and_their_txns_aborted() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let cfg = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        reap_interval: Duration::from_millis(25),
        ..quick_cfg()
    };
    let handle = serve(Arc::clone(&sys), cfg).unwrap();
    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let t = c.begin().unwrap();
    c.set(t, oid, "v", Value::Int(9)).unwrap(); // exclusive lock held
                                                // Go quiet past the idle timeout.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.session_count() > 0 {
        assert!(Instant::now() < deadline, "session never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(sys.metrics().server.idle_reaped.get() >= 1);
    assert!(sys.metrics().server.orphan_aborts.get() >= 1);
    // The orphan's lock is gone: a direct writer gets it immediately.
    let db = sys.db();
    let t2 = db.begin().unwrap();
    db.set_attr(t2, oid, "v", Value::Int(10)).unwrap();
    db.commit(t2).unwrap();
    // And the reaped session's write was never committed.
    let t3 = db.begin().unwrap();
    assert_eq!(db.get_attr(t3, oid, "v").unwrap(), Value::Int(10));
    db.commit(t3).unwrap();
    handle.shutdown();
}

/// A consumer that stops reading while large responses pile up is
/// disconnected once its bounded write queue fills — the server never
/// buffers without limit.
#[test]
fn slow_consumers_are_disconnected() {
    let (sys, _class) = world();
    let cfg = ServerConfig {
        write_queue: 2,
        ..quick_cfg()
    };
    let handle = serve(Arc::clone(&sys), cfg).unwrap();

    // Raw pipelined connection that never reads responses.
    let mut t = TcpTransport::connect(&handle.addr(), Some(Duration::from_millis(25))).unwrap();
    let ask = |t: &mut TcpTransport, req: &Request, id: u64| -> Response {
        t.write_frame(&req.encode(id, 0)).unwrap();
        let payload = loop {
            match t.read_frame() {
                Ok(p) => break p,
                Err(ReachError::IoTransient(_)) => continue,
                Err(e) => panic!("request {id} failed: {e:?}"),
            }
        };
        Response::decode(&payload).unwrap().1
    };
    let resp = ask(&mut t, &Request::Hello { version: 1 }, 1);
    assert!(matches!(resp, Response::HelloOk { .. }));
    let Response::Txn(txn) = ask(&mut t, &Request::Begin, 2) else {
        panic!("expected Txn");
    };
    // A *transient* object (never persisted) can carry a fat string —
    // each Get response will be ~300 KB.
    let create = Request::Create {
        txn,
        class: "Res".into(),
        overrides: vec![("s".into(), Value::Str("x".repeat(300 * 1024)))],
    };
    let Response::Oid(oid) = ask(&mut t, &create, 3) else {
        panic!("expected Oid");
    };
    // Pipeline far more response bytes than sockets can buffer, and
    // never read a single one.
    for i in 0..200u64 {
        let req = Request::Get {
            txn,
            oid,
            attr: "s".into(),
        };
        if t.write_frame(&req.encode(4 + i, 0)).is_err() {
            break; // server already cut us off
        }
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    while sys.metrics().server.slow_consumer_disconnects.get() == 0 {
        assert!(
            Instant::now() < deadline,
            "slow consumer never disconnected"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_aborts_outstanding_transactions() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let t = c.begin().unwrap();
    c.set(t, oid, "v", Value::Int(5)).unwrap();

    handle.shutdown();
    assert_eq!(handle.session_count(), 0);
    assert!(sys.metrics().server.orphan_aborts.get() >= 1);
    // The lock is free and the uncommitted write is gone.
    let db = sys.db();
    let t2 = db.begin().unwrap();
    assert_eq!(db.get_attr(t2, oid, "v").unwrap(), Value::Int(0));
    db.commit(t2).unwrap();
    // The server is really gone: new connections fail.
    assert!(Client::connect(&handle.addr(), client_cfg()).is_err());
}

#[test]
fn dead_letters_drain_over_the_wire_exactly_once() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("always-broken")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| Err(ReachError::MethodFailed("boom".into()))),
    )
    .unwrap();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    for i in 0..2 {
        let t = c.begin().unwrap();
        c.invoke(t, oid, "poke", &[Value::Int(i)]).unwrap();
        c.commit(t).unwrap();
    }
    sys.wait_quiescent();

    let drained = c.drain_dead_letters().unwrap();
    assert_eq!(drained.len(), 2);
    for d in &drained {
        assert_eq!(d.rule_name, "always-broken");
        assert_eq!(
            d.code,
            ReachError::MethodFailed(String::new()).wire_code(),
            "stable wire code for the final error"
        );
        assert_eq!(d.attempts, 1);
        assert!(d.message.contains("boom"));
    }
    // Drained means drained.
    assert!(c.drain_dead_letters().unwrap().is_empty());
    handle.shutdown();
}

#[test]
fn rules_defined_over_the_wire_fire_and_notify_subscribers() {
    let (sys, _class) = world();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();

    let mut subscriber = Client::connect(&handle.addr(), client_cfg()).unwrap();
    subscriber.subscribe(true, false).unwrap();

    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let rid = c
        .define_rule(
            r#"
            rule Observed {
                decl Res *r, int x;
                event after r->poke(x);
                action imm r->note(x);
            };
            "#,
        )
        .unwrap();
    let t = c.begin().unwrap();
    let oid = c.create(t, "Res", &[]).unwrap();
    c.persist(t, oid).unwrap();
    c.invoke(t, oid, "poke", &[Value::Int(7)]).unwrap();
    // The immediate rule ran inside the invoke: note() already applied.
    assert_eq!(c.get(t, oid, "n").unwrap(), Value::Int(7));
    c.commit(t).unwrap();

    match subscriber
        .recv_notification(Duration::from_secs(10))
        .unwrap()
    {
        Some(Notification::RuleFired {
            rule, rule_name, ..
        }) => {
            assert_eq!(rule, rid);
            assert_eq!(rule_name, "Observed");
        }
        other => panic!("expected RuleFired, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn dead_letter_subscribers_get_push_notifications() {
    let (sys, class) = world();
    let oid = persistent_obj(&sys, class);
    let ev = sys
        .define_method_event("e", class, "poke", MethodPhase::After)
        .unwrap();
    sys.define_rule(
        RuleBuilder::new("doomed")
            .on(ev)
            .coupling(CouplingMode::Detached)
            .then(move |_| Err(ReachError::MethodFailed("gone".into()))),
    )
    .unwrap();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut subscriber = Client::connect(&handle.addr(), client_cfg()).unwrap();
    subscriber.subscribe(false, true).unwrap();

    let mut c = Client::connect(&handle.addr(), client_cfg()).unwrap();
    let t = c.begin().unwrap();
    c.invoke(t, oid, "poke", &[Value::Int(1)]).unwrap();
    c.commit(t).unwrap();
    sys.wait_quiescent();

    match subscriber
        .recv_notification(Duration::from_secs(10))
        .unwrap()
    {
        Some(Notification::DeadLetter(d)) => {
            assert_eq!(d.rule_name, "doomed");
            assert!(d.message.contains("gone"));
        }
        other => panic!("expected DeadLetter, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn requests_before_hello_are_protocol_violations() {
    let (sys, _class) = world();
    let handle = serve(Arc::clone(&sys), quick_cfg()).unwrap();
    let mut t = TcpTransport::connect(&handle.addr(), Some(Duration::from_millis(25))).unwrap();
    t.write_frame(&Request::Begin.encode(1, 0)).unwrap();
    let payload = loop {
        match t.read_frame() {
            Ok(p) => break p,
            Err(ReachError::IoTransient(_)) => continue,
            Err(e) => panic!("expected an error frame first, got {e:?}"),
        }
    };
    let (_, resp) = Response::decode(&payload).unwrap();
    match resp {
        Response::Err { code, message } => {
            assert_eq!(code, ReachError::Protocol(String::new()).wire_code());
            assert!(message.contains("Hello"), "message: {message}");
        }
        other => panic!("expected Err, got {other:?}"),
    }
    // ... and the connection is closed right after.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match t.read_frame() {
            Err(ReachError::ConnectionClosed(_)) => break,
            Err(ReachError::IoTransient(_)) => {
                assert!(Instant::now() < deadline, "connection never closed");
            }
            other => panic!("expected ConnectionClosed, got {other:?}"),
        }
    }
    assert!(sys.metrics().server.protocol_errors.get() >= 1);
    handle.shutdown();
}
