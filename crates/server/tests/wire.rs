//! Property tests of the wire codec: every frame type round-trips, and
//! torn / truncated / oversized / garbage input is rejected with a
//! protocol error — never a panic and never an attacker-sized
//! allocation.
//!
//! Failures print a `REACH_SEED` to replay; pin it forever by adding a
//! `cc <seed>` line to `proptest-regressions/<test_name>.txt`.

use proptest::prelude::*;
use reach_common::{ObjectId, ReachError, RuleId, TxnId};
use reach_object::Value;
use reach_server::wire::{Notification, Request, Response, WireDeadLetter, MAX_FRAME};
use reach_server::{TcpTransport, Transport};

fn value_strategy() -> BoxedStrategy<Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,12}".prop_map(Value::Str),
        any::<u64>().prop_map(|o| Value::Ref(ObjectId::new(o))),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Value::List)
    })
}

fn dead_letter_strategy() -> BoxedStrategy<WireDeadLetter> {
    (
        any::<u64>(),
        ".{0,10}",
        any::<u16>(),
        ".{0,24}",
        any::<u32>(),
        (any::<u32>(), any::<u64>()),
    )
        .prop_map(
            |(rule, rule_name, code, message, attempts, (shard, origin_txn))| WireDeadLetter {
                rule: RuleId::new(rule),
                rule_name,
                code,
                message,
                attempts,
                shard,
                origin_txn,
            },
        )
        .boxed()
}

/// Every request variant, with arbitrary field contents.
fn request_strategy() -> BoxedStrategy<Request> {
    let v = value_strategy();
    prop_oneof![
        any::<u32>().prop_map(|version| Request::Hello { version }),
        Just(Request::Begin),
        any::<u64>().prop_map(|t| Request::Commit { txn: TxnId::new(t) }),
        any::<u64>().prop_map(|t| Request::Abort { txn: TxnId::new(t) }),
        (
            any::<u64>(),
            ".{0,10}",
            proptest::collection::vec((".{0,8}", v.clone()), 0..4)
        )
            .prop_map(|(t, class, overrides)| Request::Create {
                txn: TxnId::new(t),
                class,
                overrides,
            }),
        (any::<u64>(), any::<u64>(), ".{0,10}").prop_map(|(t, o, attr)| Request::Get {
            txn: TxnId::new(t),
            oid: ObjectId::new(o),
            attr,
        }),
        (any::<u64>(), any::<u64>(), ".{0,10}", v.clone()).prop_map(|(t, o, attr, value)| {
            Request::Set {
                txn: TxnId::new(t),
                oid: ObjectId::new(o),
                attr,
                value,
            }
        }),
        (
            any::<u64>(),
            any::<u64>(),
            ".{0,10}",
            proptest::collection::vec(v.clone(), 0..4)
        )
            .prop_map(|(t, o, method, args)| Request::Invoke {
                txn: TxnId::new(t),
                oid: ObjectId::new(o),
                method,
                args,
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(t, o)| Request::Persist {
            txn: TxnId::new(t),
            oid: ObjectId::new(o),
        }),
        (any::<u64>(), ".{0,10}", any::<u64>()).prop_map(|(t, name, o)| Request::PersistNamed {
            txn: TxnId::new(t),
            name,
            oid: ObjectId::new(o),
        }),
        ".{0,10}".prop_map(|name| Request::FetchRoot { name }),
        ".{0,64}".prop_map(|source| Request::DefineRule { source }),
        ".{0,10}".prop_map(|name| Request::DefineSignal { name }),
        (
            any::<bool>(),
            any::<u64>(),
            ".{0,10}",
            proptest::collection::vec(v, 0..4)
        )
            .prop_map(|(has_txn, t, name, args)| Request::RaiseSignal {
                txn: has_txn.then(|| TxnId::new(t)),
                name,
                args,
            }),
        (any::<bool>(), any::<bool>()).prop_map(|(firings, dead_letters)| Request::Subscribe {
            firings,
            dead_letters,
        }),
        Just(Request::DrainDeadLetters),
        Just(Request::Ping),
        Just(Request::BeginReadOnly),
        any::<u64>().prop_map(|o| Request::ShardOf {
            oid: ObjectId::new(o)
        }),
    ]
    .boxed()
}

/// Every response variant, including both notification kinds.
fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        Just(Response::Ok),
        (any::<u16>(), ".{0,24}").prop_map(|(code, message)| Response::Err { code, message }),
        any::<u64>().prop_map(|t| Response::Txn(TxnId::new(t))),
        any::<u64>().prop_map(|o| Response::Oid(ObjectId::new(o))),
        value_strategy().prop_map(Response::Value),
        any::<u64>().prop_map(|r| Response::Rule(RuleId::new(r))),
        (any::<u64>(), any::<u32>())
            .prop_map(|(session, max_frame)| Response::HelloOk { session, max_frame }),
        Just(Response::Pong),
        proptest::collection::vec(dead_letter_strategy(), 0..4).prop_map(Response::DeadLetters),
        (any::<u64>(), ".{0,10}", any::<u64>()).prop_map(|(rule, rule_name, event_type)| {
            Response::Notification(Notification::RuleFired {
                rule: RuleId::new(rule),
                rule_name,
                event_type,
            })
        }),
        dead_letter_strategy().prop_map(|d| Response::Notification(Notification::DeadLetter(d))),
        (any::<u32>(), any::<u32>()).prop_map(|(shard, shards)| Response::Shard { shard, shards }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_round_trip(req in request_strategy(), id in any::<u64>(), dl in any::<u32>()) {
        let encoded = req.encode(id, dl);
        let (got_id, got_dl, got) = Request::decode(&encoded).expect("decode own encoding");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got_dl, dl);
        prop_assert_eq!(got, req);
    }

    #[test]
    fn response_round_trip(resp in response_strategy(), id in any::<u64>()) {
        let encoded = resp.encode(id);
        let (got_id, got) = Response::decode(&encoded).expect("decode own encoding");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, resp);
    }

    /// A torn frame — any strict prefix of a valid encoding — must fail
    /// with a protocol error, because decode lengths are deterministic:
    /// if a prefix decoded cleanly, the full frame would have had
    /// trailing bytes and failed `finish()`.
    #[test]
    fn torn_request_prefixes_are_protocol_errors(
        req in request_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = req.encode(7, 0);
        let cut = cut.index(encoded.len().max(1));
        match Request::decode(&encoded[..cut]) {
            Err(ReachError::Protocol(_)) => {}
            other => prop_assert!(false, "prefix of len {cut} gave {other:?}"),
        }
    }

    #[test]
    fn torn_response_prefixes_are_protocol_errors(
        resp in response_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let encoded = resp.encode(7);
        let cut = cut.index(encoded.len().max(1));
        match Response::decode(&encoded[..cut]) {
            Err(ReachError::Protocol(_)) => {}
            other => prop_assert!(false, "prefix of len {cut} gave {other:?}"),
        }
    }

    /// Arbitrary garbage must never panic the decoders; any error they
    /// return must be the protocol kind (mapped to a stable wire code),
    /// and a huge declared length inside the payload must not cause a
    /// matching allocation.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Err(e) = Request::decode(&bytes) {
            prop_assert!(matches!(e, ReachError::Protocol(_)), "non-protocol error {e:?}");
        }
        if let Err(e) = Response::decode(&bytes) {
            prop_assert!(matches!(e, ReachError::Protocol(_)), "non-protocol error {e:?}");
        }
    }

    /// Flipping any single byte of a valid frame must not panic, and
    /// count/length fields inflated by the flip must not over-allocate.
    #[test]
    fn bit_flips_never_panic(
        req in request_strategy(),
        at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut encoded = req.encode(3, 1000);
        if encoded.is_empty() {
            return;
        }
        let i = at.index(encoded.len());
        encoded[i] ^= 1 << bit;
        let _ = Request::decode(&encoded); // must not panic
    }
}

/// An oversized frame header is rejected before any payload-sized
/// allocation, and the connection surfaces a protocol error.
#[test]
fn oversized_frame_is_rejected_before_allocation() {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        // Claim a payload just past the cap; send only the header.
        let len = (MAX_FRAME as u32) + 1;
        s.write_all(&len.to_le_bytes()).unwrap();
        s.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(200));
    });
    let (stream, _) = listener.accept().unwrap();
    let mut t = TcpTransport::new(stream, Some(std::time::Duration::from_millis(25))).unwrap();
    let start = std::time::Instant::now();
    loop {
        match t.read_frame() {
            Err(ReachError::Protocol(m)) => {
                assert!(m.contains("exceeds cap"), "unexpected message: {m}");
                break;
            }
            Err(ReachError::IoTransient(_)) => {
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(5),
                    "timed out"
                );
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
    writer.join().unwrap();
}

/// A peer that sends half a frame and disconnects yields
/// `ConnectionClosed`, not a hang and not a partial-frame delivery.
#[test]
fn truncated_frame_then_close_is_connection_closed() {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        let payload = Request::Ping.encode(1, 0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Send all but the last byte, then vanish.
        s.write_all(&frame[..frame.len() - 1]).unwrap();
        s.flush().unwrap();
    });
    let (stream, _) = listener.accept().unwrap();
    let mut t = TcpTransport::new(stream, Some(std::time::Duration::from_millis(25))).unwrap();
    writer.join().unwrap();
    let start = std::time::Instant::now();
    loop {
        match t.read_frame() {
            Err(ReachError::ConnectionClosed(_)) => break,
            Err(ReachError::IoTransient(_)) => {
                assert!(
                    start.elapsed() < std::time::Duration::from_secs(5),
                    "timed out"
                );
            }
            other => panic!("expected ConnectionClosed, got {other:?}"),
        }
    }
}

/// Two frames delivered in one TCP segment are split correctly, and a
/// frame split across many tiny writes is reassembled.
#[test]
fn frame_reassembly_across_partial_writes() {
    use std::io::Write as _;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let writer = std::thread::spawn(move || {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        let a = Request::Ping.encode(1, 0);
        let b = Request::Begin.encode(2, 50);
        let mut bytes = Vec::new();
        for p in [&a, &b] {
            bytes.extend_from_slice(&(p.len() as u32).to_le_bytes());
            bytes.extend_from_slice(p);
        }
        // Dribble the two frames one byte at a time.
        for chunk in bytes.chunks(1) {
            s.write_all(chunk).unwrap();
            s.flush().unwrap();
        }
    });
    let (stream, _) = listener.accept().unwrap();
    let mut t = TcpTransport::new(stream, Some(std::time::Duration::from_millis(25))).unwrap();
    let mut got = Vec::new();
    let start = std::time::Instant::now();
    while got.len() < 2 {
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "timed out"
        );
        match t.read_frame() {
            Ok(p) => got.push(Request::decode(&p).unwrap()),
            Err(ReachError::IoTransient(_)) => continue,
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    writer.join().unwrap();
    assert_eq!(got[0], (1, 0, Request::Ping));
    assert_eq!(got[1], (2, 50, Request::Begin));
}
