//! Durability and recovery across simulated crashes, at the full
//! database level: commit forces only the WAL; if the process dies
//! before any checkpoint flushes pages, reopening must replay the log
//! (the ARIES redo path) and recover every committed object.

use reach::{Database, DatabaseConfig, Value, ValueType};
use std::sync::Arc;

fn declare(db: &Arc<Database>) -> reach::ClassId {
    let (b, set) = db
        .define_class("Doc")
        .attr("body", ValueType::Str, Value::Str(String::new()))
        .attr("rev", ValueType::Int, Value::Int(0))
        .virtual_method("revise");
    let class = b.define().unwrap();
    db.methods().register_fn(set, |ctx| {
        ctx.set("body", ctx.arg(0))?;
        let r = ctx.get("rev")?.as_int()? + 1;
        ctx.set("rev", Value::Int(r))?;
        Ok(Value::Int(r))
    });
    class
}

#[test]
fn committed_objects_survive_crash_without_checkpoint() {
    let dir = std::env::temp_dir().join(format!("reach-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        let t = db.begin().unwrap();
        let doc = db.create(t, class).unwrap();
        db.invoke(t, doc, "revise", &[Value::Str("v1".into())])
            .unwrap();
        db.persist_named(t, "doc", doc).unwrap();
        db.commit(t).unwrap();
        // CRASH: no checkpoint, the Database is just dropped. Dirty
        // pages were never flushed; only the WAL is durable.
    }
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        declare(&db);
        let t = db.begin().unwrap();
        let doc = db.fetch("doc").unwrap();
        assert_eq!(
            db.get_attr(t, doc, "body").unwrap(),
            Value::Str("v1".into())
        );
        assert_eq!(db.get_attr(t, doc, "rev").unwrap(), Value::Int(1));
        db.commit(t).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_work_vanishes_after_crash() {
    let dir = std::env::temp_dir().join(format!("reach-crash2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        // Committed baseline.
        let t = db.begin().unwrap();
        let doc = db.create(t, class).unwrap();
        db.invoke(t, doc, "revise", &[Value::Str("stable".into())])
            .unwrap();
        db.persist_named(t, "doc", doc).unwrap();
        db.commit(t).unwrap();
        // An open transaction mutates the object, then the process dies
        // mid-flight (the storage write-back happens only at commit, so
        // this mostly exercises the loser-analysis path).
        let t2 = db.begin().unwrap();
        db.invoke(t2, doc, "revise", &[Value::Str("doomed".into())])
            .unwrap();
        // no commit — crash
    }
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        declare(&db);
        let t = db.begin().unwrap();
        let doc = db.fetch("doc").unwrap();
        assert_eq!(
            db.get_attr(t, doc, "body").unwrap(),
            Value::Str("stable".into())
        );
        db.commit(t).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn many_transactions_then_crash_then_more_transactions() {
    let dir = std::env::temp_dir().join(format!("reach-crash3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let count = 25;
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        for i in 0..count {
            let t = db.begin().unwrap();
            let doc = db.create(t, class).unwrap();
            db.invoke(t, doc, "revise", &[Value::Str(format!("doc{i}"))])
                .unwrap();
            db.persist_named(t, &format!("doc{i}"), doc).unwrap();
            db.commit(t).unwrap();
            if i == count / 2 {
                db.checkpoint().unwrap(); // mid-stream fuzzy checkpoint
            }
        }
    }
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        declare(&db);
        let t = db.begin().unwrap();
        for i in 0..count {
            let doc = db.fetch(&format!("doc{i}")).unwrap();
            assert_eq!(
                db.get_attr(t, doc, "body").unwrap(),
                Value::Str(format!("doc{i}")),
                "doc{i} must survive"
            );
        }
        db.commit(t).unwrap();
        // The store remains fully usable: write more and crash again.
        let t = db.begin().unwrap();
        let class = db.schema().class_by_name("Doc").unwrap();
        let extra = db.create(t, class).unwrap();
        db.persist_named(t, "extra", extra).unwrap();
        db.commit(t).unwrap();
    }
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        declare(&db);
        assert!(db.fetch("extra").is_ok());
        assert_eq!(db.persistence_pm().stored_count(), count + 1);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn deleted_persistent_objects_stay_deleted_after_crash() {
    let dir = std::env::temp_dir().join(format!("reach-crash4-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        let t = db.begin().unwrap();
        let doc = db.create(t, class).unwrap();
        db.persist_named(t, "victim", doc).unwrap();
        db.commit(t).unwrap();
        let t = db.begin().unwrap();
        db.delete_object(t, doc).unwrap();
        db.dictionary().unbind("victim");
        db.commit(t).unwrap();
    }
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        declare(&db);
        assert!(db.fetch("victim").is_err());
        assert_eq!(db.persistence_pm().stored_count(), 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
