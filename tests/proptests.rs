//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use reach::common::{ObjectId, PageId, TxnId};
use reach::object::{Value, ValueType};
use reach::storage::{Page, WalRecord, WriteAheadLog};
use reach::txn::{LockManager, LockMode};
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Slotted pages: model-based testing against a HashMap reference.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        (0usize..16).prop_map(PageOp::Delete),
        ((0usize..16), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(i, d)| PageOp::Update(i, d)),
    ]
}

proptest! {
    #[test]
    fn page_behaves_like_a_map(ops in proptest::collection::vec(page_op(), 1..60)) {
        let mut page = Page::new(PageId::new(1));
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                PageOp::Insert(data) => {
                    if let Ok(slot) = page.insert(&data) {
                        model.insert(slot, data);
                        if !live.contains(&slot) {
                            live.push(slot);
                        }
                    }
                }
                PageOp::Delete(i) => {
                    if !live.is_empty() {
                        let slot = live[i % live.len()];
                        if model.remove(&slot).is_some() {
                            page.delete(slot).unwrap();
                            live.retain(|s| *s != slot);
                        }
                    }
                }
                PageOp::Update(i, data) => {
                    if !live.is_empty() {
                        let slot = live[i % live.len()];
                        if model.contains_key(&slot) && page.update(slot, &data).is_ok() {
                            model.insert(slot, data);
                        }
                    }
                }
            }
            // Invariant: every model record readable, byte-identical.
            for (slot, data) in &model {
                prop_assert_eq!(page.get(*slot).unwrap(), &data[..]);
            }
            prop_assert_eq!(page.live_count(), model.len());
        }
        // And the page image round-trips through bytes.
        let reloaded = Page::from_bytes(page.as_bytes()).unwrap();
        for (slot, data) in &model {
            prop_assert_eq!(reloaded.get(*slot).unwrap(), &data[..]);
        }
    }
}

// ---------------------------------------------------------------------
// Value encoding is a total round-trip.
// ---------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Totally ordered floats only (no NaN) — NaN compares as Equal
        // by design, but encoding equality tests need Eq semantics.
        (-1e15f64..1e15).prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Str),
        any::<u64>().prop_map(|r| Value::Ref(ObjectId::new(r))),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Value::List)
    })
}

proptest! {
    #[test]
    fn value_encoding_round_trips(v in value_strategy()) {
        let enc = v.encode();
        let mut pos = 0;
        let dec = Value::decode_from(&enc, &mut pos).unwrap();
        prop_assert_eq!(&dec, &v);
        prop_assert_eq!(pos, enc.len());
    }

    #[test]
    fn value_compare_is_a_total_order(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy()
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.compare(&b), b.compare(&a).reverse());
        // Reflexivity.
        prop_assert_eq!(a.compare(&a), Ordering::Equal);
        // Transitivity of <=.
        if a.compare(&b) != Ordering::Greater && b.compare(&c) != Ordering::Greater {
            prop_assert_ne!(a.compare(&c), Ordering::Greater);
        }
    }

    #[test]
    fn value_conforms_to_declared_type(v in value_strategy()) {
        prop_assert!(v.conforms_to(ValueType::Any));
        prop_assert!(v.conforms_to(v.value_type()));
    }
}

// ---------------------------------------------------------------------
// WAL: any record sequence scans back identically.
// ---------------------------------------------------------------------

fn wal_record() -> impl Strategy<Value = WalRecord> {
    prop_oneof![
        any::<u64>().prop_map(|t| WalRecord::Begin {
            txn: TxnId::new(t.max(1))
        }),
        any::<u64>().prop_map(|t| WalRecord::Commit {
            txn: TxnId::new(t.max(1))
        }),
        any::<u64>().prop_map(|t| WalRecord::Abort {
            txn: TxnId::new(t.max(1))
        }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..100)
        )
            .prop_map(|(t, p, s, d)| WalRecord::Insert {
                txn: TxnId::new(t.max(1)),
                page: PageId::new(p.max(1)),
                slot: s,
                payload: d,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..50),
            proptest::collection::vec(any::<u8>(), 0..50)
        )
            .prop_map(|(t, p, s, b, a)| WalRecord::Update {
                txn: TxnId::new(t.max(1)),
                page: PageId::new(p.max(1)),
                slot: s,
                before: b,
                after: a,
            }),
    ]
}

proptest! {
    #[test]
    fn wal_scan_reproduces_appends(records in proptest::collection::vec(wal_record(), 0..40)) {
        let log = WriteAheadLog::in_memory();
        for r in &records {
            log.append(r).unwrap();
        }
        let scanned: Vec<WalRecord> = log.scan().unwrap().into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(scanned, records);
    }
}

// ---------------------------------------------------------------------
// Lock manager: mutual exclusion invariant under arbitrary interleaving.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn lock_manager_never_grants_conflicting_holds(
        ops in proptest::collection::vec((1u64..5, 1u64..4, any::<bool>()), 1..40)
    ) {
        let lm = LockManager::new();
        let mut held: HashMap<(TxnId, ObjectId), LockMode> = HashMap::new();
        for (txn_raw, oid_raw, exclusive) in ops {
            let txn = TxnId::new(txn_raw);
            let oid = ObjectId::new(oid_raw);
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            if lm.try_acquire(txn, oid, mode, &[]).unwrap() {
                let e = held.entry((txn, oid)).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *e = LockMode::Exclusive;
                }
            }
            // Invariant: an exclusive hold excludes all other holders.
            for ((t1, o1), m1) in &held {
                for ((t2, o2), m2) in &held {
                    if o1 == o2 && t1 != t2 {
                        prop_assert!(
                            *m1 == LockMode::Shared && *m2 == LockMode::Shared,
                            "conflicting holds on {o1}: {t1}={m1:?} {t2}={m2:?}"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Compositor: the four consumption policies keep their defining
// invariants for arbitrary interleavings of two primitive streams.
// ---------------------------------------------------------------------

use reach::active::algebra::{CompositionScope, EventExpr, Lifespan};
use reach::active::compositor::Compositor;
use reach::active::consumption::ConsumptionPolicy;
use reach::active::event::{EventData, EventOccurrence};
use reach::common::{EventTypeId, TimePoint, Timestamp};
use std::sync::Arc as StdArc;

fn occ(ty: u64, seq: u64) -> StdArc<EventOccurrence> {
    StdArc::new(EventOccurrence {
        event_type: EventTypeId::new(ty),
        seq: Timestamp::new(seq),
        at: TimePoint::from_millis(seq),
        txn: Some(TxnId::new(1)),
        top_txn: Some(TxnId::new(1)),
        data: EventData::default(),
        constituents: Vec::new(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn sequence_composition_invariants(stream in proptest::collection::vec(prop_oneof![Just(1u64), Just(2u64)], 1..40)) {
        for policy in ConsumptionPolicy::ALL {
            let comp = Compositor::new(
                EventExpr::Sequence(vec![
                    EventExpr::Primitive(EventTypeId::new(1)),
                    EventExpr::Primitive(EventTypeId::new(2)),
                ]),
                CompositionScope::CrossTransaction,
                Lifespan::Interval(std::time::Duration::from_secs(3600)),
                policy,
            );
            let mut firings = Vec::new();
            for (i, ty) in stream.iter().enumerate() {
                for f in comp.feed(&occ(*ty, i as u64 + 1)) {
                    firings.push(f);
                }
            }
            for f in &firings {
                // Every firing is e1-then-e2 in sequence order.
                prop_assert!(f.constituents.len() >= 2);
                let first = &f.constituents[0];
                let last = f.constituents.last().unwrap();
                prop_assert_eq!(first.event_type, EventTypeId::new(1));
                prop_assert_eq!(last.event_type, EventTypeId::new(2));
                prop_assert!(first.seq < last.seq, "sequence order respected");
            }
            let e1s = stream.iter().filter(|t| **t == 1).count();
            let e2s = stream.iter().filter(|t| **t == 2).count();
            match policy {
                // Chronicle: at most min(#e1, #e2) firings, each pair disjoint.
                ConsumptionPolicy::Chronicle => {
                    prop_assert!(firings.len() <= e1s.min(e2s));
                }
                // Recent / cumulative: one in-flight instance at a time.
                ConsumptionPolicy::Recent | ConsumptionPolicy::Cumulative => {
                    prop_assert!(firings.len() <= e2s);
                    prop_assert!(comp.live_instances() <= 1);
                }
                // Continuous: each e1 opens a window; a window fires once.
                ConsumptionPolicy::Continuous => {
                    prop_assert!(firings.len() <= e1s);
                }
            }
        }
    }
}
