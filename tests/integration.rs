//! Workspace-level integration tests: exercise the full stack through
//! the `reach` facade, spanning storage, transactions, the object model,
//! the query engine, the active layer and the rule language together.

use reach::active::eca::CompositionMode;
use reach::active::event::MethodPhase;
use reach::{
    load_rule, CompositionScope, ConsumptionPolicy, CouplingMode, Database, DatabaseConfig,
    EventExpr, ExecutionStrategy, Lifespan, ReachConfig, ReachSystem, RuleBuilder, Value,
    ValueType,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Inventory world: warehouse items whose stock is adjusted by method
/// calls; a reorder rule watches the level.
fn inventory() -> (Arc<ReachSystem>, reach::ClassId) {
    let db = Database::in_memory().unwrap();
    let (b, take) = db
        .define_class("Item")
        .attr("stock", ValueType::Int, Value::Int(100))
        .attr("reordered", ValueType::Bool, Value::Bool(false))
        .virtual_method("take");
    let (b, restock) = b.virtual_method("restock");
    let item = b.define().unwrap();
    db.methods().register_fn(take, |ctx| {
        let n = ctx.get("stock")?.as_int()? - ctx.arg(0).as_int()?;
        ctx.set("stock", Value::Int(n))?;
        Ok(Value::Int(n))
    });
    db.methods().register_fn(restock, |ctx| {
        let n = ctx.get("stock")?.as_int()? + ctx.arg(0).as_int()?;
        ctx.set("stock", Value::Int(n))?;
        ctx.set("reordered", Value::Bool(false))?;
        Ok(Value::Int(n))
    });
    let sys = ReachSystem::new(db, ReachConfig::default());
    (sys, item)
}

#[test]
fn reorder_rule_spans_the_whole_stack() {
    let (sys, item) = inventory();
    let db = sys.db();
    let low_stock = sys
        .define_state_event("stock-changed", item, "stock")
        .unwrap();
    // Immediate rule: mark for reorder when stock dips below 20.
    sys.define_rule(
        RuleBuilder::new("reorder")
            .on(low_stock)
            .coupling(CouplingMode::Immediate)
            .when(|ctx| Ok(ctx.new_value().as_int()? < 20))
            .then(|ctx| {
                let oid = ctx.receiver().unwrap();
                ctx.db
                    .set_attr(ctx.txn, oid, "reordered", Value::Bool(true))
            }),
    )
    .unwrap();
    let t = db.begin().unwrap();
    let widget = db.create(t, item).unwrap();
    db.persist_named(t, "widget", widget).unwrap();
    db.invoke(t, widget, "take", &[Value::Int(50)]).unwrap();
    assert_eq!(
        db.get_attr(t, widget, "reordered").unwrap(),
        Value::Bool(false)
    );
    db.invoke(t, widget, "take", &[Value::Int(40)]).unwrap(); // stock = 10
    assert_eq!(
        db.get_attr(t, widget, "reordered").unwrap(),
        Value::Bool(true)
    );
    db.commit(t).unwrap();
    // The query engine sees the rule's effect.
    let t = db.begin().unwrap();
    let hits = db
        .query(t, "select i from Item i where i.reordered == true")
        .unwrap();
    assert_eq!(hits, vec![widget]);
    db.commit(t).unwrap();
}

#[test]
fn persistence_survives_restart_with_rules_redeclared() {
    let dir = std::env::temp_dir().join(format!("reach-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let declare = |db: &Arc<Database>| {
        let (b, bump) = db
            .define_class("Counter")
            .attr("n", ValueType::Int, Value::Int(0))
            .virtual_method("bump");
        let class = b.define().unwrap();
        db.methods().register_fn(bump, |ctx| {
            let n = ctx.get("n")?.as_int()? + 1;
            ctx.set("n", Value::Int(n))?;
            Ok(Value::Int(n))
        });
        class
    };
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
        let ev = sys
            .define_method_event("on-bump", class, "bump", MethodPhase::After)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        sys.define_rule(
            RuleBuilder::new("observe")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
        let t = db.begin().unwrap();
        let c = db.create(t, class).unwrap();
        db.persist_named(t, "counter", c).unwrap();
        db.invoke(t, c, "bump", &[]).unwrap();
        db.commit(t).unwrap();
        db.checkpoint().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
    // Restart: schema and rules are code, state is storage.
    {
        let db = Database::open(&dir, DatabaseConfig::default()).unwrap();
        let class = declare(&db);
        let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
        let ev = sys
            .define_method_event("on-bump", class, "bump", MethodPhase::After)
            .unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        sys.define_rule(
            RuleBuilder::new("observe")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .then(move |_| {
                    f.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                }),
        )
        .unwrap();
        let t = db.begin().unwrap();
        let c = db.fetch("counter").unwrap();
        assert_eq!(db.get_attr(t, c, "n").unwrap(), Value::Int(1));
        db.invoke(t, c, "bump", &[]).unwrap();
        assert_eq!(db.get_attr(t, c, "n").unwrap(), Value::Int(2));
        db.commit(t).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "rule fires after restart");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rule_language_with_query_visible_effects() {
    let db = Database::in_memory().unwrap();
    let (b, log_m) = db
        .define_class("Machine")
        .attr("temp", ValueType::Float, Value::Float(20.0))
        .attr("alerts", ValueType::Int, Value::Int(0))
        .virtual_method("raiseAlert");
    let (b, set_temp) = b.virtual_method("setTemp");
    let machine = b.define().unwrap();
    db.methods().register_fn(log_m, |ctx| {
        let n = ctx.get("alerts")?.as_int()? + 1;
        ctx.set("alerts", Value::Int(n))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(set_temp, |ctx| {
        ctx.set("temp", ctx.arg(0))?;
        Ok(Value::Null)
    });
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    load_rule(
        &sys,
        r#"
        rule Overheat {
            prio 1;
            decl Machine *m, float t;
            event after m->setTemp(t);
            cond imm t > 90.0;
            action imm m->raiseAlert();
        };
    "#,
    )
    .unwrap();
    let t = db.begin().unwrap();
    let m1 = db.create(t, machine).unwrap();
    let m2 = db.create(t, machine).unwrap();
    db.persist(t, m1).unwrap();
    db.persist(t, m2).unwrap();
    db.invoke(t, m1, "setTemp", &[Value::Float(95.0)]).unwrap();
    db.invoke(t, m2, "setTemp", &[Value::Float(50.0)]).unwrap();
    db.invoke(t, m1, "setTemp", &[Value::Float(99.0)]).unwrap();
    db.commit(t).unwrap();
    let t = db.begin().unwrap();
    let hot = db
        .query(t, "select m from Machine m where m.alerts >= 2")
        .unwrap();
    assert_eq!(hot, vec![m1]);
    db.commit(t).unwrap();
}

#[test]
fn layered_baseline_misses_what_integrated_catches() {
    use reach::layered::{ClosedOodb, LayeredLayer};
    // Integrated side.
    let (sys, item) = inventory();
    let db = sys.db();
    let ev = sys.define_state_event("s", item, "stock").unwrap();
    let integrated_hits = Arc::new(AtomicUsize::new(0));
    let h = Arc::clone(&integrated_hits);
    sys.define_rule(
        RuleBuilder::new("watch")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    let t = db.begin().unwrap();
    let oid = db.create(t, item).unwrap();
    db.set_attr(t, oid, "stock", Value::Int(5)).unwrap();
    db.commit(t).unwrap();
    assert_eq!(integrated_hits.load(Ordering::SeqCst), 1);

    // Layered side: same state write is invisible until a poll.
    let closed = Arc::new(ClosedOodb::in_memory().unwrap());
    let (b, _m) = closed
        .define_class("Item")
        .attr("stock", ValueType::Int, Value::Int(100))
        .virtual_method("noop");
    let item_l = b.define().unwrap();
    let layer = LayeredLayer::new(Arc::clone(&closed));
    let t = closed.begin().unwrap();
    let oid = closed.create(t, item_l).unwrap();
    layer.watch(t, oid).unwrap();
    closed.set_attr(t, oid, "stock", Value::Int(5)).unwrap();
    // Nothing detected until poll; the integrated system saw it at once.
    let changes = layer.poll(t).unwrap();
    assert_eq!(changes.len(), 1);
    closed.commit(t).unwrap();
}

#[test]
fn parallel_everything_stress() {
    // Parallel composition + parallel immediate strategy + detached
    // rules, hammered from several application threads.
    let db = Database::in_memory().unwrap();
    let (b, ping) = db
        .define_class("Node")
        .attr("hits", ValueType::Int, Value::Int(0))
        .virtual_method("ping");
    let node = b.define().unwrap();
    db.methods().register_fn(ping, |ctx| {
        let n = ctx.get("hits")?.as_int()? + 1;
        ctx.set("hits", Value::Int(n))?;
        Ok(Value::Int(n))
    });
    let sys = ReachSystem::new(
        Arc::clone(&db),
        ReachConfig {
            composition: CompositionMode::Parallel,
            strategy: ExecutionStrategy::Parallel,
            ..ReachConfig::default()
        },
    );
    let ev = sys
        .define_method_event("on-ping", node, "ping", MethodPhase::After)
        .unwrap();
    let _pair = sys
        .define_composite(
            "ping-pair",
            EventExpr::History {
                expr: Arc::new(EventExpr::Primitive(ev)),
                count: 2,
            },
            CompositionScope::CrossTransaction,
            Lifespan::Interval(Duration::from_secs(3600)),
            ConsumptionPolicy::Chronicle,
        )
        .unwrap();
    let immediate = Arc::new(AtomicUsize::new(0));
    let i2 = Arc::clone(&immediate);
    sys.define_rule(
        RuleBuilder::new("imm")
            .on(ev)
            .coupling(CouplingMode::Immediate)
            .then(move |_| {
                i2.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }),
    )
    .unwrap();
    // Each thread pings its own node in its own transactions.
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            let t = db.begin().unwrap();
            let oid = db.create(t, node).unwrap();
            db.persist(t, oid).unwrap();
            db.commit(t).unwrap();
            for _ in 0..25 {
                let t = db.begin().unwrap();
                db.invoke(t, oid, "ping", &[]).unwrap();
                db.commit(t).unwrap();
            }
            oid
        }));
    }
    let oids: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    sys.wait_quiescent();
    assert_eq!(immediate.load(Ordering::SeqCst), 100);
    let t = db.begin().unwrap();
    for oid in oids {
        assert_eq!(db.get_attr(t, oid, "hits").unwrap(), Value::Int(25));
    }
    db.commit(t).unwrap();
}

#[test]
fn figure1_manifest_regenerates() {
    let db = Database::in_memory().unwrap();
    let manifest = db.manifest();
    let joined = manifest.join("\n");
    // Figure 1's boxes.
    for needle in [
        "Application Programming Interface",
        "Meta Architecture Support (Sentries)",
        "persistence",
        "transactions",
        "indexing",
        "query",
        "change",
        "data-dictionary",
        "asm:active-memory",
        "asm:passive-store",
    ] {
        assert!(
            joined.contains(needle),
            "manifest missing {needle}:\n{joined}"
        );
    }
}
