//! # REACH — an integrated active OODBMS
//!
//! A from-scratch Rust reproduction of *"Building an Integrated Active
//! OODBMS: Requirements, Architecture, and Design Decisions"* (Buchmann,
//! Zimmermann, Blakeley, Wells — ICDE 1995).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`storage`] — EXODUS-style storage manager (pages, buffer pool,
//!   WAL, recovery);
//! * [`object`] — the reflective object model with the sentry-bearing
//!   dispatcher;
//! * [`txn`] — flat + closed-nested transactions, 2PL, commit/abort
//!   dependency graph;
//! * [`oodb`] — the Open OODB meta-architecture (policy managers, data
//!   dictionary, OQL queries) assembled as [`Database`];
//! * [`active`] — the REACH active layer: events, composition, coupling
//!   modes, ECA-managers, rule engine — assembled as [`ReachSystem`];
//! * [`rulelang`] — the §6.1 rule definition language;
//! * [`layered`] — the layered-architecture baseline of §4.
//!
//! ## Quickstart
//!
//! ```
//! use reach::{Database, ReachSystem, ReachConfig, RuleBuilder, CouplingMode};
//! use reach::object::{Value, ValueType};
//! use reach::active::event::MethodPhase;
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! // 1. A database with one class.
//! let db = Database::in_memory().unwrap();
//! let (b, deposit) = db.define_class("Account")
//!     .attr("balance", ValueType::Int, Value::Int(0))
//!     .virtual_method("deposit");
//! let account = b.define().unwrap();
//! db.methods().register_fn(deposit, |ctx| {
//!     let n = ctx.get("balance")?.as_int()? + ctx.arg(0).as_int()?;
//!     ctx.set("balance", Value::Int(n))?;
//!     Ok(Value::Int(n))
//! });
//!
//! // 2. The active layer on top.
//! let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
//! let ev = sys.define_method_event("on-deposit", account, "deposit",
//!                                  MethodPhase::After).unwrap();
//! let fired = Arc::new(AtomicUsize::new(0));
//! let f = Arc::clone(&fired);
//! sys.define_rule(
//!     RuleBuilder::new("large-deposit")
//!         .on(ev)
//!         .coupling(CouplingMode::Immediate)
//!         .when(|ctx| Ok(ctx.arg(0).as_int()? > 1_000))
//!         .then(move |_| { f.fetch_add(1, Ordering::SeqCst); Ok(()) }),
//! ).unwrap();
//!
//! // 3. Use the database; the rule fires on its own.
//! let t = db.begin().unwrap();
//! let acct = db.create(t, account).unwrap();
//! db.invoke(t, acct, "deposit", &[Value::Int(50_000)]).unwrap();
//! db.commit(t).unwrap();
//! assert_eq!(fired.load(Ordering::SeqCst), 1);
//! ```

pub use open_oodb as oodb;
pub use reach_common as common;
pub use reach_core as active;
pub use reach_layered as layered;
pub use reach_object as object;
pub use reach_rulelang as rulelang;
pub use reach_storage as storage;
pub use reach_txn as txn;

pub use open_oodb::{Database, DatabaseConfig};
pub use reach_common::{
    ClassId, EventTypeId, ObjectId, Priority, ReachError, Result, RuleId, TimePoint, TxnId,
    VirtualClock,
};
pub use reach_core::{
    CompositionScope, ConsumptionPolicy, CouplingMode, EventExpr, ExecutionStrategy, Lifespan,
    ReachConfig, ReachSystem, RuleBuilder, RuleCtx,
};
pub use reach_object::{Value, ValueType};
pub use reach_rulelang::compile::load_rule;
