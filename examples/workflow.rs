//! Workflow management — the application domain the paper calls
//! "rapidly gaining importance", combining "event-driven activities with
//! temporal constraints".
//!
//! Demonstrates:
//! * chronicle consumption (the §3.4 context "typically used in
//!   workflow applications") pairing submissions with approvals FIFO;
//! * milestones with a contingency rule (time-constrained processing);
//! * sequential causally dependent rules (the next workflow step starts
//!   only after the previous step's transaction committed);
//! * deferred consistency checks.
//!
//! ```sh
//! cargo run --example workflow
//! ```

use reach::active::event::MethodPhase;
use reach::{
    CompositionScope, ConsumptionPolicy, CouplingMode, Database, EventExpr, Lifespan, ReachConfig,
    ReachSystem, RuleBuilder, TimePoint, Value, ValueType,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> reach::Result<()> {
    let db = Database::in_memory()?;
    let (b, submit) = db
        .define_class("Order")
        .attr("status", ValueType::Str, Value::Str("new".into()))
        .attr("amount", ValueType::Int, Value::Int(0))
        .virtual_method("submit");
    let (b, approve) = b.virtual_method("approve");
    let (b, ship) = b.virtual_method("ship");
    let order_cls = b.define()?;
    db.methods().register_fn(submit, |ctx| {
        ctx.set("status", Value::Str("submitted".into()))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(approve, |ctx| {
        ctx.set("status", Value::Str("approved".into()))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(ship, |ctx| {
        ctx.set("status", Value::Str("shipped".into()))?;
        Ok(Value::Null)
    });

    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    let on_submit =
        sys.define_method_event("on-submit", order_cls, "submit", MethodPhase::After)?;
    let on_approve =
        sys.define_method_event("on-approve", order_cls, "approve", MethodPhase::After)?;

    // Chronicle composite: submissions pair FIFO with approvals, even
    // across transactions (a workflow step spans many user sessions).
    let step_done = sys.define_composite(
        "submit-then-approve",
        EventExpr::Sequence(vec![
            EventExpr::Primitive(on_submit),
            EventExpr::Primitive(on_approve),
        ]),
        CompositionScope::CrossTransaction,
        Lifespan::Interval(Duration::from_secs(24 * 3600)),
        ConsumptionPolicy::Chronicle,
    )?;

    // Next step, sequential causally dependent: ship only after the
    // approval transaction really committed.
    let shipped = Arc::new(AtomicUsize::new(0));
    {
        let shipped = Arc::clone(&shipped);
        sys.define_rule(
            RuleBuilder::new("ship-approved-orders")
                .on(step_done)
                .coupling(CouplingMode::SequentialCausallyDependent)
                .then(move |ctx| {
                    // The submit event's receiver is the order.
                    let order = ctx.receiver().unwrap();
                    ctx.db.invoke(ctx.txn, order, "ship", &[])?;
                    shipped.fetch_add(1, Ordering::SeqCst);
                    println!("      >> shipped {order} (after approval committed)");
                    Ok(())
                }),
        )?;
    }

    // Deferred consistency check: an order above 10k must not be
    // approved in the same transaction that submitted it (separation of
    // duties). Runs at pre-commit and aborts violators.
    let same_txn_pair = sys.define_composite(
        "submit-and-approve-same-txn",
        EventExpr::Sequence(vec![
            EventExpr::Primitive(on_submit),
            EventExpr::Primitive(on_approve),
        ]),
        CompositionScope::SameTransaction,
        Lifespan::Transaction,
        ConsumptionPolicy::Chronicle,
    )?;
    sys.define_rule(
        RuleBuilder::new("separation-of-duties")
            .on(same_txn_pair)
            .coupling(CouplingMode::Deferred)
            .when(|ctx| {
                let order = ctx.receiver().unwrap();
                Ok(ctx.db.get_attr(ctx.txn, order, "amount")?.as_int()? > 10_000)
            })
            .then(|_| {
                Err(reach::ReachError::RuleEvaluation(
                    "large order submitted and approved by one transaction".into(),
                ))
            }),
    )?;

    // Milestone: an order must be approved within 4 hours of submission
    // or a reminder escalates.
    let reminder = sys.define_milestone_event("approval-deadline")?;
    let escalations = Arc::new(AtomicUsize::new(0));
    {
        let escalations = Arc::clone(&escalations);
        sys.define_rule(
            RuleBuilder::new("escalate")
                .on(reminder)
                .coupling(CouplingMode::Detached)
                .then(move |_| {
                    escalations.fetch_add(1, Ordering::SeqCst);
                    println!("      !! escalation: approval overdue");
                    Ok(())
                }),
        )?;
    }

    // ---- the workflow ----
    println!("-- order A: clean two-step flow --");
    let t = db.begin()?;
    let order_a = db.create_with(t, order_cls, &[("amount", Value::Int(500))])?;
    db.persist_named(t, "order-a", order_a)?;
    db.invoke(t, order_a, "submit", &[])?;
    db.commit(t)?;
    let t = db.begin()?;
    db.invoke(t, order_a, "approve", &[])?;
    db.commit(t)?;
    sys.wait_quiescent();

    println!("-- order B: separation-of-duties violation --");
    let t = db.begin()?;
    let order_b = db.create_with(t, order_cls, &[("amount", Value::Int(50_000))])?;
    db.persist_named(t, "order-b", order_b)?;
    db.invoke(t, order_b, "submit", &[])?;
    db.invoke(t, order_b, "approve", &[])?;
    match db.commit(t) {
        Err(e) => println!("   commit rejected: {e}"),
        Ok(()) => println!("   BUG: violation committed"),
    }

    println!("-- order C: approval misses its milestone --");
    let t = db.begin()?;
    let order_c = db.create_with(t, order_cls, &[("amount", Value::Int(900))])?;
    db.persist_named(t, "order-c", order_c)?;
    db.invoke(t, order_c, "submit", &[])?;
    sys.set_milestone(
        t,
        reminder,
        TimePoint::from_secs(4 * 3600), // 4h deadline on the virtual clock
    );
    // ... four and a half hours pass without approval ...
    sys.advance_time(Duration::from_secs(4 * 3600 + 1800));
    sys.wait_quiescent();
    db.commit(t)?;

    sys.wait_quiescent();
    let t = db.begin()?;
    println!("\norder A status: {}", db.get_attr(t, order_a, "status")?);
    db.commit(t)?;
    println!(
        "shipped: {}, escalations: {}, stats: {:?}",
        shipped.load(Ordering::SeqCst),
        escalations.load(Ordering::SeqCst),
        sys.stats()
    );
    Ok(())
}
