//! Telecommunication network management — the application domain the
//! paper's own follow-up study targeted ("powerplant maintenance and
//! operations and telecommunication network management").
//!
//! Demonstrates the extended rule-language event forms together with
//! alarm correlation:
//!
//! * `event changed node.status;` — state-change rules with `old`/`new`
//!   bindings (link-down detection);
//! * a cross-transaction composite (3 link-downs within a validity
//!   interval) firing a detached alarm-correlation rule;
//! * `event deleted node;` — decommissioning audit;
//! * the rule-management view (`list_rules`).
//!
//! ```sh
//! cargo run --example telecom
//! ```

use reach::{
    load_rule, CompositionScope, ConsumptionPolicy, CouplingMode, Database, EventExpr, Lifespan,
    ReachConfig, ReachSystem, RuleBuilder, Value, ValueType,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> reach::Result<()> {
    let db = Database::in_memory()?;
    let (b, set_status) = db
        .define_class("Node")
        .attr("name", ValueType::Str, Value::Str(String::new()))
        .attr("status", ValueType::Str, Value::Str("up".into()))
        .attr("incidents", ValueType::Int, Value::Int(0))
        .virtual_method("setStatus");
    let (b, log_incident) = b.virtual_method("logIncident");
    let node_cls = b.define()?;
    db.methods().register_fn(set_status, |ctx| {
        ctx.set("status", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(log_incident, |ctx| {
        let n = ctx.get("incidents")?.as_int()? + 1;
        ctx.set("incidents", Value::Int(n))?;
        Ok(Value::Null)
    });

    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());

    // The NOC master node collects incident counts.
    let t = db.begin()?;
    let noc = db.create_with(t, node_cls, &[("name", Value::Str("NOC".into()))])?;
    db.persist_named(t, "NOC", noc)?;
    let mut nodes = Vec::new();
    for i in 0..6 {
        let n = db.create_with(t, node_cls, &[("name", Value::Str(format!("node-{i}")))])?;
        db.persist_named(t, &format!("node-{i}"), n)?;
        nodes.push(n);
    }
    db.commit(t)?;

    // Rule 1 (rule language, `changed` form): a node going down logs an
    // incident against the NOC immediately.
    load_rule(
        &sys,
        r#"
        rule LinkDown {
            prio 8;
            decl Node *n, Node *noc named "NOC";
            event changed n.status;
            cond imm new == "down" and old == "up";
            action imm noc->logIncident();
        };
    "#,
    )?;

    // Rule 2: alarm correlation — three link-down signals within 10
    // virtual minutes (cross-transaction, continuous context) raise one
    // correlated alarm, detached.
    let down_sig = sys.define_signal("link-down")?;
    let storm = sys.define_composite(
        "link-down-storm",
        EventExpr::History {
            expr: Arc::new(EventExpr::Primitive(down_sig)),
            count: 3,
        },
        CompositionScope::CrossTransaction,
        Lifespan::Interval(Duration::from_secs(600)),
        ConsumptionPolicy::Cumulative,
    )?;
    let alarms = Arc::new(AtomicUsize::new(0));
    {
        let alarms = Arc::clone(&alarms);
        sys.define_rule(
            RuleBuilder::new("correlated-alarm")
                .on(storm)
                .coupling(CouplingMode::Detached)
                .then(move |ctx| {
                    let n = alarms.fetch_add(1, Ordering::SeqCst) + 1;
                    println!(
                        "      !! CORRELATED ALARM #{n}: {} link-downs within the window",
                        ctx.event.constituents.len()
                    );
                    Ok(())
                }),
        )?;
    }
    // Bridge: the state-change rule's sibling — raise the signal on
    // every down transition (immediate, so it joins the composite).
    {
        let sys2 = Arc::downgrade(&sys);
        let ev = sys.define_state_event("status-changed", node_cls, "status")?;
        sys.define_rule(
            RuleBuilder::new("signal-bridge")
                .on(ev)
                .coupling(CouplingMode::Immediate)
                .when(|ctx| Ok(ctx.new_value() == Value::Str("down".into())))
                .then(move |ctx| {
                    if let Some(sys) = sys2.upgrade() {
                        sys.raise_signal(Some(ctx.txn), "link-down", vec![])?;
                    }
                    Ok(())
                }),
        )?;
    }

    // Rule 3 (`deleted` form): decommissioning audit.
    load_rule(
        &sys,
        r#"
        rule Decommission {
            decl Node *n, Node *noc named "NOC";
            event deleted n;
            action imm noc->logIncident();
        };
    "#,
    )?;

    // ---- scenario ----
    println!("-- nodes 1..3 fail in separate transactions --");
    for node in &nodes[..3] {
        let t = db.begin()?;
        db.invoke(t, *node, "setStatus", &[Value::Str("down".into())])?;
        db.commit(t)?;
        sys.advance_time(Duration::from_secs(120));
        sys.wait_quiescent();
    }
    println!("-- node 4 flaps (down+up) much later: outside the window --");
    sys.advance_time(Duration::from_secs(1200));
    let t = db.begin()?;
    db.invoke(t, nodes[3], "setStatus", &[Value::Str("down".into())])?;
    db.invoke(t, nodes[3], "setStatus", &[Value::Str("up".into())])?;
    db.commit(t)?;
    sys.wait_quiescent();

    println!("-- node 5 is decommissioned --");
    let t = db.begin()?;
    db.delete_object(t, nodes[5])?;
    db.commit(t)?;

    let t = db.begin()?;
    println!(
        "\nNOC incident count: {} (3 link-downs + 1 flap + 1 decommission)",
        db.get_attr(t, noc, "incidents")?
    );
    db.commit(t)?;
    println!("correlated alarms: {}", alarms.load(Ordering::SeqCst));

    println!("\nregistered rules (management view):");
    for r in sys.list_rules() {
        println!(
            "  {:<20} prio {:<3} {:<12} on {:<24} {}",
            r.name,
            r.priority.level(),
            format!("{}", r.coupling),
            r.event_name,
            if r.enabled { "enabled" } else { "disabled" }
        );
    }
    Ok(())
}
