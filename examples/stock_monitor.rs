//! Commodity-trading monitor — one of the paper's motivating domains
//! ("commodity trading", "monitoring of the Dow Jones index" for the
//! *continuous* consumption context).
//!
//! Demonstrates:
//! * state-change events on ticker updates;
//! * a cross-transaction composite (price spike ; price drop) under the
//!   *continuous* consumption policy with a validity interval;
//! * a detached causally-dependent alert rule;
//! * periodic temporal events driving an end-of-interval summary.
//!
//! ```sh
//! cargo run --example stock_monitor
//! ```

use reach::active::event::MethodPhase;
use reach::{
    CompositionScope, ConsumptionPolicy, CouplingMode, Database, EventExpr, Lifespan, ReachConfig,
    ReachSystem, RuleBuilder, TimePoint, Value, ValueType,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() -> reach::Result<()> {
    let db = Database::in_memory()?;
    let (b, tick) = db
        .define_class("Ticker")
        .attr("symbol", ValueType::Str, Value::Str(String::new()))
        .attr("price", ValueType::Float, Value::Float(0.0))
        .attr("high", ValueType::Float, Value::Float(0.0))
        .virtual_method("tick");
    let ticker_cls = b.define()?;
    db.methods().register_fn(tick, |ctx| {
        let p = ctx.arg(0).as_float()?;
        ctx.set("price", Value::Float(p))?;
        if p > ctx.get("high")?.as_float()? {
            ctx.set("high", Value::Float(p))?;
        }
        Ok(Value::Null)
    });

    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());

    // Primitive events: every tick, plus user signals for spike/drop
    // classifications raised by an immediate classifier rule.
    let on_tick = sys.define_method_event("on-tick", ticker_cls, "tick", MethodPhase::After)?;
    let spike = sys.define_signal("spike")?;
    let drop = sys.define_signal("drop")?;

    // Classifier: compares the tick against the running high.
    {
        let sys2 = Arc::downgrade(&sys);
        sys.define_rule(
            RuleBuilder::new("classify")
                .on(on_tick)
                .coupling(CouplingMode::Immediate)
                .then(move |ctx| {
                    let Some(sys) = sys2.upgrade() else {
                        return Ok(());
                    };
                    let oid = ctx.receiver().unwrap();
                    let p = ctx.arg(0).as_float()?;
                    let high = ctx.db.get_attr(ctx.txn, oid, "high")?.as_float()?;
                    if high > 0.0 && p >= high {
                        sys.raise_signal(Some(ctx.txn), "spike", vec![Value::Float(p)])?;
                    } else if high > 0.0 && p < 0.9 * high {
                        sys.raise_signal(Some(ctx.txn), "drop", vec![Value::Float(p)])?;
                    }
                    Ok(())
                }),
        )?;
    }

    // Composite: a spike followed by a >10% drop within the validity
    // interval — the "head and shoulders" alarm. Continuous context:
    // every spike opens its own window.
    let crash_pattern = sys.define_composite(
        "spike-then-drop",
        EventExpr::Sequence(vec![
            EventExpr::Primitive(spike),
            EventExpr::Primitive(drop),
        ]),
        CompositionScope::CrossTransaction,
        Lifespan::Interval(Duration::from_secs(3600)),
        ConsumptionPolicy::Continuous,
    )?;
    let alerts = Arc::new(AtomicUsize::new(0));
    {
        let alerts = Arc::clone(&alerts);
        sys.define_rule(
            RuleBuilder::new("crash-alert")
                .on(crash_pattern)
                .coupling(CouplingMode::Detached)
                .then(move |ctx| {
                    let n = alerts.fetch_add(1, Ordering::SeqCst) + 1;
                    println!(
                        "      !! ALERT #{n}: spike-then-drop ({} constituents)",
                        ctx.event.constituents.len()
                    );
                    Ok(())
                }),
        )?;
    }

    // Periodic summary every 10 virtual minutes.
    let every_10m = sys.define_periodic_event(
        "summary-tick",
        TimePoint::from_secs(600),
        Duration::from_secs(600),
    )?;
    sys.define_rule(
        RuleBuilder::new("summary")
            .on(every_10m)
            .coupling(CouplingMode::Detached)
            .then(|ctx| {
                println!("      -- periodic summary at {}", ctx.event.at);
                Ok(())
            }),
    )?;

    // ---- drive the market ----
    let t = db.begin()?;
    let acme = db.create_with(t, ticker_cls, &[("symbol", Value::Str("ACME".into()))])?;
    db.persist_named(t, "ACME", acme)?;
    db.commit(t)?;

    let prices = [
        100.0, 104.0, 110.0, // spikes
        108.0, 95.0, // drop (>10% off the 110 high)
        97.0, 99.0, 112.0, // recovery spike
        90.0,  // second crash
    ];
    for (i, p) in prices.iter().enumerate() {
        let t = db.begin()?;
        db.invoke(t, acme, "tick", &[Value::Float(*p)])?;
        db.commit(t)?;
        println!("tick {:>2}: {p:>6.1}", i + 1);
        sys.advance_time(Duration::from_secs(180)); // 3 minutes per tick
        sys.wait_quiescent();
    }
    sys.wait_quiescent();
    println!(
        "\nalerts: {}, detached rule runs: {}",
        alerts.load(Ordering::SeqCst),
        sys.stats().detached_runs
    );
    Ok(())
}
