//! Quickstart: define a class, attach an ECA rule, watch it fire.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use reach::active::event::MethodPhase;
use reach::{CouplingMode, Database, ReachConfig, ReachSystem, RuleBuilder, Value, ValueType};
use std::sync::Arc;

fn main() -> reach::Result<()> {
    // ---- 1. The passive OODB: a bank account class ----
    let db = Database::in_memory()?;
    let (b, deposit) = db
        .define_class("Account")
        .attr("owner", ValueType::Str, Value::Str(String::new()))
        .attr("balance", ValueType::Int, Value::Int(0))
        .virtual_method("deposit");
    let (b, withdraw) = b.virtual_method("withdraw");
    let account = b.define()?;
    db.methods().register_fn(deposit, |ctx| {
        let n = ctx.get("balance")?.as_int()? + ctx.arg(0).as_int()?;
        ctx.set("balance", Value::Int(n))?;
        Ok(Value::Int(n))
    });
    db.methods().register_fn(withdraw, |ctx| {
        let n = ctx.get("balance")?.as_int()? - ctx.arg(0).as_int()?;
        ctx.set("balance", Value::Int(n))?;
        Ok(Value::Int(n))
    });

    // ---- 2. The REACH active layer ----
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    let on_withdraw =
        sys.define_method_event("on-withdraw", account, "withdraw", MethodPhase::After)?;

    // Rule 1 (immediate): no overdrafts — abort the transaction.
    sys.define_rule(
        RuleBuilder::new("no-overdraft")
            .on(on_withdraw)
            .coupling(CouplingMode::Immediate)
            .priority(10)
            .when(|ctx| {
                let oid = ctx.receiver().unwrap();
                Ok(ctx.db.get_attr(ctx.txn, oid, "balance")?.as_int()? < 0)
            })
            .then(|ctx| {
                Err(reach::ReachError::RuleEvaluation(format!(
                    "overdraft on {} — transaction aborted",
                    ctx.receiver().unwrap()
                )))
            }),
    )?;

    // Rule 2 (deferred): audit every withdrawal at commit time.
    sys.define_rule(
        RuleBuilder::new("audit-withdrawals")
            .on(on_withdraw)
            .coupling(CouplingMode::Deferred)
            .then(|ctx| {
                println!(
                    "  [audit @ pre-commit] withdrawal of {} from {}",
                    ctx.arg(0),
                    ctx.receiver().unwrap()
                );
                Ok(())
            }),
    )?;

    // ---- 3. Use the database normally ----
    let t = db.begin()?;
    let alice = db.create_with(t, account, &[("owner", Value::Str("alice".into()))])?;
    db.persist_named(t, "alice", alice)?;
    db.invoke(t, alice, "deposit", &[Value::Int(100)])?;
    db.invoke(t, alice, "withdraw", &[Value::Int(30)])?;
    db.commit(t)?;
    println!("committed: alice's balance is 70");

    // Overdraft attempt: the immediate rule aborts the transaction.
    let t = db.begin()?;
    match db.invoke(t, alice, "withdraw", &[Value::Int(1_000)]) {
        Ok(_) if !db.txn_manager().is_active(t) => {
            println!("overdraft rejected: the immediate rule aborted the transaction")
        }
        Ok(_) => {
            db.commit(t)?;
            println!("BUG: overdraft committed");
        }
        Err(e) => println!("overdraft rejected: {e}"),
    }

    let t = db.begin()?;
    let balance = db.get_attr(t, alice, "balance")?;
    db.commit(t)?;
    println!("final balance: {balance} (unchanged by the aborted overdraft)");
    println!("engine stats: {:?}", sys.stats());
    Ok(())
}
