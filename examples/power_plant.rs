//! The paper's running example (§6.1): power-plant operation.
//!
//! "Whenever the water level of the river from which the cooling water
//! is drawn reaches a lower mark and the water temperature is above a
//! maximum temperature and the heat-load given off is above a threshold,
//! then the Planned Power Output must be reduced by 5%."
//!
//! The rule is written in the paper's own rule language (verbatim) and
//! loaded through `reach-rulelang`. A simulated drought scenario then
//! drives the river's sensors and shows the reactor throttling itself.
//!
//! ```sh
//! cargo run --example power_plant
//! ```

use reach::{load_rule, Database, ReachConfig, ReachSystem, Value, ValueType};
use std::sync::Arc;

/// §6.1's rule, as printed in the paper.
const WATER_LEVEL_RULE: &str = r#"
    rule WaterLevel {
        prio 5;
        decl River *river, int x, Reactor *reactor named "BlockA";
        event after river->updateWaterLevel(x);
        cond imm x < 37 and river->getWaterTemp() > 24.5
                 and reactor->getHeatOutput() > 1000000;
        action imm reactor->reducePlannedPower(0.05);
    };
"#;

fn main() -> reach::Result<()> {
    let db = Database::in_memory()?;

    // ---- the domain classes the rule references ----
    let (b, update_level) = db
        .define_class("River")
        .attr("waterLevel", ValueType::Int, Value::Int(120))
        .attr("waterTemp", ValueType::Float, Value::Float(18.0))
        .virtual_method("updateWaterLevel");
    let (b, update_temp) = b.virtual_method("updateWaterTemp");
    let (b, get_temp) = b.virtual_method("getWaterTemp");
    let river_cls = b.define()?;
    db.methods().register_fn(update_level, |ctx| {
        ctx.set("waterLevel", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods().register_fn(update_temp, |ctx| {
        ctx.set("waterTemp", ctx.arg(0))?;
        Ok(Value::Null)
    });
    db.methods()
        .register_fn(get_temp, |ctx| ctx.get("waterTemp"));

    let (b, get_heat) = db
        .define_class("Reactor")
        .attr("plannedPower", ValueType::Float, Value::Float(1300.0)) // MW
        .attr("heatOutput", ValueType::Float, Value::Float(2_600_000.0)) // kW thermal
        .virtual_method("getHeatOutput");
    let (b, reduce_power) = b.virtual_method("reducePlannedPower");
    let reactor_cls = b.define()?;
    db.methods()
        .register_fn(get_heat, |ctx| ctx.get("heatOutput"));
    db.methods().register_fn(reduce_power, |ctx| {
        let factor = ctx.arg(0).as_float()?;
        let p = ctx.get("plannedPower")?.as_float()?;
        let reduced = p * (1.0 - factor);
        ctx.set("plannedPower", Value::Float(reduced))?;
        println!("      >> RULE FIRED: planned power reduced 5% -> {reduced:.1} MW");
        Ok(Value::Null)
    });

    // ---- active layer + the paper's rule ----
    let sys = ReachSystem::new(Arc::clone(&db), ReachConfig::default());
    load_rule(&sys, WATER_LEVEL_RULE)?;

    // ---- instances ----
    let t = db.begin()?;
    let river = db.create(t, river_cls)?;
    db.persist_named(t, "Main", river)?;
    let reactor = db.create(t, reactor_cls)?;
    db.persist_named(t, "BlockA", reactor)?;
    db.commit(t)?;

    // ---- a drought: the river drops and warms over a week ----
    println!("day | level | temp  | planned power");
    println!("----+-------+-------+--------------");
    let levels = [110, 95, 70, 45, 36, 30, 25];
    let temps = [18.0, 19.5, 22.0, 24.0, 25.0, 26.5, 28.0];
    for day in 0..7 {
        let t = db.begin()?;
        db.invoke(t, river, "updateWaterTemp", &[Value::Float(temps[day])])?;
        db.invoke(t, river, "updateWaterLevel", &[Value::Int(levels[day])])?;
        let power = db.get_attr(t, reactor, "plannedPower")?.as_float()?;
        db.commit(t)?;
        println!(
            "  {} |  {:>4} | {:>4.1}  | {power:>7.1} MW",
            day + 1,
            levels[day],
            temps[day]
        );
    }
    let stats = sys.stats();
    println!(
        "\nimmediate rule executions: {}, actions fired: {}, conditions false: {}",
        stats.immediate_runs, stats.actions_executed, stats.conditions_false
    );
    Ok(())
}
